//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the same authoring API (`criterion_group!`, `criterion_main!`,
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`) but a much
//! simpler measurement loop: each bench runs a short warm-up, then a fixed
//! sample of timed iterations, and prints the mean time per iteration. No
//! statistics, plots, or baselines — enough to smoke-run `cargo bench` and
//! compare orders of magnitude offline.

use std::time::Instant;

pub use std::hint::black_box;

/// Label for a bench within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `function_id/parameter`.
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a closure over a fixed number of iterations.
pub struct Bencher {
    samples: u64,
    /// (total duration, iterations) of the measured loop.
    measured: Option<(std::time::Duration, u64)>,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let iters = self.samples.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn report(name: &str, measured: Option<(std::time::Duration, u64)>) {
    match measured {
        Some((total, iters)) => {
            let per = total.as_secs_f64() / iters as f64;
            let (val, unit) = if per >= 1.0 {
                (per, "s")
            } else if per >= 1e-3 {
                (per * 1e3, "ms")
            } else if per >= 1e-6 {
                (per * 1e6, "µs")
            } else {
                (per * 1e9, "ns")
            };
            println!("{name:<50} time: {val:>9.3} {unit}/iter  ({iters} iters)");
        }
        None => println!("{name:<50} (no measurement)"),
    }
}

/// A named collection of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Run a bench with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.measured);
        self
    }

    /// Run a bench without an input value.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.measured);
        self
    }

    /// Finish the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Bench context handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    default_samples: u64,
}

impl Criterion {
    /// Fresh context with the stand-in's default sample count.
    pub fn new() -> Self {
        Criterion {
            default_samples: 10,
        }
    }

    /// Open a named bench group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Run a standalone bench.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.default_samples,
            measured: None,
        };
        f(&mut b);
        report(&name.to_string(), b.measured);
        self
    }
}

/// Define a bench group: `criterion_group!(name, target_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench entry point: `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs() {
        benches();
    }
}
