//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A panicked holder simply passes the data through (`into_inner` on the
//! poison error), matching parking_lot's "no poisoning" semantics closely
//! enough for this workspace.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
