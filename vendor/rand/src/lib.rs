//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over half-open and
//! inclusive integer ranges plus half-open float ranges.
//!
//! The generator is xoshiro256** seeded through splitmix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only relies
//! on determinism-given-seed and uniformity, never on a specific stream.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from `range`. Panics on an empty range, like the
    /// real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        assert!(!range.is_empty_range(), "cannot sample empty range");
        range.sample(self)
    }

    /// Generate a value of a supported type (`bool`, integers, `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<G: RngCore + Sized> Rng for G {}

/// Types with a "standard" full-range distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn generate(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform integer in `[0, bound)` by Lemire's multiply-shift with a
/// rejection step (no modulo bias).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end || self.start.is_nan() || self.end.is_nan()
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman & Vigna), seeded via
    /// splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(1u64..=3);
            assert!((1..=3).contains(&w));
            let x = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&x));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of band");
        }
    }
}
