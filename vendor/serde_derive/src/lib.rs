//! Derive macros for the vendored serde stand-in.
//!
//! Supports exactly the shapes this workspace serializes:
//!
//! * structs with named fields — mapped to `Value::Map` keyed by field name;
//! * enums whose variants are all unit variants — mapped to `Value::Str`
//!   holding the variant name.
//!
//! The input item is parsed directly from the token stream (no `syn` in an
//! offline build), and the impls are generated as source text and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct or unit-variant enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item.shape {
        Shape::Struct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}",
                name = item.name,
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),",
                        name = item.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                name = item.name,
            )
        }
    };
    src.parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` for a named-field struct or unit-variant enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                name = item.name,
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        name = item.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error(\n\
                                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::Error(\n\
                                 format!(\"expected string for {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                name = item.name,
            )
        }
    };
    src.parse().expect("serde_derive generated invalid Deserialize impl")
}

enum Shape {
    /// Named field identifiers, in declaration order.
    Struct(Vec<String>),
    /// Unit variant identifiers, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };

    // Reject generics up front — nothing in this workspace derives on
    // generic types, and supporting them would complicate the generator.
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported for `{name}`");
        }
    }

    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => continue, // e.g. `where` clauses would land here (unused)
            None => panic!("serde derive: `{name}` has no braced body (tuple/unit items unsupported)"),
        }
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(body.stream(), &name)),
        "enum" => Shape::Enum(parse_enum_variants(body.stream(), &name)),
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Skip leading `#[...]` attributes (incl. doc comments) and a `pub` /
/// `pub(...)` visibility marker.
fn skip_attrs_and_vis(
    toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde derive: malformed attribute, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) / pub(super) / ...
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_fields(body: TokenStream, name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let field = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected field name in `{name}`, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde derive: expected `:` after field `{field}` in `{name}`, found {other:?}"
            ),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth zero.
        // `->` never appears in field types at depth 0 in this workspace's
        // derives, so tracking only `<`/`>` depth is sufficient.
        let mut depth = 0i32;
        loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

fn parse_enum_variants(body: TokenStream, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let variant = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected variant in `{name}`, found {other:?}"),
        };
        match toks.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) | Some(TokenTree::Punct(_)) => panic!(
                "serde derive: enum `{name}` variant `{variant}` carries data; \
                 only unit variants are supported"
            ),
            other => panic!("serde derive: unexpected token after `{variant}`: {other:?}"),
        }
    }
    variants
}
