//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the workspace uses crossbeam solely
//! for scoped worker threads, which `std::thread::scope` (Rust >= 1.63)
//! supports natively. The shim keeps crossbeam's calling convention
//! (`scope` returns a `Result`, spawned closures receive the scope so they
//! can spawn siblings), with one simplification: the scope is passed by
//! value (it is a `Copy` handle) rather than by reference.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A copyable scope handle mirroring `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let sc = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(sc)) }
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before
    /// `scope` returns. The `Result` mirrors crossbeam's API (this shim
    /// never returns `Err`: child panics surface on `join`, and a panic in
    /// an unjoined child propagates out of `std::thread::scope` directly).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let n = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
