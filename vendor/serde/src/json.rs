//! JSON rendering and parsing for [`Value`](crate::Value) trees — the role
//! `serde_json` plays upstream.

use crate::{Deserialize, Error, Serialize, Value};

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    out
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    out
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats recognizably floats (round-trip as F64).
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "42", "-17", "3.5", "\"hi\\nthere\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&to_string(&v)).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a": [1, 2, {"b": null}], "c": "x\"y", "d": -2.25}"#;
        let v = parse(text).unwrap();
        let rendered = to_string(&v);
        assert_eq!(parse(&rendered).unwrap(), v);
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_marker_survives() {
        // A float that happens to be integral must parse back as a float.
        let v = Value::F64(2.0);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let v = parse(&n.to_string()).unwrap();
        assert_eq!(v, Value::U64(n));
    }
}
