//! Offline stand-in for `serde` (+ `serde_json`).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of serde the workspace relies on, as a
//! *value-model* serializer:
//!
//! * [`Serialize`] converts a type into a self-describing [`Value`] tree;
//! * [`Deserialize`] rebuilds a type from a [`Value`] tree;
//! * [`json`] renders and parses [`Value`] trees as JSON text (the role
//!   `serde_json` plays upstream);
//! * `#[derive(Serialize, Deserialize)]` (feature `derive`) works for
//!   structs with named fields and for enums with unit variants.
//!
//! The trait signatures are intentionally simpler than upstream serde's
//! visitor architecture — everything in this workspace serializes small
//! result/metrics records, where a value tree is exactly right.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use std::collections::BTreeMap;

/// A self-describing data value (the serde data model, flattened).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing field.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a map entry; missing keys read as [`Value::Null`] so
    /// `Option` fields tolerate omission.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        const NULL: Value = Value::Null;
        match self {
            Value::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the self-describing [`Value`] model.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the self-describing [`Value`] model.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error(format!("expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error(format!("expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::from_value(&Value::Null).unwrap(),
            None::<u32>
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn missing_map_field_reads_as_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get_field("b").unwrap(), &Value::Null);
        assert_eq!(Option::<u64>::from_value(v.get_field("b").unwrap()).unwrap(), None);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::U64(1)).is_err());
        assert!(Value::Seq(vec![]).get_field("x").is_err());
    }
}
