//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: value
//! strategies (`any`, ranges, `Just`, tuples, `prop_oneof!`, `prop_map`,
//! `collection::vec`, `option::of`, printable-string patterns), the
//! `proptest!` macro with optional `#![proptest_config(...)]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion forms that return
//! `TestCaseError` instead of panicking.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (reproducible runs, no persistence files) and failing
//! inputs are reported but **not shrunk**.

/// The usual glob import for tests.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy so heterogeneous strategies with the
        /// same `Value` can live in one collection (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from already-boxed arms; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Values drawn from the full domain of `T`.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy form of [`Arbitrary`], returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = rng.f64_unit() * 1e12;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64_unit() * (self.end - self.start)
        }
    }

    /// String pattern strategy: upstream proptest interprets `&str` as a
    /// regex. This stand-in supports the printable-character classes used
    /// here (`\PC`, `.`) with an optional trailing `{m,n}` repetition, and
    /// treats anything else as a literal prefix.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = repeat_bounds(self).unwrap_or((0, 32));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            // Mostly ASCII printables with occasional multibyte chars to
            // exercise UTF-8 handling in lexers.
            const EXTRA: &[char] = &['é', 'λ', '→', '🦀', '¬', '\u{2028}'];
            (0..len)
                .map(|_| {
                    if rng.below(8) == 0 {
                        EXTRA[rng.below(EXTRA.len() as u64) as usize]
                    } else {
                        (0x20 + rng.below(0x5f) as u8) as char
                    }
                })
                .collect()
        }
    }

    fn repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern.rfind('}')?;
        let body = pattern.get(open + 1..close)?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A => 0);
    impl_tuple_strategy!(A => 0, B => 1);
    impl_tuple_strategy!(A => 0, B => 1, C => 2);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Vec` strategy with a length drawn from `len` (exclusive upper bound).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — fails the test.
        Fail(String),
        /// Input rejected — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic generator PRNG (splitmix64 stream).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed a stream.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for the
            // small bounds tests use.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Run `config.cases` cases of `body`, panicking on the first failure.
    /// The RNG stream is seeded from the test name, so runs are reproducible
    /// and independent of sibling tests.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            });
        let mut rng = TestRng::new(seed);
        let mut rejected = 0u32;
        for case in 0..config.cases {
            match body(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.cases.saturating_mul(4).max(64) {
                        panic!("proptest `{name}`: too many rejected inputs");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {case}/{}: {msg}", config.cases);
                }
            }
        }
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng);)+
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// Uniform choice among strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a proptest body; failure aborts the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "prop_assert_eq failed: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __a, __b
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..2000 {
            let v = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&v));
            let u = Strategy::generate(&(0u8..16), &mut rng);
            assert!(u < 16);
            let f = Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_bounds() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn self_test_macro(a in 0u32..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            if b { return Ok(()); }
            prop_assert_eq!(a + 1, 1 + a);
        }
    }

    proptest! {
        #[test]
        fn self_test_default_config(
            v in crate::collection::vec(prop_oneof![Just(1u8), Just(8u8)], 0..10),
            o in crate::option::of(0u8..4),
        ) {
            prop_assert!(v.iter().all(|&x| x == 1 || x == 8));
            if let Some(x) = o { prop_assert!(x < 4); }
        }
    }
}
