//! Reproduces the paper's Listings 1 and 2: what the IR hides from FI
//! tools, and how IR-level instrumentation degrades code generation.
//!
//! * Listing 1 — a function in IR form (virtual registers, no
//!   prologue/epilogue) next to its machine code (push/pop, frame setup,
//!   spills).
//! * Listing 2 — the same function compiled clean vs compiled after
//!   LLFI-style instrumentation: the `injectFault` calls force spills and
//!   defeat compare+branch fusion, exactly as in Listing 2c.
//!
//! Run with: `cargo run --example codegen_interference`

use refine_core::{compile_with_fi, FiOptions};
use refine_ir::passes::OptLevel;

/// A `compute_residual`-flavoured kernel (HPCCG's, per the paper).
const SOURCE: &str = r#"
fvar v1[64];
fvar v2[64];

fn compute_residual(n) : float {
    let local_residual: float = 0.0;
    for (i = 0; i < n; i = i + 1) {
        let diff: float = fabs(v1[i] - v2[i]);
        if (diff > local_residual) { local_residual = diff; }
    }
    return local_residual;
}

fn main() {
    for (i = 0; i < 64; i = i + 1) {
        v1[i] = float(i) * 0.5;
        v2[i] = float(i) * 0.5 + 0.001 * float(i % 3);
    }
    print_f(compute_residual(64));
    return 0;
}
"#;

fn main() {
    let module = refine_frontend::compile_source(SOURCE).unwrap();

    // ------- Listing 1a analogue: optimized IR.
    let mut opt = module.clone();
    refine_ir::passes::optimize(&mut opt, OptLevel::O2);
    let f = opt.func_by_name("compute_residual").unwrap();
    println!("===== Listing 1a: compute_residual, optimized IR =====");
    println!("{}", refine_ir::printer::print_function(&opt, opt.func(f)));

    // ------- Listing 1b/2b analogue: clean machine code.
    let clean = compile_with_fi(&module, OptLevel::O2, &FiOptions::default());
    println!("===== Listing 2b: machine code WITHOUT FI instrumentation =====");
    println!("{}", clean.binary.disasm("compute_residual").unwrap());

    // ------- Listing 2c analogue: machine code after LLFI instrumentation.
    let (llfi, sites) = refine_llfi::compile_with_llfi(
        &module,
        OptLevel::O2,
        &refine_llfi::LlfiOptions::default(),
    );
    println!(
        "===== Listing 2c: machine code WITH IR-level (LLFI) instrumentation ({} IR sites) =====",
        sites.len()
    );
    println!("{}", llfi.binary.disasm("compute_residual").unwrap());

    // ------- Quantify the interference.
    let count = |b: &refine_machine::Binary, name: &str, pred: &dyn Fn(&refine_machine::MInstr) -> bool| {
        let sym = b.symbols.iter().find(|s| s.name == name).unwrap();
        b.text[sym.entry as usize..sym.end as usize]
            .iter()
            .filter(|i| pred(i))
            .count()
    };
    let is_spill = |i: &refine_machine::MInstr| match i {
        refine_machine::MInstr::Ld { mem, .. } | refine_machine::MInstr::St { mem, .. } => {
            mem.base == Some(refine_machine::isa::FP)
        }
        refine_machine::MInstr::FLd { mem, .. } | refine_machine::MInstr::FSt { mem, .. } => {
            mem.base == Some(refine_machine::isa::FP)
        }
        _ => false,
    };
    let is_call = |i: &refine_machine::MInstr| matches!(i, refine_machine::MInstr::CallRt { .. });
    println!("===== Interference summary (compute_residual) =====");
    println!(
        "{:28} {:>8} {:>8}",
        "", "clean", "LLFI"
    );
    println!(
        "{:28} {:>8} {:>8}",
        "static instructions",
        count(&clean.binary, "compute_residual", &|_| true),
        count(&llfi.binary, "compute_residual", &|_| true)
    );
    println!(
        "{:28} {:>8} {:>8}",
        "frame (spill) accesses",
        count(&clean.binary, "compute_residual", &is_spill),
        count(&llfi.binary, "compute_residual", &is_spill)
    );
    println!(
        "{:28} {:>8} {:>8}",
        "runtime calls",
        count(&clean.binary, "compute_residual", &is_call),
        count(&llfi.binary, "compute_residual", &is_call)
    );
    println!(
        "\nREFINE avoids all of this: its pass runs after code generation, so the\n\
         application instructions above stay exactly as in the clean binary."
    );
}
