//! Error-propagation analysis — the use case the paper's introduction
//! motivates compiler-based FI with: because injection and analysis share a
//! software layer, each fault can be traced from the corrupted register to
//! its final effect.
//!
//! For a set of faults on one benchmark this prints, per fault: injection
//! point, latency to first architectural divergence, register footprint,
//! whether control flow split, and the final classification — then the
//! aggregate propagation statistics.
//!
//! Run with: `cargo run --release --example error_propagation [-- app]`

use refine_campaign::propagation::{propagation_sweep, trace_fault};
use refine_campaign::tools::{PreparedTool, Tool};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "miniFE".to_string());
    let program = refine_benchmarks::by_name(&app).unwrap_or_else(|| {
        eprintln!("unknown benchmark {app}");
        std::process::exit(2);
    });
    println!("error propagation on {} ({})\n", program.name, program.description);
    let prepared = PreparedTool::prepare(&program.module(), Tool::Pinfi);
    println!(
        "population: {} dynamic FI targets, {} profile cycles\n",
        prepared.population, prepared.profile_cycles
    );

    println!(
        "{:>10} {:>12} {:>11} {:>10} {:>9}  outcome",
        "target", "divergence", "reconverge", "ctrl-flow", "footprint"
    );
    for k in 0..16u64 {
        let target = 1 + prepared.population * k / 16;
        let r = trace_fault(&prepared, target, 31 * k + 5, 8192);
        println!(
            "{:>10} {:>12} {:>11} {:>10} {:>9}  {}",
            target,
            r.first_divergence.map_or("-".into(), |v| v.to_string()),
            r.reconverged_after.map_or("-".into(), |v| format!("+{v}")),
            r.control_flow_divergence.map_or("-".into(), |v| v.to_string()),
            r.max_footprint,
            r.outcome.label()
        );
    }

    let stats = propagation_sweep(&prepared, 60, 2024);
    println!("\naggregate over 60 faults:");
    println!("  masked at register level : {}", stats.masked);
    println!("  data-only propagation    : {}", stats.data_only);
    println!("  control-flow divergence  : {}", stats.control_flow);
    println!(
        "  outcomes                 : crash {}, SOC {}, benign {}",
        stats.outcomes[0], stats.outcomes[1], stats.outcomes[2]
    );
    println!(
        "\n(the classic FI result in miniature: most crashes come from\n\
         control-flow divergence, most SOCs from long-lived data-only\n\
         corruption, and benign runs from dead or overwritten registers)"
    );
}
