//! The paper's extensibility story (§4.2.4): the compiler only inserts
//! `selInstr`/`setupFI` call sites — the *user* provides the library that
//! decides when and what to flip. This example implements two custom
//! libraries and drives them with `-fi-funcs`/`-fi-instrs` selections from
//! Table 2.
//!
//! Run with: `cargo run --example custom_fi_library`

use refine_core::{compile_with_fi, FiOptions};
use refine_ir::passes::OptLevel;
use refine_machine::{FiRuntime, Machine, RunConfig};

const SOURCE: &str = r#"
fvar field[32];

fn setup() {
    for (i = 0; i < 32; i = i + 1) { field[i] = sin(0.2 * float(i)) + 2.0; }
    return 0;
}

fn relax(sweeps) {
    for (s = 0; s < sweeps; s = s + 1) {
        for (i = 1; i < 31; i = i + 1) {
            field[i] = 0.5 * field[i] + 0.25 * (field[i-1] + field[i+1]);
        }
    }
    return 0;
}

fn main() {
    setup();
    relax(6);
    let sum: float = 0.0;
    for (i = 0; i < 32; i = i + 1) { sum = sum + field[i]; }
    print_f(sum);
    return 0;
}
"#;

/// Custom library #1: a burst injector — flips bit 0 of the first output
/// operand of every 500th target instruction (a multi-fault model the
/// stock single-bit-flip library does not implement).
struct BurstInjector {
    count: u64,
    injections: u64,
}

impl FiRuntime for BurstInjector {
    fn sel_instr(&mut self, _site: u64) -> bool {
        self.count += 1;
        self.count.is_multiple_of(500)
    }
    fn setup_fi(&mut self, _nops: u32, _sizes: &[u32]) -> (u32, u32) {
        self.injections += 1;
        (0, 0)
    }
    fn llfi_inject(&mut self, _site: u64, value: u64, _bits: u32) -> u64 {
        value
    }
}

/// Custom library #2: a site histogrammer — never injects, records which
/// static sites are hottest (useful for targeted campaigns).
struct SiteHistogram {
    hits: std::collections::HashMap<u64, u64>,
}

impl FiRuntime for SiteHistogram {
    fn sel_instr(&mut self, site: u64) -> bool {
        *self.hits.entry(site).or_insert(0) += 1;
        false
    }
    fn setup_fi(&mut self, _nops: u32, _sizes: &[u32]) -> (u32, u32) {
        (0, 0)
    }
    fn llfi_inject(&mut self, _site: u64, value: u64, _bits: u32) -> u64 {
        value
    }
}

fn main() {
    let module = refine_frontend::compile_source(SOURCE).unwrap();

    // Table 2 flag strings drive the instrumentation.
    let opts = FiOptions::parse_flags("-fi=true -fi-funcs=relax -fi-instrs=arithm").unwrap();
    let compiled = compile_with_fi(&module, OptLevel::O2, &opts);
    println!(
        "selective instrumentation: {} sites, all inside: {:?}",
        compiled.sites.len(),
        compiled
            .sites
            .iter()
            .map(|s| s.func.as_str())
            .collect::<std::collections::HashSet<_>>()
    );

    // Drive with the burst injector.
    let mut burst = BurstInjector { count: 0, injections: 0 };
    let r = Machine::run(&compiled.binary, &RunConfig::default(), &mut burst, None);
    println!(
        "burst library: {} dynamic targets, {} injections, outcome {:?}",
        burst.count, burst.injections, r.outcome
    );

    // Drive with the histogrammer on an all-function build.
    let all = compile_with_fi(&module, OptLevel::O2, &FiOptions::all());
    let mut hist = SiteHistogram { hits: Default::default() };
    Machine::run(&all.binary, &RunConfig::default(), &mut hist, None);
    let mut hot: Vec<(u64, u64)> = hist.hits.into_iter().collect();
    hot.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\nhottest instrumented sites:");
    for (site, n) in hot.iter().take(5) {
        let info = &all.sites[*site as usize];
        println!("  site {:>4} in {:18} `{}` executed {} times", site, info.func, info.asm, n);
    }
}
