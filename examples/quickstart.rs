//! Quickstart: compile a small program with REFINE instrumentation, run the
//! profiling phase, inject one fault, and classify the outcome — the full
//! workflow of the paper's Figure 3 in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use refine_campaign::{classify, Golden};
use refine_core::{compile_with_fi, FiOptions, InjectingRt, ProfilingRt};
use refine_ir::passes::OptLevel;
use refine_machine::{Machine, RunConfig};

fn main() {
    // 1. A small numerical program in MiniLang (the workspace's C stand-in).
    let source = r#"
        fvar data[64];
        fn main() {
            for (i = 0; i < 64; i = i + 1) { data[i] = sqrt(float(i) + 1.0); }
            let s: float = 0.0;
            for (i = 0; i < 64; i = i + 1) { s = s + data[i]; }
            print_s("sum of square roots:");
            print_f(s);
            return 0;
        }
    "#;
    let module = refine_frontend::compile_source(source).expect("compiles");

    // 2. Compile with the paper's flags: -fi=true -fi-funcs=* -fi-instrs=all.
    //    The REFINE pass instruments final machine instructions, right
    //    before emission.
    let compiled = compile_with_fi(&module, OptLevel::O2, &FiOptions::all());
    println!("instrumented {} static sites", compiled.sites.len());

    // 3. Profiling phase: count dynamic target instructions, capture the
    //    golden output.
    let cfg = RunConfig::default();
    let mut prof = ProfilingRt::default();
    let profile = Machine::run(&compiled.binary, &cfg, &mut prof, None);
    let golden = Golden::from_run(&profile);
    println!(
        "profile: {} dynamic FI targets, {} cycles, golden output = {:?}",
        prof.count, profile.cycles, golden.lines
    );

    // 4. Injection phase: flip one bit at the middle dynamic instruction.
    let trial_cfg = RunConfig { max_cycles: profile.cycles * 10, ..cfg };
    let mut injector = InjectingRt::new(prof.count / 2, 0xC0FFEE);
    let faulty = Machine::run(&compiled.binary, &trial_cfg, &mut injector, None);
    let log = injector.log.expect("fault fired");
    println!(
        "injected at dynamic instruction {} (site {}), operand {}, bit {}",
        log.dynamic_index, log.site, log.operand, log.bit
    );

    // 5. Classify: crash / SOC / benign.
    let outcome = classify(&golden, &faulty);
    println!("outcome: {} ({:?})", outcome.label(), faulty.outcome);
}
