//! A complete (reduced-size) fault-injection campaign on one HPC benchmark
//! with all three tools, ending in the chi-squared accuracy comparison and
//! the speed comparison of the paper's evaluation.
//!
//! Run with: `cargo run --release --example fi_campaign [-- trials]`

use refine_campaign::campaign::{run_campaign, CampaignConfig};
use refine_campaign::tools::Tool;
use refine_stats::chi2_contingency;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let program = refine_benchmarks::by_name("HPCCG-1.0").unwrap();
    println!("campaign: {} ({}), {} trials per tool", program.name, program.input, trials);
    let module = program.module();
    let cfg = CampaignConfig { trials, seed: 2017, jobs: 0, checkpoint: true, ..CampaignConfig::default() };

    let mut results = Vec::new();
    for tool in Tool::all() {
        let t0 = std::time::Instant::now();
        let r = run_campaign(&module, tool, &cfg);
        let p = r.counts.percentages();
        println!(
            "{:8} population={:>8} crash={:5.1}% soc={:5.1}% benign={:5.1}%  (campaign: {:>12} sim-cycles, {:.2}s wall)",
            tool.name(),
            r.population,
            p[0],
            p[1],
            p[2],
            r.total_cycles,
            t0.elapsed().as_secs_f64()
        );
        results.push(r);
    }

    // Accuracy: chi-squared vs the PINFI baseline (Table 5 methodology).
    let pinfi = &results[2];
    println!("\nchi-squared vs PINFI (alpha = 0.05):");
    for r in &results[..2] {
        let chi = chi2_contingency(&[r.counts.row(), pinfi.counts.row()]);
        println!(
            "  {:8} p = {:.4} -> {}",
            r.tool,
            chi.p_value,
            if chi.significant(0.05) {
                "significantly different (less accurate)"
            } else {
                "statistically indistinguishable"
            }
        );
    }

    // Speed: campaign time normalized to PINFI (Figure 5 methodology).
    println!("\ncampaign execution time normalized to PINFI:");
    for r in &results[..2] {
        println!(
            "  {:8} {:.2}x",
            r.tool,
            r.total_cycles as f64 / pinfi.total_cycles as f64
        );
    }
}
