//! The "future work" extensions of the paper's §4.5 and related work,
//! implemented on top of the reproduced framework:
//!
//! 1. **opcode corruption** (binary-level): flip a bit of the *encoded*
//!    instruction; invalid encodings raise `#UD`, valid ones execute a
//!    mutated instruction;
//! 2. **multi-bit spatial faults**: k distinct bits of one output operand;
//! 3. **temporal burst faults**: one bit at each of k consecutive target
//!    instructions;
//! 4. **instruction-class campaigns** (`-fi-instrs`): outcome mixes per
//!    class.
//!
//! Run with: `cargo run --release --example extensions`

use refine_campaign::campaign::CampaignConfig;
use refine_campaign::{classify, experiments, Golden};
use refine_core::{compile_with_fi, BurstRt, FiOptions, MultiBitProbe, ProfilingRt};
use refine_ir::passes::OptLevel;
use refine_machine::{Machine, NoFi, RunConfig};
use refine_pinfi::{OpcodeFault, OpcodeInjector};

fn main() {
    let program = refine_benchmarks::by_name("XSBench").unwrap();
    let module = program.module();

    // --- 1. Opcode corruption on the clean binary.
    let clean = compile_with_fi(&module, OptLevel::O2, &FiOptions::default());
    let native = Machine::run(&clean.binary, &RunConfig::default(), &mut NoFi, None);
    let golden = Golden::from_run(&native);
    println!("opcode corruption on {} ({} dynamic instructions):", program.name, native.instrs_retired);
    let (mut illegal, mut mutated, mut unchanged) = (0, 0, 0);
    let mut outcomes = std::collections::HashMap::new();
    for k in 0..60u64 {
        let target = 1 + (native.instrs_retired * k / 60);
        let mut inj = OpcodeInjector::new(target, k + 1);
        let cfg = RunConfig { max_cycles: native.cycles * 10, stack_words: 1 << 16 };
        let r = Machine::run(&clean.binary, &cfg, &mut NoFi, Some(&mut inj));
        match inj.fault {
            Some(OpcodeFault::Illegal) => illegal += 1,
            Some(OpcodeFault::Mutated { .. }) => mutated += 1,
            Some(OpcodeFault::Unchanged) | None => unchanged += 1,
        }
        *outcomes.entry(classify(&golden, &r).label()).or_insert(0u32) += 1;
    }
    println!("  faults: {mutated} mutated opcodes, {illegal} illegal (#UD), {unchanged} benign encoding bits");
    println!("  outcomes: {outcomes:?}");
    println!("  (REFINE itself cannot produce these — its emitter rejects invalid opcodes, paper §4.5)\n");

    // --- 2./3. Multi-bit models through REFINE's own instrumentation.
    let inst = compile_with_fi(&module, OptLevel::O2, &FiOptions::all());
    let mut prof = ProfilingRt::default();
    let profile = Machine::run(&inst.binary, &RunConfig::default(), &mut prof, None);
    let golden_i = Golden::from_run(&profile);
    let cfg = RunConfig { max_cycles: profile.cycles * 10, stack_words: 1 << 16 };

    println!("multi-bit spatial faults (k bits of one operand at one instruction, binary level):");
    let clean_cfg = RunConfig { max_cycles: native.cycles * 10, stack_words: 1 << 16 };
    for k in [1, 2, 4, 8] {
        let mut tally = std::collections::HashMap::new();
        for t in 0..40u64 {
            let target = 1 + (native.instrs_retired / 2 * t / 40);
            let mut p = MultiBitProbe::new(target, k, 100 + t);
            let r = Machine::run(&clean.binary, &clean_cfg, &mut NoFi, Some(&mut p));
            *tally.entry(classify(&golden, &r).label()).or_insert(0u32) += 1;
        }
        println!("  k={k}: {tally:?}");
    }

    println!("\ntemporal burst faults (one bit at each of k consecutive instructions):");
    for k in [1, 3, 8] {
        let mut tally = std::collections::HashMap::new();
        for t in 0..40u64 {
            let target = 1 + (prof.count * t / 40);
            let mut rt = BurstRt::new(target, k, 500 + t);
            let r = Machine::run(&inst.binary, &cfg, &mut rt, None);
            *tally.entry(classify(&golden_i, &r).label()).or_insert(0u32) += 1;
        }
        println!("  k={k}: {tally:?}");
    }

    // --- 4. Instruction-class ablation.
    println!();
    let cfg = CampaignConfig { trials: 100, seed: 7, jobs: 0, checkpoint: true, ..CampaignConfig::default() };
    print!(
        "{}",
        experiments::class_ablation(&["XSBench".to_string()], &cfg)
    );
}
