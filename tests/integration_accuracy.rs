//! The paper's headline claims, in miniature (full-scale versions live in
//! the criterion bench harness and `refine-experiments`):
//!
//! * REFINE and PINFI sample the identical population and produce
//!   statistically indistinguishable outcome distributions;
//! * LLFI's distribution diverges much more strongly;
//! * LLFI campaigns are the slowest; REFINE stays in PINFI's neighbourhood.

use refine_campaign::campaign::{run_campaign, CampaignConfig};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_stats::chi2_contingency;

fn subject() -> refine_ir::Module {
    // A mixed int/float kernel with calls — representative without being
    // slow in debug-mode CI runs.
    refine_frontend::compile_source(
        "fvar a[48];\n\
         fvar b[48];\n\
         fn saxpy(alpha: float) {\n\
           for (i = 0; i < 48; i = i + 1) { b[i] = b[i] + alpha * a[i]; }\n\
           return 0;\n\
         }\n\
         fn norm() : float {\n\
           let s: float = 0.0;\n\
           for (i = 0; i < 48; i = i + 1) { s = s + b[i] * b[i]; }\n\
           return sqrt(s);\n\
         }\n\
         fn main() {\n\
           for (i = 0; i < 48; i = i + 1) { a[i] = float(i % 9) * 0.25 + 0.5; b[i] = 1.0; }\n\
           for (k = 0; k < 8; k = k + 1) { saxpy(0.125); }\n\
           print_f(norm());\n\
           return 0;\n\
         }",
    )
    .unwrap()
}

#[test]
fn populations_and_golden_identical_for_refine_and_pinfi() {
    let m = subject();
    let refine = PreparedTool::prepare(&m, Tool::Refine);
    let pinfi = PreparedTool::prepare(&m, Tool::Pinfi);
    assert_eq!(refine.population, pinfi.population);
    assert_eq!(refine.golden, pinfi.golden);
    let llfi = PreparedTool::prepare(&m, Tool::Llfi);
    assert!(llfi.population < pinfi.population, "IR population must be smaller");
    assert_eq!(llfi.golden, pinfi.golden);
}

/// Table 5 in miniature: with a few hundred trials, REFINE-vs-PINFI should
/// look like two samples of one distribution, while LLFI diverges far more.
#[test]
fn refine_tracks_pinfi_better_than_llfi() {
    let m = subject();
    let cfg = CampaignConfig { trials: 300, seed: 20170612, jobs: 4, checkpoint: true, ..CampaignConfig::default() };
    let llfi = run_campaign(&m, Tool::Llfi, &cfg);
    let refine = run_campaign(&m, Tool::Refine, &cfg);
    let pinfi = run_campaign(&m, Tool::Pinfi, &cfg);

    let chi_refine = chi2_contingency(&[refine.counts.row(), pinfi.counts.row()]);
    let chi_llfi = chi2_contingency(&[llfi.counts.row(), pinfi.counts.row()]);

    assert!(
        !chi_refine.significant(0.01),
        "REFINE vs PINFI rejected: p = {:.4} (counts {:?} vs {:?})",
        chi_refine.p_value,
        refine.counts,
        pinfi.counts
    );
    assert!(
        chi_llfi.statistic > chi_refine.statistic,
        "LLFI ({:.2}) must diverge more than REFINE ({:.2})",
        chi_llfi.statistic,
        chi_refine.statistic
    );
}

/// Figure 5 in miniature: campaign-time ordering.
#[test]
fn campaign_speed_shape() {
    let m = subject();
    let cfg = CampaignConfig { trials: 60, seed: 4, jobs: 4, checkpoint: true, ..CampaignConfig::default() };
    let llfi = run_campaign(&m, Tool::Llfi, &cfg);
    let refine = run_campaign(&m, Tool::Refine, &cfg);
    let pinfi = run_campaign(&m, Tool::Pinfi, &cfg);

    let l = llfi.total_cycles as f64 / pinfi.total_cycles as f64;
    let r = refine.total_cycles as f64 / pinfi.total_cycles as f64;
    assert!(
        l > r,
        "LLFI ({l:.2}x) must be slower than REFINE ({r:.2}x) relative to PINFI"
    );
    assert!(
        (0.4..3.0).contains(&r),
        "REFINE must stay in PINFI's neighbourhood, got {r:.2}x"
    );
    assert!(l > 1.2, "LLFI must be clearly slower than PINFI, got {l:.2}x");
}
