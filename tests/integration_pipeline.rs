//! Cross-crate pipeline integration: frontend -> IR -> optimizer ->
//! backend -> machine, with the IR interpreter as the oracle
//! (DESIGN.md invariants 1 and 2) — over the *entire* benchmark suite.

use refine_campaign::format_events;
use refine_core::{compile_with_fi, FiOptions, ProfilingRt};
use refine_ir::interp::{Interp, OutEvent as IrEvent};
use refine_ir::passes::OptLevel;
use refine_machine::{Machine, NoFi, OutEvent as MEvent, RunConfig, RunOutcome};

fn ir_events_to_machine(ev: &[IrEvent]) -> Vec<MEvent> {
    ev.iter()
        .map(|e| match e {
            IrEvent::I64(v) => MEvent::I64(*v),
            IrEvent::F64(v) => MEvent::F64(*v),
            IrEvent::Str(s) => MEvent::Str(s.clone()),
        })
        .collect()
}

/// Invariant 1: interpreter output == compiled machine output, at O0 and O2,
/// for all 14 benchmarks.
#[test]
fn all_benchmarks_compile_and_match_interpreter() {
    for b in refine_benchmarks::all() {
        let m = b.module();
        refine_ir::verify::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let golden = Interp::new(&m, 100_000_000)
            .run()
            .unwrap_or_else(|e| panic!("{} interp: {e}", b.name));
        assert_eq!(golden.exit_code, 0, "{}", b.name);

        for level in [OptLevel::O0, OptLevel::O2] {
            let bin = refine_mir::compile(&m, level);
            let r = Machine::run(&bin, &RunConfig::default(), &mut NoFi, None);
            assert_eq!(
                r.outcome,
                RunOutcome::Exit(0),
                "{} at {level:?}: {:?}",
                b.name,
                r.outcome
            );
            let expect = ir_events_to_machine(&golden.output);
            assert_eq!(
                format_events(&r.output),
                format_events(&expect),
                "{} output mismatch at {level:?}",
                b.name
            );
        }
    }
}

/// Optimization must actually pay: O2 binaries run fewer instructions than
/// O0 binaries in aggregate and on (almost) every benchmark — call-dominated
/// kernels (EP) can tie, since all FPRs are caller-saved as on x64 SysV.
#[test]
fn o2_faster_than_o0_everywhere() {
    let (mut tot0, mut tot2) = (0u64, 0u64);
    for b in refine_benchmarks::all() {
        let m = b.module();
        let r0 = Machine::run(
            &refine_mir::compile(&m, OptLevel::O0),
            &RunConfig::default(),
            &mut NoFi,
            None,
        );
        let r2 = Machine::run(
            &refine_mir::compile(&m, OptLevel::O2),
            &RunConfig::default(),
            &mut NoFi,
            None,
        );
        assert!(
            r2.instrs_retired < r0.instrs_retired + r0.instrs_retired / 100,
            "{}: O2 {} much worse than O0 {}",
            b.name,
            r2.instrs_retired,
            r0.instrs_retired
        );
        tot0 += r0.instrs_retired;
        tot2 += r2.instrs_retired;
    }
    assert!(
        (tot2 as f64) < tot0 as f64 * 0.85,
        "O2 must clearly pay in aggregate: {tot2} vs {tot0}"
    );
}

/// Invariant 2: REFINE- and LLFI-instrumented binaries produce the golden
/// output when no fault triggers (profiling mode), across the suite.
#[test]
fn instrumented_binaries_stay_golden_without_faults() {
    for b in refine_benchmarks::all() {
        let m = b.module();
        let clean = compile_with_fi(&m, OptLevel::O2, &FiOptions::default());
        let golden = Machine::run(&clean.binary, &RunConfig::default(), &mut NoFi, None);

        let refined = compile_with_fi(&m, OptLevel::O2, &FiOptions::all());
        let mut rt = ProfilingRt::default();
        let r = Machine::run(&refined.binary, &RunConfig::default(), &mut rt, None);
        assert_eq!(r.outcome, RunOutcome::Exit(0), "{} (REFINE)", b.name);
        assert_eq!(
            format_events(&r.output),
            format_events(&golden.output),
            "{} (REFINE) output",
            b.name
        );

        let (llfid, _) = refine_llfi::compile_with_llfi(
            &m,
            OptLevel::O2,
            &refine_llfi::LlfiOptions::default(),
        );
        let mut rt = ProfilingRt::default();
        let r = Machine::run(&llfid.binary, &RunConfig::default(), &mut rt, None);
        assert_eq!(r.outcome, RunOutcome::Exit(0), "{} (LLFI)", b.name);
        assert_eq!(
            format_events(&r.output),
            format_events(&golden.output),
            "{} (LLFI) output",
            b.name
        );
    }
}

/// Invariant 3 at suite scale: REFINE's selInstr count equals PINFI's
/// binary-level target count on every benchmark.
#[test]
fn populations_identical_across_suite() {
    for b in refine_benchmarks::all() {
        let m = b.module();
        let clean = compile_with_fi(&m, OptLevel::O2, &FiOptions::default());
        let mut pin = refine_pinfi::PinfiProfiler::default();
        Machine::run(&clean.binary, &RunConfig::default(), &mut NoFi, Some(&mut pin));

        let refined = compile_with_fi(&m, OptLevel::O2, &FiOptions::all());
        let mut rt = ProfilingRt::default();
        Machine::run(&refined.binary, &RunConfig::default(), &mut rt, None);
        assert_eq!(rt.count, pin.count, "{}: population mismatch", b.name);
    }
}
