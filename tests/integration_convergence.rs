//! Golden-convergence early-exit equivalence: detecting that a fired trial's
//! state has re-converged with the golden run and splicing the golden
//! remainder must be a *bit-identical* replacement for executing the suffix
//! — same outcome tables, same fault records, same trace streams — at every
//! jobs count and for all three tools (the DESIGN.md convergence-semantics
//! invariant, end to end).

use proptest::prelude::*;
use refine_campaign::campaign::CampaignConfig;
use refine_campaign::classify::{classify, Outcome};
use refine_campaign::experiments::{run_suite_sharded, SuiteObserver};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_core::CheckpointOptions;
use refine_telemetry::{TraceSink, TrialTrace};
use serde::Serialize;

const TRIALS: u64 = 4;

/// The full evaluation set: the paper's 14-app suite plus the matmul extra.
fn all_apps() -> Vec<String> {
    refine_benchmarks::all()
        .iter()
        .map(|b| b.name.to_string())
        .chain(["matmul".to_string()])
        .collect()
}

/// Run the whole-suite sweep (checkpointing always on) and return the
/// serialized outcome table plus the trace records sorted by
/// (app, tool, trial id).
fn sweep(jobs: usize, convergence: bool) -> (String, Vec<TrialTrace>) {
    let cfg = CampaignConfig {
        trials: TRIALS,
        seed: 0xC09E,
        jobs,
        convergence,
        ..CampaignConfig::default()
    };
    let (sink, buf) = TraceSink::in_memory();
    let apps = all_apps();
    let (suite, _report) = {
        let obs = SuiteObserver { live_progress: false, sink: Some(&sink) };
        run_suite_sharded(&cfg, Some(&apps), &obs, |_, _| {})
    };
    sink.flush().unwrap();
    drop(sink);
    let table = serde::json::to_string(&suite.to_value());
    let mut records = buf.records().unwrap();
    records.sort_by(|a, b| (&a.app, &a.tool, a.trial).cmp(&(&b.app, &b.tool, b.trial)));
    (table, records)
}

/// The tentpole acceptance check: with convergence detection on (default)
/// and off (`--no-convergence`), the 15-app x 3-tool sweep produces
/// byte-identical outcome tables and identical trace records, at `--jobs 1`
/// and `--jobs 4`.
#[test]
fn convergence_on_off_sweeps_are_bit_identical() {
    for jobs in [1usize, 4] {
        let (table_on, recs_on) = sweep(jobs, true);
        let (table_off, recs_off) = sweep(jobs, false);
        assert_eq!(table_on, table_off, "outcome table diverged at jobs={jobs}");
        assert_eq!(recs_on.len(), recs_off.len(), "trace count diverged at jobs={jobs}");
        for (a, b) in recs_on.iter().zip(&recs_off) {
            assert_eq!(a, b, "trace record diverged at jobs={jobs}");
        }
    }
}

/// The early exit actually fires (it is an optimization, not dead code):
/// across a spread of mid-run targets on a real benchmark, at least one
/// REFINE and one PINFI trial must converge, and every converged trial must
/// classify as benign with exactly the golden output — a converged trial
/// that were anything else (in particular SOC) would mean the digest
/// matched a state that was not actually golden.
#[test]
fn converged_trials_are_benign_and_convergence_fires() {
    let m = refine_benchmarks::by_name("HPCCG-1.0").unwrap().module();
    for tool in [Tool::Refine, Tool::Pinfi] {
        let p = PreparedTool::prepare(&m, tool);
        let mut hits = 0u64;
        for k in 1..=24u64 {
            let target = (p.population * k / 25).max(1);
            let t = p.run_trial_full(target, 0x5EED + k);
            let outcome = classify(&p.golden, &t.result);
            if t.fast.converged {
                hits += 1;
                assert!(t.fast.conv_saved_instrs > 0, "{}: convergence saved nothing", tool.name());
                assert_eq!(
                    outcome,
                    Outcome::Benign,
                    "{}: converged trial (target={target}) not benign",
                    tool.name()
                );
            }
            // The contrapositive of the splice guarantee: SOC and crash
            // verdicts are only ever produced by real execution.
            if outcome == Outcome::Soc {
                assert!(!t.fast.converged, "{}: SOC trial spliced as golden", tool.name());
            }
        }
        assert!(hits > 0, "{}: no trial converged on HPCCG-1.0", tool.name());
    }
}

/// `--no-convergence` (checkpoints still on) must not run the convergence
/// loop at all: no trial reports a hit and no instructions are checked.
#[test]
fn no_convergence_disables_the_detector() {
    let m = refine_benchmarks::by_name("HPCCG-1.0").unwrap().module();
    let opts = CheckpointOptions { convergence: false, ..CheckpointOptions::default() };
    let p = PreparedTool::prepare_opt(&m, Tool::Refine, &opts);
    for k in 1..=6u64 {
        let t = p.run_trial_full((p.population * k / 7).max(1), 0x0FF + k);
        assert!(!t.fast.converged);
        assert_eq!(t.fast.conv_checked_instrs, 0);
        assert_eq!(t.fast.conv_saved_instrs, 0);
    }
}

/// Per-trial differential harness: prepare one kernel with a custom
/// checkpoint interval (convergence on) and compare the fast path against
/// the exact path at one (target, seed) point — outcome, output, cycles,
/// retired count and fault record must all match bit-for-bit whether or not
/// the trial converged.
fn assert_trial_equivalence(name: &str, src: &str, interval: u64, frac: f64, seed: u64) {
    let m = refine_frontend::compile_source(src)
        .unwrap_or_else(|e| panic!("{name}: frontend: {e:?}"));
    let ckpt = CheckpointOptions { interval, convergence: true, ..CheckpointOptions::default() };
    for tool in Tool::all() {
        let p = PreparedTool::prepare_opt(&m, tool, &ckpt);
        let target = ((p.population as f64 * frac) as u64).max(1);
        let fast = p.run_trial_full(target, seed);
        let exact = p.run_trial_exact(target, seed);
        let ctx = format!("{name} {} K={interval} target={target} seed={seed}", tool.name());
        assert_eq!(fast.result.outcome, exact.result.outcome, "{ctx}: outcome");
        assert_eq!(fast.result.output, exact.result.output, "{ctx}: output");
        assert_eq!(fast.result.cycles, exact.result.cycles, "{ctx}: cycles");
        assert_eq!(
            fast.result.instrs_retired, exact.result.instrs_retired,
            "{ctx}: instrs_retired"
        );
        assert_eq!(fast.log, exact.log, "{ctx}: fault record");
    }
}

/// The 4-kernel differential corpus (a subset of `integration_checkpoint`'s;
/// that suite owns the checkpoint-only oracle, this one drives the same
/// oracle with the convergence loop armed).
const CORPUS: [(&str, &str); 4] = [
    (
        "float_reduction",
        "fvar v[32];\n\
         fn main() {\n\
           for (i = 0; i < 32; i = i + 1) { v[i] = float(i * 3 + 1) * 0.37; }\n\
           let s: float = 0.0;\n\
           let p: float = 1.0;\n\
           for (i = 0; i < 32; i = i + 1) {\n\
             s = s + sqrt(v[i]);\n\
             if (i % 7 == 0) { p = p * (1.0 + v[i] * 0.01); }\n\
           }\n\
           print_f(s);\n\
           print_f(p);\n\
           return 0;\n\
         }",
    ),
    (
        "lcg_minmax",
        "var seedg;\n\
         fn lcg() { seedg = (seedg * 1103515245 + 12345) % 2147483648; return seedg; }\n\
         fn main() {\n\
           seedg = 7;\n\
           let mx = 0;\n\
           let mn = 2147483648;\n\
           let sum = 0;\n\
           for (i = 0; i < 64; i = i + 1) {\n\
             let x = lcg() % 1000;\n\
             if (x > mx) { mx = x; }\n\
             if (x < mn) { mn = x; }\n\
             sum = sum + x;\n\
           }\n\
           print_i(mx);\n\
           print_i(mn);\n\
           print_i(sum);\n\
           return 0;\n\
         }",
    ),
    (
        "triangular",
        "var a[30];\n\
         fn main() {\n\
           for (i = 0; i < 30; i = i + 1) { a[i] = i * i - 7 * i + 3; }\n\
           let s = 0;\n\
           for (i = 0; i < 30; i = i + 1) {\n\
             for (j = i; j < 30; j = j + 1) { s = s + a[i] * a[j] % 97; }\n\
           }\n\
           print_i(s);\n\
           print_s(\"done\");\n\
           return 0;\n\
         }",
    ),
    (
        "dot_and_norm",
        "fvar x[24];\n\
         fvar y[24];\n\
         fn dot() : float {\n\
           let d: float = 0.0;\n\
           for (i = 0; i < 24; i = i + 1) { d = d + x[i] * y[i]; }\n\
           return d;\n\
         }\n\
         fn main() {\n\
           for (i = 0; i < 24; i = i + 1) {\n\
             x[i] = float(i + 1) * 0.2;\n\
             y[i] = float(24 - i) * 0.3;\n\
           }\n\
           print_f(dot());\n\
           print_f(sqrt(dot()));\n\
           return 0;\n\
         }",
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (kernel, checkpoint interval, target fraction, seed) points
    /// with the convergence loop armed: small intervals make snapshot
    /// triggers dense (maximum chance of a digest comparison), large ones
    /// leave the loop cold; early/late/past-population targets cover
    /// fired-and-converged, fired-and-diverged and never-fired trials. The
    /// fast path must equal the exact path everywhere.
    #[test]
    fn prop_convergent_and_exact_trials_match(
        kernel in 0usize..4,
        interval in 1u64..4000,
        frac in 0.0f64..1.2,
        seed in 0u64..1_000_000,
    ) {
        let (name, src) = CORPUS[kernel];
        assert_trial_equivalence(name, src, interval, frac, seed);
    }
}
