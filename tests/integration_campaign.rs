//! Campaign-harness integration: the paper's workflow (profile -> inject ->
//! classify), the 10x timeout rule, determinism, and fault-log replay.

use refine_campaign::campaign::{run_campaign, CampaignConfig};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_campaign::{classify, Outcome};
use refine_machine::RunOutcome;

fn small_module() -> refine_ir::Module {
    refine_frontend::compile_source(
        "fvar w[24];\n\
         var seedg;\n\
         fn lcg() { seedg = (seedg * 1103515245 + 12345) % 2147483648; return seedg; }\n\
         fn main() {\n\
           seedg = 5;\n\
           for (i = 0; i < 24; i = i + 1) { w[i] = float(lcg() % 100) / 10.0 + 1.0; }\n\
           let s: float = 0.0;\n\
           for (r = 0; r < 6; r = r + 1) {\n\
             for (i = 1; i < 23; i = i + 1) { w[i] = 0.5 * w[i] + 0.25 * (w[i-1] + w[i+1]); }\n\
           }\n\
           for (i = 0; i < 24; i = i + 1) { s = s + w[i]; }\n\
           print_f(s);\n\
           return 0;\n\
         }",
    )
    .unwrap()
}

#[test]
fn workflow_profile_then_inject_then_classify() {
    let m = small_module();
    for tool in Tool::all() {
        let p = PreparedTool::prepare(&m, tool);
        assert!(p.population > 100, "{}", tool.name());
        assert_eq!(p.timeout_cycles, p.profile_cycles * 10, "the 10x rule");
        // A mid-run injection classifies into one of the three categories.
        let r = p.run_trial(p.population / 2, 33);
        let o = classify(&p.golden, &r);
        assert!(matches!(o, Outcome::Crash | Outcome::Soc | Outcome::Benign));
    }
}

#[test]
fn campaigns_deterministic_and_complete() {
    let m = small_module();
    let cfg = CampaignConfig { trials: 50, seed: 11, jobs: 4, checkpoint: true, ..CampaignConfig::default() };
    for tool in Tool::all() {
        let a = run_campaign(&m, tool, &cfg);
        let b = run_campaign(&m, tool, &cfg);
        assert_eq!(a.counts, b.counts, "{}", tool.name());
        assert_eq!(a.counts.total(), 50);
    }
}

/// Outcome diversity: with enough trials every tool observes at least two
/// outcome categories on a real program.
#[test]
fn outcome_diversity() {
    let m = small_module();
    let cfg = CampaignConfig { trials: 80, seed: 5, jobs: 4, checkpoint: true, ..CampaignConfig::default() };
    for tool in Tool::all() {
        let r = run_campaign(&m, tool, &cfg);
        let nonzero = [r.counts.crash, r.counts.soc, r.counts.benign]
            .iter()
            .filter(|&&c| c > 0)
            .count();
        assert!(
            nonzero >= 2,
            "{}: degenerate outcome distribution {:?}",
            tool.name(),
            r.counts
        );
        // Benign outcomes must exist: many faults land in dead flags or
        // overwritten registers.
        assert!(r.counts.benign > 0, "{}: no benign outcomes", tool.name());
    }
}

/// Replay (fault log) reproduces the classified outcome — paper §4.3.1
/// "for reference and repeatability".
#[test]
fn fault_log_replay_reproduces_outcomes() {
    let m = small_module();
    // REFINE replay.
    let p = PreparedTool::prepare(&m, Tool::Refine);
    for k in 1..=5u64 {
        let target = p.population * k / 6 + 1;
        let mut rt = refine_core::InjectingRt::new(target, 1000 + k);
        let cfg = refine_machine::RunConfig {
            max_cycles: p.timeout_cycles,
            stack_words: 1 << 16,
        };
        let r1 = refine_machine::Machine::run(&p.binary, &cfg, &mut rt, None);
        let Some(log) = rt.log else { continue };
        let mut replay = refine_core::ReplayRt::new(log);
        let r2 = refine_machine::Machine::run(&p.binary, &cfg, &mut replay, None);
        assert_eq!(classify(&p.golden, &r1), classify(&p.golden, &r2));
        assert_eq!(r1.outcome, r2.outcome);
    }
}

/// A fault that corrupts the loop bound can hang the program; the timeout
/// rule must classify it as a crash rather than spin forever.
#[test]
fn timeouts_are_crashes() {
    let m = refine_frontend::compile_source(
        "fn main() {\n\
           let n = 1000;\n\
           let s = 0;\n\
           for (i = 0; i < n; i = i + 1) { s = s + i; }\n\
           print_i(s);\n\
           return 0;\n\
         }",
    )
    .unwrap();
    let p = PreparedTool::prepare(&m, Tool::Refine);
    // Sweep trials until one times out (bit flips in `i`/`n` regularly
    // produce huge loop bounds).
    let mut saw_timeout = false;
    for k in 0..2000u64 {
        let target = 1 + (p.population * (k % 500) / 500);
        let r = p.run_trial(target, k);
        if r.outcome == RunOutcome::Timeout {
            saw_timeout = true;
            assert_eq!(classify(&p.golden, &r), Outcome::Crash);
            break;
        }
    }
    assert!(saw_timeout, "no timeout observed in 2000 targeted trials");
}
