//! Sharding-determinism integration: the engine must produce byte-identical
//! outcome tables and trace-record sets at every `--jobs` count (the
//! DESIGN.md deterministic-sharding invariant, end to end).

use refine_campaign::campaign::CampaignConfig;
use refine_campaign::engine::CacheStats;
use refine_campaign::experiments::{run_suite_sharded, SuiteObserver};
use refine_telemetry::{TraceSink, TrialTrace};
use serde::Serialize;
use std::collections::HashMap;

const TRIALS: u64 = 18;
const APPS: [&str; 2] = ["HPCCG-1.0", "CoMD"];

/// Run the two-app sweep at `jobs` workers and return the serialized
/// outcome table, the trace records sorted by (app, tool, trial id), and
/// the run's cache statistics.
fn sweep(jobs: usize) -> (String, Vec<TrialTrace>, CacheStats) {
    let cfg = CampaignConfig { trials: TRIALS, seed: 0xD37, jobs, checkpoint: true, ..CampaignConfig::default() };
    let (sink, buf) = TraceSink::in_memory();
    let apps: Vec<String> = APPS.iter().map(|s| s.to_string()).collect();
    let (suite, report) = {
        let obs = SuiteObserver { live_progress: false, sink: Some(&sink) };
        run_suite_sharded(&cfg, Some(&apps), &obs, |_, _| {})
    };
    sink.flush().unwrap();
    drop(sink);
    let table = serde::json::to_string(&suite.to_value());
    let mut records = buf.records().unwrap();
    records.sort_by(|a, b| {
        (&a.app, &a.tool, a.trial).cmp(&(&b.app, &b.tool, b.trial))
    });
    (table, records, report.cache)
}

/// The satellite check: `--jobs 1`, `--jobs 4` and `--jobs 8` yield
/// byte-identical outcome tables, and identical trace records once sorted
/// by trial id (arrival order is scheduling-dependent; content is not).
#[test]
fn jobs_counts_are_bit_identical() {
    let (table1, recs1, cache1) = sweep(1);
    for jobs in [4usize, 8] {
        let (table, recs, cache) = sweep(jobs);
        assert_eq!(table1, table, "outcome table changed at jobs={jobs}");
        assert_eq!(recs1.len(), recs.len(), "trace count changed at jobs={jobs}");
        for (a, b) in recs1.iter().zip(&recs) {
            assert_eq!(a, b, "trace record diverged at jobs={jobs}");
        }
        // Cache behaviour is scheduling-dependent in hit counts but never
        // in compile counts: one miss per (app, tool).
        assert_eq!(cache.misses, (APPS.len() * 3) as u64, "jobs={jobs}");
    }
    assert_eq!(cache1.misses, (APPS.len() * 3) as u64);
}

/// The trace stream is complete and duplicate-free: every campaign emits
/// exactly one record per trial id in `0..trials`.
#[test]
fn trace_stream_is_complete_per_campaign() {
    let (_, records, _) = sweep(4);
    assert_eq!(records.len(), APPS.len() * 3 * TRIALS as usize);
    let mut per_campaign: HashMap<(String, String), Vec<u64>> = HashMap::new();
    for r in &records {
        per_campaign.entry((r.app.clone(), r.tool.clone())).or_default().push(r.trial);
    }
    assert_eq!(per_campaign.len(), APPS.len() * 3);
    for ((app, tool), mut trials) in per_campaign {
        trials.sort_unstable();
        assert_eq!(
            trials,
            (0..TRIALS).collect::<Vec<u64>>(),
            "{app}/{tool}: missing or duplicated trial ids"
        );
    }
}

/// Trace seeds are a pure function of (campaign seed, app, tool, trial):
/// the same trial id never shares a fault-model seed across apps or tools
/// (independent streams), yet is stable across runs.
#[test]
fn trial_streams_are_independent_and_stable() {
    let (_, a, _) = sweep(4);
    let (_, b, _) = sweep(8);
    let seeds_a: Vec<u64> = a.iter().map(|r| r.seed).collect();
    let seeds_b: Vec<u64> = b.iter().map(|r| r.seed).collect();
    assert_eq!(seeds_a, seeds_b);
    // Same trial id, different (app, tool) => different stream.
    let mut by_trial: HashMap<u64, Vec<u64>> = HashMap::new();
    for r in &a {
        by_trial.entry(r.trial).or_default().push(r.seed);
    }
    for (trial, seeds) in by_trial {
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "trial {trial}: colliding streams");
    }
}
