//! Golden-output snapshot tests: the committed fault-free output of every
//! suite program (all 14) plus the extras (matmul), compared line by line
//! against both executable semantics.
//!
//! The snapshots under `tests/golden/` are the repository's record of what
//! "benign" means — a compiler or machine change that alters any of them
//! silently re-labels campaign outcomes, so it must show up as a diff here.
//! Regenerate deliberately with:
//!
//! ```text
//! REFINE_UPDATE_GOLDEN=1 cargo test --test integration_golden
//! ```

use refine_campaign::format_events;
use refine_ir::interp::{Interp, OutEvent as IrEvent};
use refine_ir::passes::OptLevel;
use refine_machine::{Machine, NoFi, OutEvent as MEvent, RunConfig, RunOutcome};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn snapshot_path(name: &str) -> PathBuf {
    golden_dir().join(format!("{name}.txt"))
}

fn programs() -> Vec<refine_benchmarks::BenchProgram> {
    let mut all = refine_benchmarks::all();
    all.extend(refine_benchmarks::extras());
    all
}

/// The program's fault-free output lines from the compiled O2 binary.
fn machine_lines(b: &refine_benchmarks::BenchProgram) -> Vec<String> {
    let bin = refine_mir::compile(&b.module(), OptLevel::O2);
    let r = Machine::run(&bin, &RunConfig::default(), &mut NoFi, None);
    assert_eq!(r.outcome, RunOutcome::Exit(0), "{}", b.name);
    format_events(&r.output)
}

fn ir_events_to_machine(ev: &[IrEvent]) -> Vec<MEvent> {
    ev.iter()
        .map(|e| match e {
            IrEvent::I64(v) => MEvent::I64(*v),
            IrEvent::F64(v) => MEvent::F64(*v),
            IrEvent::Str(s) => MEvent::Str(s.clone()),
        })
        .collect()
}

#[test]
fn golden_outputs_match_snapshots() {
    let update = std::env::var_os("REFINE_UPDATE_GOLDEN").is_some();
    if update {
        std::fs::create_dir_all(golden_dir()).unwrap();
    }
    let mut checked = 0;
    for b in programs() {
        let lines = machine_lines(&b);
        assert!(!lines.is_empty(), "{}: no output", b.name);
        let path = snapshot_path(b.name);
        let rendered = format!("{}\n", lines.join("\n"));
        if update {
            std::fs::write(&path, &rendered).unwrap();
        } else {
            let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{}: missing snapshot {} ({e}); regenerate with \
                     REFINE_UPDATE_GOLDEN=1",
                    b.name,
                    path.display()
                )
            });
            assert_eq!(
                committed, rendered,
                "{}: golden output drifted from the committed snapshot; if \
                 intentional, regenerate with REFINE_UPDATE_GOLDEN=1",
                b.name
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 15, "14 suite programs + matmul");
}

/// The interpreter reproduces the same snapshots — so a drift in either
/// semantics (not just codegen) is caught against the committed record.
#[test]
fn interpreter_matches_snapshots() {
    for b in programs() {
        let oracle = Interp::new(&b.module(), 100_000_000)
            .run()
            .unwrap_or_else(|e| panic!("{}: interp: {e}", b.name));
        assert_eq!(oracle.exit_code, 0, "{}", b.name);
        let lines = format_events(&ir_events_to_machine(&oracle.output));
        let committed = std::fs::read_to_string(snapshot_path(b.name))
            .unwrap_or_else(|e| panic!("{}: missing snapshot: {e}", b.name));
        assert_eq!(
            committed,
            format!("{}\n", lines.join("\n")),
            "{}: interpreter output drifted from snapshot",
            b.name
        );
    }
}

/// Snapshot hygiene: no stray snapshot files for programs that no longer
/// exist (renames must move their snapshot).
#[test]
fn no_orphan_snapshots() {
    let known: Vec<String> = programs().iter().map(|b| format!("{}.txt", b.name)).collect();
    for entry in std::fs::read_dir(golden_dir()).expect("tests/golden missing") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            known.contains(&name),
            "orphan snapshot tests/golden/{name}: no such benchmark"
        );
    }
}
