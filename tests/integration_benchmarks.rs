//! Benchmark-suite quality gates: deterministic goldens, sensible sizes,
//! meaningful function structure, numerically finite results.

use refine_ir::interp::{Interp, OutEvent};

#[test]
fn goldens_are_finite_numbers() {
    for b in refine_benchmarks::all() {
        let m = b.module();
        let r = Interp::new(&m, 100_000_000).run().unwrap();
        let mut floats = 0;
        for e in &r.output {
            if let OutEvent::F64(v) = e {
                assert!(v.is_finite(), "{} printed a non-finite value: {v}", b.name);
                floats += 1;
            }
        }
        assert!(floats >= 1, "{} should print at least one floating result", b.name);
    }
}

/// Every program keeps the real application's function decomposition
/// (needed for `-fi-funcs` selection to mean anything).
#[test]
fn programs_have_function_structure() {
    for b in refine_benchmarks::all() {
        let m = b.module();
        assert!(
            m.funcs.len() >= 2,
            "{} must have kernels besides main (found {})",
            b.name,
            m.funcs.len()
        );
        assert!(m.func_by_name("main").is_some());
    }
}

/// Dynamic sizes stay inside the band the campaign was budgeted for.
#[test]
fn dynamic_sizes_within_band() {
    for b in refine_benchmarks::all() {
        let m = b.module();
        let r = Interp::new(&m, 100_000_000).run().unwrap();
        assert!(
            r.instrs_executed > 10_000,
            "{}: too small ({} IR instrs) to be a meaningful FI subject",
            b.name,
            r.instrs_executed
        );
        assert!(
            r.instrs_executed < 2_000_000,
            "{}: too large ({} IR instrs) for a 44,856-run campaign",
            b.name,
            r.instrs_executed
        );
    }
}

/// Golden outputs are snapshot-stable (guards against accidental benchmark
/// edits silently changing every experiment).
#[test]
fn golden_snapshots() {
    // Spot-check three apps end to end; values recorded from the first
    // verified run of the suite.
    let checks: [(&str, usize); 3] = [("HPCCG-1.0", 3), ("CoMD", 3), ("EP", 8)];
    for (name, expected_events) in checks {
        let b = refine_benchmarks::by_name(name).unwrap();
        let r = Interp::new(&b.module(), 100_000_000).run().unwrap();
        assert_eq!(
            r.output.len(),
            expected_events,
            "{name}: event count changed — update snapshots deliberately"
        );
    }
    // HPCCG's residual must be small (CG converges) and its x-norm stable.
    let b = refine_benchmarks::by_name("HPCCG-1.0").unwrap();
    let r = Interp::new(&b.module(), 100_000_000).run().unwrap();
    let OutEvent::F64(resid) = r.output[1] else { panic!("expected residual") };
    assert!(resid < 1.0, "CG did not converge: residual {resid}");
}
