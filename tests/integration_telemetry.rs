//! End-to-end observability: a small campaign over every tool streams one
//! provenance record per trial, and the aggregated trace agrees with the
//! campaign's own outcome counts.

use refine_campaign::campaign::{
    run_campaign_observed, CampaignConfig, CampaignHooks, OutcomeCounts,
};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_telemetry::trace::{read_jsonl, TraceSummary};
use refine_telemetry::{Progress, TraceSink};

const TRIALS: u64 = 32;

#[test]
fn traced_campaign_emits_one_record_per_trial() {
    refine_telemetry::enable();
    let module = refine_benchmarks::by_name("matmul").expect("matmul extra exists").module();
    let cfg = CampaignConfig { trials: TRIALS, seed: 0xC0FFEE, jobs: 2, checkpoint: true, ..CampaignConfig::default() };

    let dir = std::env::temp_dir().join("refine-telemetry-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("trace-{}.jsonl", std::process::id()));

    let mut by_tool_counts: Vec<(String, OutcomeCounts)> = Vec::new();
    {
        let sink = TraceSink::to_file(&path).unwrap();
        for tool in Tool::all() {
            let prepared = PreparedTool::prepare(&module, tool);
            let progress = Progress::new(TRIALS, true);
            let hooks = CampaignHooks {
                app: "matmul",
                sink: Some(&sink),
                progress: Some(&progress),
            };
            let r = run_campaign_observed(&prepared, &cfg, &hooks);
            assert_eq!(r.counts.total(), TRIALS);
            assert_eq!(progress.done(), TRIALS, "progress counts every trial");
            by_tool_counts.push((tool.name().to_lowercase(), r.counts));
        }
        sink.flush().unwrap();
    }

    let records = read_jsonl(&path).unwrap();
    assert_eq!(
        records.len() as u64,
        TRIALS * 3,
        "exactly one trace line per trial per tool"
    );

    for (tool, counts) in &by_tool_counts {
        let recs: Vec<_> = records.iter().filter(|r| &r.tool == tool).collect();
        assert_eq!(recs.len() as u64, TRIALS, "{tool}");

        // Trial indices are complete and unique.
        let mut trials: Vec<u64> = recs.iter().map(|r| r.trial).collect();
        trials.sort_unstable();
        assert_eq!(trials, (0..TRIALS).collect::<Vec<_>>(), "{tool}");

        // Trace outcomes reproduce the campaign's counts exactly.
        let count_of = |label: &str| recs.iter().filter(|r| r.outcome == label).count() as u64;
        assert_eq!(count_of("crash"), counts.crash, "{tool} crash");
        assert_eq!(count_of("soc"), counts.soc, "{tool} soc");
        assert_eq!(count_of("benign"), counts.benign, "{tool} benign");
    }

    // Provenance is populated whenever the fault fired: a site always has
    // an opcode label and a bit position.
    let fired: Vec<_> = records.iter().filter(|r| r.site.is_some()).collect();
    assert!(
        fired.len() > records.len() / 2,
        "most injections fire ({} of {})",
        fired.len(),
        records.len()
    );
    for r in &fired {
        assert!(r.opcode.is_some(), "fired fault must carry an opcode: {r:?}");
        assert!(r.bit.is_some());
        assert!(r.bit.unwrap() < 64);
    }
    // Crash records carry a trap cause unless the crash was a bad exit code.
    for r in records.iter().filter(|r| r.outcome == "crash") {
        if let Some(t) = &r.trap {
            assert!(
                ["segfault", "misaligned", "div-fault", "bad-pc", "illegal-instr", "timeout"]
                    .contains(&t.as_str()),
                "unexpected trap cause {t}"
            );
        }
    }

    // The aggregator sees the same totals.
    let summary = TraceSummary::from_records(&records);
    assert_eq!(summary.total, TRIALS * 3);
    assert_eq!(summary.no_injection, (records.len() - fired.len()) as u64);
    for (tool, counts) in &by_tool_counts {
        let t = &summary.by_tool[tool];
        assert_eq!((t.crash, t.soc, t.benign), (counts.crash, counts.soc, counts.benign));
    }
    let table = summary.render();
    assert!(table.contains("tool"), "rendered table has a header");

    // The metrics registry observed every trial, and compile phases were
    // timed (prepare ran the full pipeline under spans).
    let snap = refine_telemetry::registry().snapshot();
    assert!(snap.trial_latency_ns.count >= TRIALS * 3);
    assert!(snap.trial_instrs.count >= TRIALS * 3);
    assert!(snap.trial_cycles.count >= TRIALS * 3);
    let phases = &snap.phases;
    for needed in ["lex", "parse", "isel", "regalloc", "emit", "fi-refine-pass", "fi-llfi-pass"] {
        assert!(
            phases.phases.iter().any(|p| p.name == needed && p.calls > 0),
            "phase {needed} must have been timed"
        );
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn untraced_campaign_is_unchanged_by_observers() {
    // Attaching pure observers (sink, progress) must not change results:
    // identical counts and cycles for an identical campaign identity. The
    // app name is part of that identity — it salts the per-trial fault
    // streams (`program_salt`) — so it is held fixed here.
    let module = refine_benchmarks::by_name("matmul").unwrap().module();
    let cfg = CampaignConfig { trials: 16, seed: 9, jobs: 2, checkpoint: true, ..CampaignConfig::default() };
    let prepared = PreparedTool::prepare(&module, Tool::Refine);

    let bare = CampaignHooks { app: "matmul", sink: None, progress: None };
    let plain = run_campaign_observed(&prepared, &cfg, &bare);
    let sink_dir = std::env::temp_dir().join("refine-telemetry-integration");
    std::fs::create_dir_all(&sink_dir).unwrap();
    let path = sink_dir.join(format!("trace-b-{}.jsonl", std::process::id()));
    let sink = TraceSink::to_file(&path).unwrap();
    let progress = Progress::new(16, true);
    let hooks = CampaignHooks { app: "matmul", sink: Some(&sink), progress: Some(&progress) };
    let observed = run_campaign_observed(&prepared, &cfg, &hooks);

    assert_eq!(plain.counts, observed.counts);
    assert_eq!(plain.total_cycles, observed.total_cycles);

    // A different app name is a different campaign: independent fault
    // streams even from the same prepared artifact and seed.
    let other = CampaignHooks { app: "matmul-2", sink: None, progress: None };
    let renamed = run_campaign_observed(&prepared, &cfg, &other);
    assert_ne!(
        (plain.counts, plain.total_cycles),
        (renamed.counts, renamed.total_cycles),
        "program salt must separate streams"
    );
    std::fs::remove_file(&path).ok();
}
