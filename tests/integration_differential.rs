//! Differential testing of the two executable semantics: for every MiniLang
//! mini-kernel in the corpus, the IR interpreter (the oracle) and the
//! compiled machine backend must produce identical golden output with FI
//! disabled — at O0, at O2, and with each tool's instrumentation attached
//! but never firing.

use proptest::prelude::*;
use refine_campaign::format_events;
use refine_core::{compile_with_fi, FiOptions, ProfilingRt};
use refine_ir::interp::{Interp, OutEvent as IrEvent};
use refine_ir::passes::OptLevel;
use refine_machine::{Machine, NoFi, OutEvent as MEvent, RunConfig, RunOutcome};

fn ir_events_to_machine(ev: &[IrEvent]) -> Vec<MEvent> {
    ev.iter()
        .map(|e| match e {
            IrEvent::I64(v) => MEvent::I64(*v),
            IrEvent::F64(v) => MEvent::F64(*v),
            IrEvent::Str(s) => MEvent::Str(s.clone()),
        })
        .collect()
}

/// Interpret `src`, then check the compiled binary (plain at O0/O2, then
/// REFINE- and LLFI-instrumented with no fault firing) against the
/// interpreter's exit code and output events.
fn assert_differential(name: &str, src: &str) {
    let m = refine_frontend::compile_source(src)
        .unwrap_or_else(|e| panic!("{name}: frontend: {e:?}"));
    refine_ir::verify::verify_module(&m).unwrap_or_else(|e| panic!("{name}: verify: {e}"));
    let oracle = Interp::new(&m, 100_000_000)
        .run()
        .unwrap_or_else(|e| panic!("{name}: interp: {e}"));
    let want = format_events(&ir_events_to_machine(&oracle.output));

    for level in [OptLevel::O0, OptLevel::O2] {
        let bin = refine_mir::compile(&m, level);
        let r = Machine::run(&bin, &RunConfig::default(), &mut NoFi, None);
        assert_eq!(
            r.outcome,
            RunOutcome::Exit(oracle.exit_code),
            "{name} at {level:?}"
        );
        assert_eq!(format_events(&r.output), want, "{name} output at {level:?}");
    }

    // Instrumented but fault-free: the selector counts targets, nothing fires.
    let refined = compile_with_fi(&m, OptLevel::O2, &FiOptions::all());
    let mut rt = ProfilingRt::default();
    let r = Machine::run(&refined.binary, &RunConfig::default(), &mut rt, None);
    assert_eq!(r.outcome, RunOutcome::Exit(oracle.exit_code), "{name} (REFINE)");
    assert_eq!(format_events(&r.output), want, "{name} (REFINE) output");

    let (llfid, _) =
        refine_llfi::compile_with_llfi(&m, OptLevel::O2, &refine_llfi::LlfiOptions::default());
    let mut rt = ProfilingRt::default();
    let r = Machine::run(&llfid.binary, &RunConfig::default(), &mut rt, None);
    assert_eq!(r.outcome, RunOutcome::Exit(oracle.exit_code), "{name} (LLFI)");
    assert_eq!(format_events(&r.output), want, "{name} (LLFI) output");
}

/// The fixed corpus: small kernels chosen to exercise semantics corners —
/// signed division, float/int casts, boundary conditionals, call-heavy
/// code, triangular loops, LCG arithmetic at i64 width.
const CORPUS: [(&str, &str); 8] = [
    (
        "signed_arith",
        "fn main() {\n\
           let s = 0;\n\
           for (i = -7; i < 9; i = i + 1) {\n\
             let q = (i * 13 + 5) / 3;\n\
             let r = (i * 11 - 4) % 5;\n\
             s = s + q * 2 - r;\n\
           }\n\
           print_i(s);\n\
           return 0;\n\
         }",
    ),
    (
        "float_reduction",
        "fvar v[32];\n\
         fn main() {\n\
           for (i = 0; i < 32; i = i + 1) { v[i] = float(i * 3 + 1) * 0.37; }\n\
           let s: float = 0.0;\n\
           let p: float = 1.0;\n\
           for (i = 0; i < 32; i = i + 1) {\n\
             s = s + sqrt(v[i]);\n\
             if (i % 7 == 0) { p = p * (1.0 + v[i] * 0.01); }\n\
           }\n\
           print_f(s);\n\
           print_f(p);\n\
           return 0;\n\
         }",
    ),
    (
        "stencil_boundary",
        "fvar g[40];\n\
         fn main() {\n\
           for (i = 0; i < 40; i = i + 1) { g[i] = float(i % 9) * 0.5; }\n\
           for (t = 0; t < 3; t = t + 1) {\n\
             for (i = 0; i < 40; i = i + 1) {\n\
               if (i == 0) { g[i] = g[i] * 0.5 + g[i+1] * 0.5; }\n\
               else { if (i == 39) { g[i] = g[i] * 0.5 + g[i-1] * 0.5; }\n\
                      else { g[i] = 0.5 * g[i] + 0.25 * (g[i-1] + g[i+1]); } }\n\
             }\n\
           }\n\
           let s: float = 0.0;\n\
           for (i = 0; i < 40; i = i + 1) { s = s + g[i]; }\n\
           print_f(s);\n\
           return 0;\n\
         }",
    ),
    (
        "call_chain",
        "fn sq(x: float) : float { return x * x; }\n\
         fn hyp(a: float, b: float) : float { return sqrt(sq(a) + sq(b)); }\n\
         fn main() {\n\
           let s: float = 0.0;\n\
           for (i = 1; i < 20; i = i + 1) {\n\
             s = s + hyp(float(i) * 0.5, float(20 - i) * 0.25);\n\
           }\n\
           print_f(s);\n\
           return 0;\n\
         }",
    ),
    (
        "lcg_minmax",
        "var seedg;\n\
         fn lcg() { seedg = (seedg * 1103515245 + 12345) % 2147483648; return seedg; }\n\
         fn main() {\n\
           seedg = 7;\n\
           let mx = 0;\n\
           let mn = 2147483648;\n\
           let sum = 0;\n\
           for (i = 0; i < 64; i = i + 1) {\n\
             let x = lcg() % 1000;\n\
             if (x > mx) { mx = x; }\n\
             if (x < mn) { mn = x; }\n\
             sum = sum + x;\n\
           }\n\
           print_i(mx);\n\
           print_i(mn);\n\
           print_i(sum);\n\
           return 0;\n\
         }",
    ),
    (
        "mixed_casts",
        "fn main() {\n\
           let acc: float = 0.0;\n\
           let k = 0;\n\
           for (i = 0; i < 25; i = i + 1) {\n\
             let f: float = float(i) * 0.7 - 3.0;\n\
             k = k + int(f);\n\
             acc = acc + float(k) * 0.125;\n\
           }\n\
           print_i(k);\n\
           print_f(acc);\n\
           return 0;\n\
         }",
    ),
    (
        "triangular",
        "var a[30];\n\
         fn main() {\n\
           for (i = 0; i < 30; i = i + 1) { a[i] = i * i - 7 * i + 3; }\n\
           let s = 0;\n\
           for (i = 0; i < 30; i = i + 1) {\n\
             for (j = i; j < 30; j = j + 1) { s = s + a[i] * a[j] % 97; }\n\
           }\n\
           print_i(s);\n\
           print_s(\"done\");\n\
           return 0;\n\
         }",
    ),
    (
        "dot_and_norm",
        "fvar x[24];\n\
         fvar y[24];\n\
         fn dot() : float {\n\
           let d: float = 0.0;\n\
           for (i = 0; i < 24; i = i + 1) { d = d + x[i] * y[i]; }\n\
           return d;\n\
         }\n\
         fn main() {\n\
           for (i = 0; i < 24; i = i + 1) {\n\
             x[i] = float(i + 1) * 0.2;\n\
             y[i] = float(24 - i) * 0.3;\n\
           }\n\
           print_f(dot());\n\
           print_f(sqrt(dot()));\n\
           return 0;\n\
         }",
    ),
];

#[test]
fn corpus_interpreter_matches_machine() {
    for (name, src) in CORPUS {
        assert_differential(name, src);
    }
}

/// Compilation is a pure function of the module: two compiles in one
/// process emit identical text and identical FI site tables. The campaign
/// engine's artifact cache (and cross-jobs determinism) relies on this —
/// regression test for a hasher-order bug in LICM's hoist ordering.
#[test]
fn compilation_is_deterministic() {
    for b in refine_benchmarks::all() {
        let m = b.module();
        let x = refine_mir::compile(&m, OptLevel::O2);
        let y = refine_mir::compile(&m, OptLevel::O2);
        assert_eq!(x.text, y.text, "{}: plain compile text differs", b.name);

        let fx = compile_with_fi(&m, OptLevel::O2, &FiOptions::all());
        let fy = compile_with_fi(&m, OptLevel::O2, &FiOptions::all());
        assert_eq!(fx.binary.text, fy.binary.text, "{}: REFINE text differs", b.name);
        assert_eq!(fx.sites.len(), fy.sites.len(), "{}: REFINE sites differ", b.name);

        let (lx, sx) =
            refine_llfi::compile_with_llfi(&m, OptLevel::O2, &refine_llfi::LlfiOptions::default());
        let (ly, sy) =
            refine_llfi::compile_with_llfi(&m, OptLevel::O2, &refine_llfi::LlfiOptions::default());
        assert_eq!(lx.binary.text, ly.binary.text, "{}: LLFI text differs", b.name);
        assert_eq!(sx.len(), sy.len(), "{}: LLFI sites differ", b.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential property over a generated kernel family: arbitrary
    /// coefficients, loop bounds and seeds embedded into a template that
    /// mixes integer and float paths. Interpreter and backend must agree
    /// for every instance.
    #[test]
    fn prop_generated_kernels_match(
        seed in 1i64..10_000,
        mul in 1i64..50,
        add in 0i64..100,
        n in 4u64..28,
        scale in 1u64..16,
    ) {
        let src = format!(
            "var s;\n\
             fvar acc[28];\n\
             fn step() {{ s = (s * {mul} + {add}) % 65536; return s; }}\n\
             fn main() {{\n\
               s = {seed};\n\
               let tot = 0;\n\
               let f: float = 0.0;\n\
               for (i = 0; i < {n}; i = i + 1) {{\n\
                 let v = step() % 100;\n\
                 tot = tot + v;\n\
                 acc[i] = float(v * {scale}) * 0.125 + 1.0;\n\
                 f = f + sqrt(acc[i]);\n\
               }}\n\
               if (tot % 2 == 0) {{ print_s(\"even\"); }}\n\
               else {{ print_s(\"odd\"); }}\n\
               print_i(tot);\n\
               print_f(f);\n\
               return 0;\n\
             }}"
        );
        let name = format!("gen({seed},{mul},{add},{n},{scale})");
        assert_differential(&name, &src);
    }
}
