//! Checkpoint fast-forward equivalence: the golden-run checkpoint restore
//! plus the predecoded quiescent fast loop must be a *bit-identical*
//! replacement for full trial interpretation — same outcome tables, same
//! fault records, same trace streams — at every jobs count and for all
//! three tools (the DESIGN.md checkpoint-semantics invariant, end to end).

use proptest::prelude::*;
use refine_campaign::campaign::CampaignConfig;
use refine_campaign::experiments::{run_suite_sharded, SuiteObserver};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_core::CheckpointOptions;
use refine_telemetry::{TraceSink, TrialTrace};
use serde::Serialize;

const TRIALS: u64 = 4;

/// The full evaluation set: the paper's 14-app suite plus the matmul extra.
fn all_apps() -> Vec<String> {
    refine_benchmarks::all()
        .iter()
        .map(|b| b.name.to_string())
        .chain(["matmul".to_string()])
        .collect()
}

/// Run the whole-suite sweep and return the serialized outcome table plus
/// the trace records sorted by (app, tool, trial id).
fn sweep(jobs: usize, checkpoint: bool) -> (String, Vec<TrialTrace>) {
    let cfg = CampaignConfig { trials: TRIALS, seed: 0xC4A7, jobs, checkpoint, ..CampaignConfig::default() };
    let (sink, buf) = TraceSink::in_memory();
    let apps = all_apps();
    let (suite, _report) = {
        let obs = SuiteObserver { live_progress: false, sink: Some(&sink) };
        run_suite_sharded(&cfg, Some(&apps), &obs, |_, _| {})
    };
    sink.flush().unwrap();
    drop(sink);
    let table = serde::json::to_string(&suite.to_value());
    let mut records = buf.records().unwrap();
    records.sort_by(|a, b| (&a.app, &a.tool, a.trial).cmp(&(&b.app, &b.tool, b.trial)));
    (table, records)
}

/// The tentpole acceptance check: with checkpointing on (default) and off
/// (`--no-checkpoint`), the 15-app x 3-tool sweep produces byte-identical
/// outcome tables and identical trace records, at `--jobs 1` and `--jobs 4`.
#[test]
fn checkpoint_on_off_sweeps_are_bit_identical() {
    for jobs in [1usize, 4] {
        let (table_on, recs_on) = sweep(jobs, true);
        let (table_off, recs_off) = sweep(jobs, false);
        assert_eq!(table_on, table_off, "outcome table diverged at jobs={jobs}");
        assert_eq!(recs_on.len(), recs_off.len(), "trace count diverged at jobs={jobs}");
        for (a, b) in recs_on.iter().zip(&recs_off) {
            assert_eq!(a, b, "trace record diverged at jobs={jobs}");
        }
    }
}

/// The fast path is actually exercised, not just bypassed: a prepared tool
/// carries a non-empty checkpoint store, and late-target trials restore
/// from it (skipping a nonzero dynamic prefix).
#[test]
fn late_targets_restore_from_checkpoints() {
    let m = refine_benchmarks::by_name("HPCCG-1.0").unwrap().module();
    for tool in Tool::all() {
        let p = PreparedTool::prepare(&m, tool);
        let fp = p.fastpath.as_deref().unwrap_or_else(|| {
            panic!("{}: default prepare must carry a fastpath", tool.name())
        });
        assert!(!fp.store.is_empty(), "{}: empty checkpoint store", tool.name());
        let t = p.run_trial_full(p.population, 1);
        assert!(t.fast.restored, "{}: late trial did not restore", tool.name());
        assert!(t.fast.skipped_instrs > 0, "{}: restore skipped nothing", tool.name());
    }

    let off = PreparedTool::prepare_opt(&m, Tool::Refine, &CheckpointOptions::disabled());
    assert!(off.fastpath.is_none(), "--no-checkpoint must not build a store");
    let t = off.run_trial_full(off.population, 1);
    assert!(!t.fast.restored);
}

/// Per-trial differential harness: prepare one kernel with a custom
/// checkpoint interval and compare the fast path against the exact path at
/// one (target, seed) point — outcome, output, cycles, retired count and
/// fault record must all match bit-for-bit.
fn assert_trial_equivalence(name: &str, src: &str, interval: u64, frac: f64, seed: u64) {
    let m = refine_frontend::compile_source(src)
        .unwrap_or_else(|e| panic!("{name}: frontend: {e:?}"));
    let ckpt = CheckpointOptions { interval, ..CheckpointOptions::default() };
    for tool in Tool::all() {
        let p = PreparedTool::prepare_opt(&m, tool, &ckpt);
        // Targets past the population are legal (the injector never fires);
        // the fraction range deliberately overshoots to cover that.
        let target = ((p.population as f64 * frac) as u64).max(1);
        let fast = p.run_trial_full(target, seed);
        let exact = p.run_trial_exact(target, seed);
        let ctx = format!("{name} {} K={interval} target={target} seed={seed}", tool.name());
        assert_eq!(fast.result.outcome, exact.result.outcome, "{ctx}: outcome");
        assert_eq!(fast.result.output, exact.result.output, "{ctx}: output");
        assert_eq!(fast.result.cycles, exact.result.cycles, "{ctx}: cycles");
        assert_eq!(
            fast.result.instrs_retired, exact.result.instrs_retired,
            "{ctx}: instrs_retired"
        );
        assert_eq!(fast.log, exact.log, "{ctx}: fault record");
    }
}

/// A couple of corpus kernels checked at fixed awkward points: interval 1
/// (a checkpoint at every event window), target 1 (nothing to skip), and a
/// target beyond the population (the injector never fires).
#[test]
fn fixed_corner_targets_are_equivalent() {
    let (name, src) = CORPUS[0];
    assert_trial_equivalence(name, src, 1, 0.0, 9); // target clamps to 1
    assert_trial_equivalence(name, src, 64, 1.5, 9); // beyond the population
    let (name, src) = CORPUS[4];
    assert_trial_equivalence(name, src, 7, 0.999, 3); // last event
}

/// The 8-kernel differential corpus (same sources as
/// `integration_differential`, which owns the interpreter-vs-machine
/// oracle; here they drive the fast-vs-exact trial oracle).
const CORPUS: [(&str, &str); 8] = [
    (
        "signed_arith",
        "fn main() {\n\
           let s = 0;\n\
           for (i = -7; i < 9; i = i + 1) {\n\
             let q = (i * 13 + 5) / 3;\n\
             let r = (i * 11 - 4) % 5;\n\
             s = s + q * 2 - r;\n\
           }\n\
           print_i(s);\n\
           return 0;\n\
         }",
    ),
    (
        "float_reduction",
        "fvar v[32];\n\
         fn main() {\n\
           for (i = 0; i < 32; i = i + 1) { v[i] = float(i * 3 + 1) * 0.37; }\n\
           let s: float = 0.0;\n\
           let p: float = 1.0;\n\
           for (i = 0; i < 32; i = i + 1) {\n\
             s = s + sqrt(v[i]);\n\
             if (i % 7 == 0) { p = p * (1.0 + v[i] * 0.01); }\n\
           }\n\
           print_f(s);\n\
           print_f(p);\n\
           return 0;\n\
         }",
    ),
    (
        "stencil_boundary",
        "fvar g[40];\n\
         fn main() {\n\
           for (i = 0; i < 40; i = i + 1) { g[i] = float(i % 9) * 0.5; }\n\
           for (t = 0; t < 3; t = t + 1) {\n\
             for (i = 0; i < 40; i = i + 1) {\n\
               if (i == 0) { g[i] = g[i] * 0.5 + g[i+1] * 0.5; }\n\
               else { if (i == 39) { g[i] = g[i] * 0.5 + g[i-1] * 0.5; }\n\
                      else { g[i] = 0.5 * g[i] + 0.25 * (g[i-1] + g[i+1]); } }\n\
             }\n\
           }\n\
           let s: float = 0.0;\n\
           for (i = 0; i < 40; i = i + 1) { s = s + g[i]; }\n\
           print_f(s);\n\
           return 0;\n\
         }",
    ),
    (
        "call_chain",
        "fn sq(x: float) : float { return x * x; }\n\
         fn hyp(a: float, b: float) : float { return sqrt(sq(a) + sq(b)); }\n\
         fn main() {\n\
           let s: float = 0.0;\n\
           for (i = 1; i < 20; i = i + 1) {\n\
             s = s + hyp(float(i) * 0.5, float(20 - i) * 0.25);\n\
           }\n\
           print_f(s);\n\
           return 0;\n\
         }",
    ),
    (
        "lcg_minmax",
        "var seedg;\n\
         fn lcg() { seedg = (seedg * 1103515245 + 12345) % 2147483648; return seedg; }\n\
         fn main() {\n\
           seedg = 7;\n\
           let mx = 0;\n\
           let mn = 2147483648;\n\
           let sum = 0;\n\
           for (i = 0; i < 64; i = i + 1) {\n\
             let x = lcg() % 1000;\n\
             if (x > mx) { mx = x; }\n\
             if (x < mn) { mn = x; }\n\
             sum = sum + x;\n\
           }\n\
           print_i(mx);\n\
           print_i(mn);\n\
           print_i(sum);\n\
           return 0;\n\
         }",
    ),
    (
        "mixed_casts",
        "fn main() {\n\
           let acc: float = 0.0;\n\
           let k = 0;\n\
           for (i = 0; i < 25; i = i + 1) {\n\
             let f: float = float(i) * 0.7 - 3.0;\n\
             k = k + int(f);\n\
             acc = acc + float(k) * 0.125;\n\
           }\n\
           print_i(k);\n\
           print_f(acc);\n\
           return 0;\n\
         }",
    ),
    (
        "triangular",
        "var a[30];\n\
         fn main() {\n\
           for (i = 0; i < 30; i = i + 1) { a[i] = i * i - 7 * i + 3; }\n\
           let s = 0;\n\
           for (i = 0; i < 30; i = i + 1) {\n\
             for (j = i; j < 30; j = j + 1) { s = s + a[i] * a[j] % 97; }\n\
           }\n\
           print_i(s);\n\
           print_s(\"done\");\n\
           return 0;\n\
         }",
    ),
    (
        "dot_and_norm",
        "fvar x[24];\n\
         fvar y[24];\n\
         fn dot() : float {\n\
           let d: float = 0.0;\n\
           for (i = 0; i < 24; i = i + 1) { d = d + x[i] * y[i]; }\n\
           return d;\n\
         }\n\
         fn main() {\n\
           for (i = 0; i < 24; i = i + 1) {\n\
             x[i] = float(i + 1) * 0.2;\n\
             y[i] = float(24 - i) * 0.3;\n\
           }\n\
           print_f(dot());\n\
           print_f(sqrt(dot()));\n\
           return 0;\n\
         }",
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (kernel, checkpoint interval, target fraction, seed) points:
    /// the fast path must equal the exact path everywhere — tiny intervals
    /// (dense snapshots), huge ones (store stays cold), early targets (no
    /// usable checkpoint), late targets (maximum skip) and targets past the
    /// population (the fault never fires).
    #[test]
    fn prop_fast_and_exact_trials_match(
        kernel in 0usize..8,
        interval in 1u64..6000,
        frac in 0.0f64..1.2,
        seed in 0u64..1_000_000,
    ) {
        let (name, src) = CORPUS[kernel];
        assert_trial_equivalence(name, src, interval, frac, seed);
    }
}
