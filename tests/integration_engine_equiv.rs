//! Engine equivalence: the superblock-fused engine and the per-instruction
//! exact stepper must produce byte-identical campaigns.
//!
//! Two layers of evidence:
//!
//! * full-suite sweeps (the paper's 14 apps plus the `matmul` extra, all
//!   three tools) comparing outcome tables, cycle totals and the complete
//!   per-trial provenance record multiset across engines and jobs counts,
//!   with checkpointing on and off;
//! * a property test driving `run_trial_engine` against the
//!   `run_trial_exact` oracle over random (kernel, tool, target, seed)
//!   points.

use proptest::prelude::*;
use refine_campaign::campaign::CampaignConfig;
use refine_campaign::engine::{
    run_sweep, ArtifactCache, ArtifactSource, EngineCampaign, EngineConfig, EngineHooks,
};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_core::ExecEngine;
use refine_machine::OutEvent;
use refine_telemetry::{TraceSink, TrialTrace};
use std::sync::{Arc, OnceLock};

const TRIALS: u64 = 4;
const SEED: u64 = 0x5E_ED5B;

/// The paper suite plus the extras — every program the CLI can name.
fn all_apps() -> Vec<refine_benchmarks::BenchProgram> {
    refine_benchmarks::all().into_iter().chain(refine_benchmarks::extras()).collect()
}

fn specs() -> &'static Vec<EngineCampaign> {
    static SPECS: OnceLock<Vec<EngineCampaign>> = OnceLock::new();
    SPECS.get_or_init(|| {
        let mut specs = Vec::new();
        for b in all_apps() {
            let module = Arc::new(b.module());
            for tool in Tool::all() {
                specs.push(EngineCampaign {
                    app: b.name.to_string(),
                    tool,
                    source: ArtifactSource::Module(Arc::clone(&module)),
                });
            }
        }
        specs
    })
}

fn cfg(engine: ExecEngine, jobs: usize, checkpoint: bool) -> EngineConfig {
    EngineConfig::from_campaign(&CampaignConfig {
        trials: TRIALS,
        seed: SEED,
        jobs,
        checkpoint,
        engine,
        ..CampaignConfig::default()
    })
}

/// Key usable to sort trace records into a canonical order (sharded sweeps
/// emit them in completion order).
fn trace_key(t: &TrialTrace) -> (String, String, u64) {
    (t.app.clone(), t.tool.clone(), t.trial)
}

/// Per-campaign summary: (counts row, total cycles, population).
type SweepSummary = Vec<(Vec<u64>, u64, u64)>;

/// Run a sweep and return (per-campaign `(counts row, cycles, population)`,
/// canonically sorted trace records).
fn sweep(
    engine: ExecEngine,
    jobs: usize,
    checkpoint: bool,
    cache: &ArtifactCache,
) -> (SweepSummary, Vec<TrialTrace>) {
    let (sink, buf) = TraceSink::in_memory();
    let hooks = EngineHooks { sink: Some(&sink), progress: None };
    let report = run_sweep(specs(), &cfg(engine, jobs, checkpoint), cache, &hooks);
    sink.flush().unwrap();
    let summary = report
        .results
        .iter()
        .map(|r| (r.counts.row(), r.total_cycles, r.population))
        .collect();
    let mut records = buf.records().unwrap();
    records.sort_by_key(trace_key);
    (summary, records)
}

/// The tentpole acceptance check: superblock and step engines are
/// byte-identical — outcome tables, total cycles, populations and the full
/// per-trial provenance stream (site, opcode, operand, bit, trap, cycles,
/// instrs) — over the whole suite, at `--jobs 1` and `--jobs 4`, with the
/// checkpoint fast-path on. One artifact cache serves every configuration:
/// the engine is deliberately outside the artifact key.
#[test]
fn engines_byte_identical_across_suite_and_jobs() {
    let cache = ArtifactCache::new();
    let (base_sum, base_rec) = sweep(ExecEngine::Step, 1, true, &cache);
    for jobs in [1usize, 4] {
        let (sum, rec) = sweep(ExecEngine::Superblock, jobs, true, &cache);
        assert_eq!(sum, base_sum, "summary diverged at jobs={jobs}");
        assert_eq!(rec, base_rec, "trace records diverged at jobs={jobs}");
    }
    // Step must also be jobs-invariant against its own baseline.
    let (sum, rec) = sweep(ExecEngine::Step, 4, true, &cache);
    assert_eq!(sum, base_sum);
    assert_eq!(rec, base_rec);
}

/// Same identity with checkpointing off: this drives the cold superblock
/// path (`run_trial_cold_sb`) against the cold exact path for every trial.
#[test]
fn engines_byte_identical_without_checkpoints() {
    let cache = ArtifactCache::new();
    let (step_sum, step_rec) = sweep(ExecEngine::Step, 2, false, &cache);
    let (sb_sum, sb_rec) = sweep(ExecEngine::Superblock, 2, false, &cache);
    assert_eq!(sb_sum, step_sum);
    assert_eq!(sb_rec, step_rec);
}

// ---------------------------------------------------------------------------
// Property layer: run_trial_engine vs the run_trial_exact oracle.
// ---------------------------------------------------------------------------

/// Small MiniLang corpus spanning the fusion-relevant shapes: long
/// straight-line arithmetic, tight branchy loops, call-heavy code, float
/// kernels, memory traffic, and an early-exit program.
const CORPUS: [&str; 8] = [
    // Straight-line integer arithmetic (long fusable blocks) on runtime
    // values, so O2 cannot fold it away.
    "var w[4];\n\
     fn main() {\n\
       for (i = 0; i < 4; i = i + 1) { w[i] = i * 7 + 3; }\n\
       let a = w[0]; let b = w[1]; let c = a * b + w[2];\n\
       let d = c * c - a; let e = d / 3 + b * 11;\n\
       let f = e - d + c * 2; let g = f * a - e + w[3];\n\
       print_i(g + f + e + d + c);\n\
       return 0;\n\
     }",
    // Tight branchy loop (short blocks, many control transfers).
    "fn main() {\n\
       let s = 0;\n\
       for (i = 0; i < 40; i = i + 1) {\n\
         if (i - i / 2 * 2 == 0) { s = s + i; } else { s = s - 1; }\n\
       }\n\
       print_i(s);\n\
       return 0;\n\
     }",
    // Call-heavy (fusion must stop at calls and returns).
    "fn sq(x: int) -> int { return x * x; }\n\
     fn tri(x: int) -> int { return sq(x) + x; }\n\
     fn main() {\n\
       let s = 0;\n\
       for (i = 0; i < 12; i = i + 1) { s = s + tri(i); }\n\
       print_i(s);\n\
       return 0;\n\
     }",
    // Float kernel with sqrt (CallRt boundaries inside the loop).
    "fvar v[16];\n\
     fn main() {\n\
       for (i = 0; i < 16; i = i + 1) { v[i] = float(i) * 0.75 + 1.0; }\n\
       let s: float = 0.0;\n\
       for (i = 0; i < 16; i = i + 1) { s = s + sqrt(v[i]); }\n\
       print_f(s);\n\
       return 0;\n\
     }",
    // Global-array memory traffic.
    "var a[32]; var b[32];\n\
     fn main() {\n\
       for (i = 0; i < 32; i = i + 1) { a[i] = i * 3; }\n\
       for (i = 0; i < 32; i = i + 1) { b[i] = a[31 - i] + a[i]; }\n\
       let s = 0;\n\
       for (i = 0; i < 32; i = i + 1) { s = s + b[i]; }\n\
       print_i(s);\n\
       return 0;\n\
     }",
    // Nested loops with float accumulation.
    "fvar m[24];\n\
     fn main() {\n\
       for (i = 0; i < 24; i = i + 1) { m[i] = float(i * i) * 0.125 + 1.0; }\n\
       let s: float = 0.0;\n\
       for (r = 0; r < 3; r = r + 1) {\n\
         for (i = 0; i < 24; i = i + 1) { s = s + m[i] * 0.5; }\n\
       }\n\
       print_f(s);\n\
       return 0;\n\
     }",
    // Early exit through a conditional return.
    "fn main() {\n\
       let s = 0;\n\
       for (i = 0; i < 100; i = i + 1) {\n\
         s = s + i * i;\n\
         if (s > 600) { print_i(s); return 1; }\n\
       }\n\
       print_i(s);\n\
       return 0;\n\
     }",
    // Mixed int/float conversions.
    "fn main() {\n\
       let s: float = 0.0;\n\
       for (i = 1; i < 20; i = i + 1) { s = s + 1.0 / float(i); }\n\
       print_i(int(s * 1000.0));\n\
       print_f(s);\n\
       return 0;\n\
     }",
];

fn corpus_prepared(kernel: usize, tool: Tool) -> &'static PreparedTool {
    static CELLS: OnceLock<Vec<OnceLock<PreparedTool>>> = OnceLock::new();
    let cells = CELLS.get_or_init(|| (0..CORPUS.len() * 3).map(|_| OnceLock::new()).collect());
    let ti = match tool {
        Tool::Llfi => 0,
        Tool::Refine => 1,
        Tool::Pinfi => 2,
    };
    cells[kernel * 3 + ti].get_or_init(|| {
        let m = refine_frontend::compile_source(CORPUS[kernel]).unwrap();
        PreparedTool::prepare(&m, tool)
    })
}

/// Bit-exact output comparison (NaN-safe).
fn bits(ev: &[OutEvent]) -> Vec<(u8, u64, String)> {
    ev.iter()
        .map(|e| match e {
            OutEvent::I64(v) => (0u8, *v as u64, String::new()),
            OutEvent::F64(v) => (1, v.to_bits(), String::new()),
            OutEvent::Str(s) => (2, 0, s.clone()),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random (kernel, tool, target, seed): both engines reproduce the
    /// exact interpreter bit-for-bit — outcome, output, cycles, retired
    /// instructions and the fault log.
    #[test]
    fn prop_engines_match_exact_oracle(
        kernel in 0usize..CORPUS.len(),
        tool_idx in 0usize..3,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let tool = Tool::all()[tool_idx];
        let p = corpus_prepared(kernel, tool);
        let target = 1 + ((p.population - 1) as f64 * frac) as u64;
        let oracle = p.run_trial_exact(target, seed);
        for engine in [ExecEngine::Superblock, ExecEngine::Step] {
            let t = p.run_trial_engine(engine, target, seed);
            prop_assert_eq!(&t.result.outcome, &oracle.result.outcome, "{:?}", engine);
            prop_assert_eq!(bits(&t.result.output), bits(&oracle.result.output), "{:?}", engine);
            prop_assert_eq!(t.result.cycles, oracle.result.cycles, "{:?}", engine);
            prop_assert_eq!(
                t.result.instrs_retired, oracle.result.instrs_retired, "{:?}", engine
            );
            prop_assert_eq!(t.log, oracle.log, "{:?}", engine);
        }
    }
}
