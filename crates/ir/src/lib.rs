#![warn(missing_docs)]

//! `refine-ir` — the SSA intermediate representation of the REFINE reproduction
//! toolchain.
//!
//! This crate is the analogue of LLVM IR in the paper: a language-independent,
//! RISC-flavoured, load/store SSA representation with an unbounded supply of
//! virtual values. It deliberately abstracts away everything the paper's §3.3
//! identifies as invisible at the IR level — register allocation, function
//! prologue/epilogue, spill traffic, condition flags — so that the accuracy gap
//! between IR-level and backend-level fault injection can be reproduced
//! faithfully by the rest of the workspace.
//!
//! Contents:
//! * [`module`] — modules, functions, basic blocks, globals;
//! * [`instr`] — the instruction set and terminators;
//! * [`builder`] — an ergonomic construction API used by the frontend;
//! * [`verify`] — structural and type verification;
//! * [`dom`] — dominator tree and dominance frontiers;
//! * [`interp`] — a reference interpreter used for differential testing;
//! * [`passes`] — the optimizer (mem2reg, constant folding, local CSE, DCE,
//!   CFG simplification) so that, as in the paper, fault injection operates on
//!   *optimized* code;
//! * [`printer`] — textual IR in an LLVM-ish syntax for the listings
//!   reproduction.

pub mod builder;
pub mod dom;
pub mod instr;
pub mod interp;
pub mod module;
pub mod passes;
pub mod printer;
pub mod verify;

pub use builder::FuncBuilder;
pub use instr::{
    CastOp, FBinOp, FPred, IBinOp, IPred, Instr, Intrinsic, Operand, Terminator,
};
pub use module::{
    BlockId, Function, FuncId, Global, GlobalId, GlobalInit, Module, StrId, Ty, ValueId,
};

/// Result alias for IR-level errors (verification failures and interpreter traps).
pub type IrResult<T> = Result<T, IrError>;

/// Errors produced while verifying or interpreting IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Structural or type error found by the verifier.
    Verify(String),
    /// The interpreter performed an illegal operation (the IR analogue of a
    /// machine trap): out-of-bounds access, division by zero, etc.
    Trap(String),
    /// The interpreter exceeded its instruction budget.
    Timeout,
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::Verify(m) => write!(f, "verify error: {m}"),
            IrError::Trap(m) => write!(f, "trap: {m}"),
            IrError::Timeout => write!(f, "timeout"),
        }
    }
}

impl std::error::Error for IrError {}
