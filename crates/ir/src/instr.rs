//! The IR instruction set.

use crate::module::{BlockId, FuncId, GlobalId, StrId, Ty, ValueId};

/// An instruction operand: an SSA value, an immediate constant, or the
/// address of a global.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// An SSA value defined by a parameter or an earlier instruction.
    Value(ValueId),
    /// Integer (or boolean / pointer-offset) immediate.
    ConstI(i64),
    /// Floating-point immediate.
    ConstF(f64),
    /// Address of a module global.
    Global(GlobalId),
}

impl Operand {
    /// The SSA value referenced by this operand, if any.
    pub fn as_value(&self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(*v),
            _ => None,
        }
    }

    /// True when the operand is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::ConstI(_) | Operand::ConstF(_))
    }
}

/// Integer binary operations. Division and remainder trap on a zero divisor,
/// mirroring the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division; traps on divide-by-zero and `i64::MIN / -1`.
    Div,
    /// Signed remainder; traps like [`IBinOp::Div`].
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left; shift amount is masked to 6 bits like the machine.
    /// Shift left; shift amount is masked to 6 bits like the machine.
    Shl,
    /// Logical shift right (mask 6 bits).
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right (mask 6 bits).
    /// Arithmetic shift right.
    AShr,
}

/// Floating-point binary operations (IEEE-754, no traps; division by zero
/// produces infinities/NaNs exactly like hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Signed integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
}

/// Ordered floating-point comparison predicates (false on NaN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FPred {
    /// Ordered equal.
    Oeq,
    /// Ordered not-equal.
    One,
    /// Ordered less-than.
    Olt,
    /// Ordered less-or-equal.
    Ole,
    /// Ordered greater-than.
    Ogt,
    /// Ordered greater-or-equal.
    Oge,
}

/// Value conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Signed 64-bit integer to binary64.
    SiToF,
    /// binary64 to signed 64-bit integer, truncating toward zero
    /// (saturates at the i64 range like x64 `cvttsd2si`'s defined subset).
    FToSi,
    /// Zero-extend a boolean to i64.
    I1ToI64,
    /// Reinterpret i64 bits as ptr (and vice versa) — no-op at machine level.
    IntToPtr,
    /// Reinterpret ptr as i64.
    PtrToInt,
    /// Reinterpret i64 bits as f64.
    BitsToF,
    /// Reinterpret f64 bits as i64.
    FToBits,
}

/// Built-in operations lowered to runtime calls (libm and I/O in the original
/// programs). These are *calls* from the compiler's perspective: the backend
/// assigns them call-like register-clobbering semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `sqrt(f64) -> f64`
    Sqrt,
    /// `fabs(f64) -> f64`
    Fabs,
    /// `exp(f64) -> f64`
    Exp,
    /// `log(f64) -> f64`
    Log,
    /// `sin(f64) -> f64`
    Sin,
    /// `cos(f64) -> f64`
    Cos,
    /// `floor(f64) -> f64`
    Floor,
    /// `pow(f64, f64) -> f64`
    Pow,
    /// `fmin(f64, f64) -> f64`
    Fmin,
    /// `fmax(f64, f64) -> f64`
    Fmax,
    /// Print a 64-bit integer to the program output.
    PrintI64,
    /// Print a binary64 to the program output.
    PrintF64,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Pow | Intrinsic::Fmin | Intrinsic::Fmax => 2,
            _ => 1,
        }
    }

    /// Result type, when the intrinsic produces a value.
    pub fn result_ty(self) -> Option<Ty> {
        match self {
            Intrinsic::PrintI64 | Intrinsic::PrintF64 => None,
            _ => Some(Ty::F64),
        }
    }

    /// Symbolic (libm-style) name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Floor => "floor",
            Intrinsic::Pow => "pow",
            Intrinsic::Fmin => "fmin",
            Intrinsic::Fmax => "fmax",
            Intrinsic::PrintI64 => "print_i64",
            Intrinsic::PrintF64 => "print_f64",
        }
    }
}

/// An IR instruction. Every instruction that produces a value does so into a
/// fresh SSA value recorded next to it in
/// [`InstrData`](crate::module::InstrData).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Reserve `words` 8-byte words of stack storage; yields the address.
    Alloca {
        /// Size in 8-byte words.
        words: u32,
    },
    /// 8-byte typed load.
    Load {
        /// Address operand (must be pointer-typed).
        addr: Operand,
        /// Type of the loaded value (`I64`, `F64`, or `Ptr`).
        ty: Ty,
    },
    /// 8-byte typed store.
    Store {
        /// Address operand.
        addr: Operand,
        /// Value stored.
        val: Operand,
        /// Type of the stored value.
        ty: Ty,
    },
    /// Integer binary operation.
    IBin {
        /// Operation.
        op: IBinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Floating-point binary operation.
    FBin {
        /// Operation.
        op: FBinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Integer comparison producing an `i1`.
    ICmp {
        /// Predicate.
        pred: IPred,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Ordered floating-point comparison producing an `i1`.
    FCmp {
        /// Predicate.
        pred: FPred,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `cond ? a : b`.
    Select {
        /// Boolean selector.
        cond: Operand,
        /// Value when true.
        a: Operand,
        /// Value when false.
        b: Operand,
        /// Type of `a`/`b`/result.
        ty: Ty,
    },
    /// Conversion.
    Cast {
        /// Kind of conversion.
        op: CastOp,
        /// Source value.
        v: Operand,
    },
    /// Address computation: `base + idx * scale + disp` (bytes). The LLVM
    /// `getelementptr` analogue; the backend folds it into addressing modes,
    /// which is why IR-level FI never sees this arithmetic as instructions.
    PtrAdd {
        /// Base pointer.
        base: Operand,
        /// Element index (i64).
        idx: Operand,
        /// Byte scale applied to `idx` (usually 8).
        scale: i64,
        /// Constant byte displacement.
        disp: i64,
    },
    /// Direct call to another function in the module.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument operands (types must match the callee's parameters).
        args: Vec<Operand>,
    },
    /// Built-in runtime operation (libm / output).
    IntrinsicCall {
        /// Which intrinsic.
        which: Intrinsic,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Print an interned string literal (program banner/labels).
    PrintStr {
        /// The literal.
        s: StrId,
    },
    /// An LLFI-style `injectFault` runtime call, inserted only by IR-level
    /// FI instrumentation (never by frontends). Takes the instrumented
    /// instruction's result and returns a possibly-bit-flipped copy; lowers
    /// to a C-ABI runtime call, which is exactly the code-generation
    /// interference the paper's §3.3.2 describes.
    LlfiInject {
        /// Static IR site id.
        site: u64,
        /// The instrumented value.
        val: Operand,
        /// Value type (determines the flip width: 1 for `i1`, 64 otherwise).
        ty: Ty,
    },
    /// SSA phi: value chosen by predecessor block.
    Phi {
        /// `(pred, value)` pairs; must cover every predecessor exactly once.
        incomings: Vec<(BlockId, Operand)>,
        /// Result type.
        ty: Ty,
    },
}

impl Instr {
    /// True for instructions with no side effects (candidates for CSE/DCE).
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::IBin { .. }
                | Instr::FBin { .. }
                | Instr::ICmp { .. }
                | Instr::FCmp { .. }
                | Instr::Select { .. }
                | Instr::Cast { .. }
                | Instr::PtrAdd { .. }
                | Instr::Phi { .. }
        )
    }

    /// True for phi nodes.
    pub fn is_phi(&self) -> bool {
        matches!(self, Instr::Phi { .. })
    }

    /// Result type given a lookup for value types, or `None` when the
    /// instruction produces no value.
    pub fn result_ty(&self, ty_of: impl Fn(ValueId) -> Ty, funcs_ret: impl Fn(FuncId) -> Option<Ty>) -> Option<Ty> {
        match self {
            Instr::Alloca { .. } => Some(Ty::Ptr),
            Instr::Load { ty, .. } => Some(*ty),
            Instr::Store { .. } => None,
            Instr::IBin { .. } => Some(Ty::I64),
            Instr::FBin { .. } => Some(Ty::F64),
            Instr::ICmp { .. } | Instr::FCmp { .. } => Some(Ty::I1),
            Instr::Select { ty, .. } => Some(*ty),
            Instr::Cast { op, .. } => Some(match op {
                CastOp::SiToF | CastOp::BitsToF => Ty::F64,
                CastOp::FToSi | CastOp::I1ToI64 | CastOp::PtrToInt | CastOp::FToBits => Ty::I64,
                CastOp::IntToPtr => Ty::Ptr,
            }),
            Instr::PtrAdd { .. } => Some(Ty::Ptr),
            Instr::Call { func, .. } => funcs_ret(*func),
            Instr::IntrinsicCall { which, .. } => which.result_ty(),
            Instr::PrintStr { .. } => None,
            Instr::LlfiInject { ty, .. } => Some(*ty),
            Instr::Phi { ty, .. } => {
                let _ = &ty_of; // phi type is explicit
                Some(*ty)
            }
        }
    }

    /// Visit each operand.
    pub fn for_each_operand(&self, f: &mut impl FnMut(&Operand)) {
        match self {
            Instr::Alloca { .. } | Instr::PrintStr { .. } => {}
            Instr::Load { addr, .. } => f(addr),
            Instr::Store { addr, val, .. } => {
                f(addr);
                f(val);
            }
            Instr::IBin { a, b, .. }
            | Instr::FBin { a, b, .. }
            | Instr::ICmp { a, b, .. }
            | Instr::FCmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Instr::Select { cond, a, b, .. } => {
                f(cond);
                f(a);
                f(b);
            }
            Instr::Cast { v, .. } | Instr::LlfiInject { val: v, .. } => f(v),
            Instr::PtrAdd { base, idx, .. } => {
                f(base);
                f(idx);
            }
            Instr::Call { args, .. } | Instr::IntrinsicCall { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Instr::Phi { incomings, .. } => {
                for (_, op) in incomings {
                    f(op);
                }
            }
        }
    }

    /// Mutably visit each operand (used by the renaming passes).
    pub fn for_each_operand_mut(&mut self, f: &mut impl FnMut(&mut Operand)) {
        match self {
            Instr::Alloca { .. } | Instr::PrintStr { .. } => {}
            Instr::Load { addr, .. } => f(addr),
            Instr::Store { addr, val, .. } => {
                f(addr);
                f(val);
            }
            Instr::IBin { a, b, .. }
            | Instr::FBin { a, b, .. }
            | Instr::ICmp { a, b, .. }
            | Instr::FCmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Instr::Select { cond, a, b, .. } => {
                f(cond);
                f(a);
                f(b);
            }
            Instr::Cast { v, .. } | Instr::LlfiInject { val: v, .. } => f(v),
            Instr::PtrAdd { base, idx, .. } => {
                f(base);
                f(idx);
            }
            Instr::Call { args, .. } | Instr::IntrinsicCall { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Instr::Phi { incomings, .. } => {
                for (_, op) in incomings {
                    f(op);
                }
            }
        }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on an `i1`.
    CondBr {
        /// Condition operand.
        cond: Operand,
        /// Target when true.
        t: BlockId,
        /// Target when false.
        f: BlockId,
    },
    /// Return (with a value for non-void functions).
    Ret(Option<Operand>),
}

impl Terminator {
    /// Mutably visit the terminator's operand, if any.
    pub fn for_each_operand_mut(&mut self, f: &mut impl FnMut(&mut Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Ret(Some(op)) => f(op),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity() {
        assert!(Instr::IBin { op: IBinOp::Add, a: Operand::ConstI(1), b: Operand::ConstI(2) }
            .is_pure());
        assert!(!Instr::Store {
            addr: Operand::ConstI(0),
            val: Operand::ConstI(0),
            ty: Ty::I64
        }
        .is_pure());
        assert!(!Instr::IntrinsicCall { which: Intrinsic::Sqrt, args: vec![] }.is_pure());
    }

    #[test]
    fn operand_visits() {
        let i = Instr::Select {
            cond: Operand::Value(ValueId(0)),
            a: Operand::ConstI(1),
            b: Operand::ConstF(2.0),
            ty: Ty::I64,
        };
        let mut n = 0;
        i.for_each_operand(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn intrinsic_metadata() {
        assert_eq!(Intrinsic::Pow.arity(), 2);
        assert_eq!(Intrinsic::Sqrt.arity(), 1);
        assert_eq!(Intrinsic::PrintF64.result_ty(), None);
        assert_eq!(Intrinsic::Fmax.result_ty(), Some(Ty::F64));
        assert_eq!(Intrinsic::Sqrt.name(), "sqrt");
    }

    #[test]
    fn result_types() {
        let tyof = |_v: ValueId| Ty::I64;
        let fret = |_f: FuncId| Some(Ty::F64);
        assert_eq!(
            Instr::ICmp { pred: IPred::Eq, a: Operand::ConstI(0), b: Operand::ConstI(0) }
                .result_ty(tyof, fret),
            Some(Ty::I1)
        );
        assert_eq!(
            Instr::Cast { op: CastOp::SiToF, v: Operand::ConstI(0) }.result_ty(tyof, fret),
            Some(Ty::F64)
        );
        assert_eq!(
            Instr::Call { func: FuncId(0), args: vec![] }.result_ty(tyof, fret),
            Some(Ty::F64)
        );
    }

    #[test]
    fn operand_helpers() {
        assert_eq!(Operand::Value(ValueId(3)).as_value(), Some(ValueId(3)));
        assert_eq!(Operand::ConstI(1).as_value(), None);
        assert!(Operand::ConstF(0.5).is_const());
        assert!(!Operand::Global(GlobalId(0)).is_const());
    }
}
