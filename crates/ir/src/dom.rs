//! Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).
//!
//! Used by `mem2reg` for SSA construction. Unreachable blocks are ignored.

use crate::module::{BlockId, Function};

/// Immediate-dominator tree plus dominance frontiers for one function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` — immediate dominator of block `b`; the entry dominates
    /// itself. `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Dominance frontier of each block.
    pub frontier: Vec<Vec<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
    /// Reverse postorder of reachable blocks.
    pub rpo: Vec<BlockId>,
}

impl DomTree {
    /// Compute dominators and frontiers for `f`.
    pub fn compute(f: &Function) -> DomTree {
        let n = f.blocks.len();
        let rpo = f.reverse_postorder();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }
        let preds = f.predecessors();

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));

        // Iterate to fixpoint over reverse postorder (CHK).
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if rpo_num[p.index()] == usize::MAX || idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Dominance frontiers.
        let mut frontier = vec![vec![]; n];
        for &b in &rpo {
            if preds[b.index()].len() >= 2 {
                for &p in &preds[b.index()] {
                    if rpo_num[p.index()] == usize::MAX {
                        continue;
                    }
                    let mut runner = p;
                    while Some(runner) != idom[b.index()] {
                        if !frontier[runner.index()].contains(&b) {
                            frontier[runner.index()].push(b);
                        }
                        match idom[runner.index()] {
                            // idom[entry] == entry: stop there to avoid spinning.
                            Some(r) if r != runner => runner = r,
                            _ => break,
                        }
                    }
                }
            }
        }

        // Dominator-tree children.
        let mut children = vec![vec![]; n];
        for &b in rpo.iter().skip(1) {
            if let Some(p) = idom[b.index()] {
                children[p.index()].push(b);
            }
        }

        DomTree { idom, frontier, children, rpo }
    }

    /// Does `a` dominate `b`? (Walks idom chain; both must be reachable.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_num: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_num[a.index()] > rpo_num[b.index()] {
            a = idom[a.index()].expect("idom chain broken");
        }
        while rpo_num[b.index()] > rpo_num[a.index()] {
            b = idom[b.index()].expect("idom chain broken");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Operand, Terminator};
    use crate::module::Function;

    /// Build the classic diamond: 0 -> {1,2} -> 3.
    fn diamond() -> Function {
        let mut f = Function::new("d", vec![], None);
        let b1 = f.add_block("t");
        let b2 = f.add_block("f");
        let b3 = f.add_block("join");
        f.block_mut(BlockId(0)).term =
            Some(Terminator::CondBr { cond: Operand::ConstI(1), t: b1, f: b2 });
        f.block_mut(b1).term = Some(Terminator::Br(b3));
        f.block_mut(b2).term = Some(Terminator::Br(b3));
        f.block_mut(b3).term = Some(Terminator::Ret(None));
        f
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom[1], Some(BlockId(0)));
        assert_eq!(dt.idom[2], Some(BlockId(0)));
        assert_eq!(dt.idom[3], Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.frontier[1], vec![BlockId(3)]);
        assert_eq!(dt.frontier[2], vec![BlockId(3)]);
        assert!(dt.frontier[0].is_empty());
        assert!(dt.frontier[3].is_empty());
    }

    #[test]
    fn loop_frontier_contains_header() {
        // 0 -> 1 (header) -> 2 (body) -> 1, 1 -> 3 (exit)
        let mut f = Function::new("l", vec![], None);
        let h = f.add_block("h");
        let b = f.add_block("b");
        let e = f.add_block("e");
        f.block_mut(BlockId(0)).term = Some(Terminator::Br(h));
        f.block_mut(h).term =
            Some(Terminator::CondBr { cond: Operand::ConstI(1), t: b, f: e });
        f.block_mut(b).term = Some(Terminator::Br(h));
        f.block_mut(e).term = Some(Terminator::Ret(None));
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom[b.index()], Some(h));
        assert_eq!(dt.idom[e.index()], Some(h));
        // The body's frontier is the loop header itself.
        assert_eq!(dt.frontier[b.index()], vec![h]);
        assert!(dt.frontier[h.index()].contains(&h));
    }

    #[test]
    fn unreachable_blocks_ignored() {
        let mut f = Function::new("u", vec![], None);
        let dead = f.add_block("dead");
        f.block_mut(BlockId(0)).term = Some(Terminator::Ret(None));
        f.block_mut(dead).term = Some(Terminator::Ret(None));
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom[dead.index()], None);
        assert_eq!(dt.rpo.len(), 1);
    }
}
