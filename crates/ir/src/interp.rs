//! A reference interpreter for the IR.
//!
//! The interpreter is the oracle for differential testing: for every
//! benchmark, `interpret(module) == run(compile(module))` must hold on the
//! recorded output events. It is also what the campaign uses to produce
//! golden outputs quickly.
//!
//! The memory model intentionally mirrors the machine: globals live in one
//! flat word-addressed segment, allocas in a stack segment, and any access
//! outside those segments traps — the IR analogue of a segfault.

use crate::instr::{CastOp, FBinOp, FPred, IBinOp, IPred, Instr, Intrinsic, Operand, Terminator};
use crate::module::{BlockId, Function, Module, Ty, ValueId};
use crate::{IrError, IrResult};

/// Base address of the global segment (bytes). Matches the machine layout so
/// that pointer values are comparable across interpreter and hardware runs.
pub const GLOBAL_BASE: u64 = 0x0001_0000;
/// Base address of the interpreter's alloca stack (bytes).
pub const STACK_BASE: u64 = 0x4000_0000;

/// One recorded output action of a program. Classification compares *events*
/// rather than formatted text so that interpreter and machine cannot drift on
/// number formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum OutEvent {
    /// `print_i64`.
    I64(i64),
    /// `print_f64`.
    F64(f64),
    /// `print_str`.
    Str(String),
}

/// Result of a complete interpreted execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Exit code: the value returned from `main`.
    pub exit_code: i64,
    /// Output events in emission order.
    pub output: Vec<OutEvent>,
    /// Number of IR instructions executed (dynamic count).
    pub instrs_executed: u64,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Val {
    I(i64),
    F(f64),
}

impl Val {
    fn as_i(self) -> i64 {
        match self {
            Val::I(v) => v,
            Val::F(v) => v.to_bits() as i64,
        }
    }
    fn as_f(self) -> f64 {
        match self {
            Val::F(v) => v,
            Val::I(v) => f64::from_bits(v as u64),
        }
    }
}

/// Interpreter over one module.
pub struct Interp<'m> {
    module: &'m Module,
    globals: Vec<u64>,
    global_base_words: u64,
    stack: Vec<u64>,
    output: Vec<OutEvent>,
    fuel: u64,
    executed: u64,
}

impl<'m> Interp<'m> {
    /// Create an interpreter with a dynamic-instruction budget (`fuel`).
    pub fn new(module: &'m Module, fuel: u64) -> Self {
        let mut globals = Vec::new();
        for g in &module.globals {
            match &g.init {
                crate::module::GlobalInit::Zero(n) => {
                    globals.extend(std::iter::repeat_n(0u64, *n as usize))
                }
                crate::module::GlobalInit::I64s(v) => {
                    globals.extend(v.iter().map(|x| *x as u64))
                }
                crate::module::GlobalInit::F64s(v) => {
                    globals.extend(v.iter().map(|x| x.to_bits()))
                }
            }
        }
        Interp {
            module,
            globals,
            global_base_words: GLOBAL_BASE / 8,
            stack: Vec::new(),
            output: Vec::new(),
            fuel,
            executed: 0,
        }
    }

    /// Byte address of a global, mirroring the linker's layout order.
    pub fn global_addr(module: &Module, g: crate::module::GlobalId) -> u64 {
        let mut off = 0u64;
        for gl in module.globals.iter().take(g.index()) {
            off += gl.init.words() as u64 * 8;
        }
        GLOBAL_BASE + off
    }

    /// Run `main()` to completion.
    pub fn run(mut self) -> IrResult<ExecResult> {
        let main = self
            .module
            .func_by_name("main")
            .ok_or_else(|| IrError::Verify("no main function".into()))?;
        let ret = self.call(main, &[])?;
        let exit_code = ret.map(|v| v.as_i()).unwrap_or(0);
        Ok(ExecResult { exit_code, output: self.output, instrs_executed: self.executed })
    }

    fn trap<T>(msg: impl Into<String>) -> IrResult<T> {
        Err(IrError::Trap(msg.into()))
    }

    fn load_word(&self, addr: u64) -> IrResult<u64> {
        if !addr.is_multiple_of(8) {
            return Self::trap(format!("misaligned load at {addr:#x}"));
        }
        let w = addr / 8;
        if w >= self.global_base_words
            && w < self.global_base_words + self.globals.len() as u64
        {
            return Ok(self.globals[(w - self.global_base_words) as usize]);
        }
        let sw = STACK_BASE / 8;
        if w >= sw && w < sw + self.stack.len() as u64 {
            return Ok(self.stack[(w - sw) as usize]);
        }
        Self::trap(format!("load from unmapped address {addr:#x}"))
    }

    fn store_word(&mut self, addr: u64, val: u64) -> IrResult<()> {
        if !addr.is_multiple_of(8) {
            return Self::trap(format!("misaligned store at {addr:#x}"));
        }
        let w = addr / 8;
        if w >= self.global_base_words
            && w < self.global_base_words + self.globals.len() as u64
        {
            self.globals[(w - self.global_base_words) as usize] = val;
            return Ok(());
        }
        let sw = STACK_BASE / 8;
        if w >= sw && w < sw + self.stack.len() as u64 {
            self.stack[(w - sw) as usize] = val;
            return Ok(());
        }
        Self::trap(format!("store to unmapped address {addr:#x}"))
    }

    fn call(&mut self, fid: crate::module::FuncId, args: &[Val]) -> IrResult<Option<Val>> {
        let f = &self.module.funcs[fid.index()];
        if args.len() != f.params.len() {
            return Self::trap(format!("bad arg count calling @{}", f.name));
        }
        let mut env: Vec<Option<Val>> = vec![None; f.value_tys.len()];
        for (i, a) in args.iter().enumerate() {
            env[i] = Some(*a);
        }
        let stack_mark = self.stack.len();
        let r = self.exec_function(f, &mut env);
        self.stack.truncate(stack_mark);
        r
    }

    fn operand(&self, _f: &Function, env: &[Option<Val>], op: &Operand) -> IrResult<Val> {
        match op {
            Operand::Value(v) => env[v.index()]
                .ok_or_else(|| IrError::Trap(format!("read of unset value %{}", v.0))),
            Operand::ConstI(c) => Ok(Val::I(*c)),
            Operand::ConstF(c) => Ok(Val::F(*c)),
            Operand::Global(g) => Ok(Val::I(Self::global_addr(self.module, *g) as i64)),
        }
    }

    fn exec_function(&mut self, f: &Function, env: &mut [Option<Val>]) -> IrResult<Option<Val>> {
        let mut cur = BlockId(0);
        let mut prev: Option<BlockId> = None;
        loop {
            let block = f.block(cur);
            // Phase 1: evaluate phis against the edge we arrived on.
            let mut phi_writes: Vec<(ValueId, Val)> = Vec::new();
            let mut first_non_phi = 0;
            for (i, id) in block.instrs.iter().enumerate() {
                if let Instr::Phi { incomings, .. } = &id.instr {
                    let pred = prev.ok_or_else(|| {
                        IrError::Trap("phi in entry block".to_string())
                    })?;
                    let (_, op) = incomings
                        .iter()
                        .find(|(p, _)| *p == pred)
                        .ok_or_else(|| IrError::Trap("phi missing incoming".into()))?;
                    let v = self.operand(f, env, op)?;
                    phi_writes.push((id.result.unwrap(), v));
                    first_non_phi = i + 1;
                    self.consume_fuel()?;
                } else {
                    break;
                }
            }
            for (v, val) in phi_writes {
                env[v.index()] = Some(val);
            }
            // Phase 2: ordinary instructions.
            for id in &block.instrs[first_non_phi..] {
                self.consume_fuel()?;
                let out = self.exec_instr(f, env, &id.instr)?;
                if let Some(res) = id.result {
                    env[res.index()] =
                        Some(out.ok_or_else(|| IrError::Trap("instr produced no value".into()))?);
                }
            }
            // Terminator.
            self.consume_fuel()?;
            match block.term.as_ref().expect("verified IR") {
                Terminator::Br(b) => {
                    prev = Some(cur);
                    cur = *b;
                }
                Terminator::CondBr { cond, t, f: fb } => {
                    let c = self.operand(f, env, cond)?.as_i();
                    prev = Some(cur);
                    cur = if c != 0 { *t } else { *fb };
                }
                Terminator::Ret(v) => {
                    return match v {
                        Some(op) => Ok(Some(self.operand(f, env, op)?)),
                        None => Ok(None),
                    };
                }
            }
        }
    }

    fn consume_fuel(&mut self) -> IrResult<()> {
        if self.fuel == 0 {
            return Err(IrError::Timeout);
        }
        self.fuel -= 1;
        self.executed += 1;
        Ok(())
    }

    fn exec_instr(
        &mut self,
        f: &Function,
        env: &mut [Option<Val>],
        instr: &Instr,
    ) -> IrResult<Option<Val>> {
        Ok(match instr {
            Instr::Alloca { words } => {
                let addr = STACK_BASE + self.stack.len() as u64 * 8;
                self.stack.extend(std::iter::repeat_n(0u64, *words as usize));
                Some(Val::I(addr as i64))
            }
            Instr::Load { addr, ty } => {
                let a = self.operand(f, env, addr)?.as_i() as u64;
                let w = self.load_word(a)?;
                Some(match ty {
                    Ty::F64 => Val::F(f64::from_bits(w)),
                    _ => Val::I(w as i64),
                })
            }
            Instr::Store { addr, val, ty } => {
                let a = self.operand(f, env, addr)?.as_i() as u64;
                let v = self.operand(f, env, val)?;
                let w = match ty {
                    Ty::F64 => v.as_f().to_bits(),
                    _ => v.as_i() as u64,
                };
                self.store_word(a, w)?;
                None
            }
            Instr::IBin { op, a, b } => {
                let x = self.operand(f, env, a)?.as_i();
                let y = self.operand(f, env, b)?.as_i();
                Some(Val::I(eval_ibin(*op, x, y)?))
            }
            Instr::FBin { op, a, b } => {
                let x = self.operand(f, env, a)?.as_f();
                let y = self.operand(f, env, b)?.as_f();
                Some(Val::F(eval_fbin(*op, x, y)))
            }
            Instr::ICmp { pred, a, b } => {
                let x = self.operand(f, env, a)?.as_i();
                let y = self.operand(f, env, b)?.as_i();
                Some(Val::I(eval_icmp(*pred, x, y) as i64))
            }
            Instr::FCmp { pred, a, b } => {
                let x = self.operand(f, env, a)?.as_f();
                let y = self.operand(f, env, b)?.as_f();
                Some(Val::I(eval_fcmp(*pred, x, y) as i64))
            }
            Instr::Select { cond, a, b, .. } => {
                let c = self.operand(f, env, cond)?.as_i();
                Some(if c != 0 {
                    self.operand(f, env, a)?
                } else {
                    self.operand(f, env, b)?
                })
            }
            Instr::Cast { op, v } => {
                let x = self.operand(f, env, v)?;
                Some(match op {
                    CastOp::SiToF => Val::F(x.as_i() as f64),
                    CastOp::FToSi => Val::I(f_to_si(x.as_f())),
                    CastOp::I1ToI64 => Val::I(x.as_i() & 1),
                    CastOp::IntToPtr | CastOp::PtrToInt => Val::I(x.as_i()),
                    CastOp::BitsToF => Val::F(f64::from_bits(x.as_i() as u64)),
                    CastOp::FToBits => Val::I(x.as_f().to_bits() as i64),
                })
            }
            Instr::PtrAdd { base, idx, scale, disp } => {
                let b = self.operand(f, env, base)?.as_i();
                let i = self.operand(f, env, idx)?.as_i();
                Some(Val::I(b.wrapping_add(i.wrapping_mul(*scale)).wrapping_add(*disp)))
            }
            Instr::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for (pi, a) in args.iter().enumerate() {
                    let v = self.operand(f, env, a)?;
                    // Coerce const-int literals passed to f64 params.
                    let want = self.module.funcs[func.index()].params[pi];
                    vals.push(match (want, v) {
                        (Ty::F64, Val::I(_)) if matches!(a, Operand::ConstI(_)) => {
                            Val::F(v.as_i() as f64)
                        }
                        _ => v,
                    });
                }
                self.call(*func, &vals)?
            }
            Instr::IntrinsicCall { which, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.operand(f, env, a)?);
                }
                self.intrinsic(*which, &vals)?
            }
            Instr::LlfiInject { val, .. } => {
                // The interpreter is only used for golden runs; the inject
                // call is an identity there (the machine-level runtime
                // performs the real flip).
                Some(self.operand(f, env, val)?)
            }
            Instr::PrintStr { s } => {
                self.output.push(OutEvent::Str(self.module.strings[s.index()].clone()));
                None
            }
            Instr::Phi { .. } => unreachable!("phis handled at block entry"),
        })
    }

    fn intrinsic(&mut self, which: Intrinsic, args: &[Val]) -> IrResult<Option<Val>> {
        Ok(match which {
            Intrinsic::Sqrt => Some(Val::F(args[0].as_f().sqrt())),
            Intrinsic::Fabs => Some(Val::F(args[0].as_f().abs())),
            Intrinsic::Exp => Some(Val::F(args[0].as_f().exp())),
            Intrinsic::Log => Some(Val::F(args[0].as_f().ln())),
            Intrinsic::Sin => Some(Val::F(args[0].as_f().sin())),
            Intrinsic::Cos => Some(Val::F(args[0].as_f().cos())),
            Intrinsic::Floor => Some(Val::F(args[0].as_f().floor())),
            Intrinsic::Pow => Some(Val::F(args[0].as_f().powf(args[1].as_f()))),
            Intrinsic::Fmin => Some(Val::F(args[0].as_f().min(args[1].as_f()))),
            Intrinsic::Fmax => Some(Val::F(args[0].as_f().max(args[1].as_f()))),
            Intrinsic::PrintI64 => {
                self.output.push(OutEvent::I64(args[0].as_i()));
                None
            }
            Intrinsic::PrintF64 => {
                self.output.push(OutEvent::F64(args[0].as_f()));
                None
            }
        })
    }
}

/// `fptosi` with the saturating behaviour both the interpreter and the
/// machine share (Rust's `as` cast semantics).
pub fn f_to_si(x: f64) -> i64 {
    x as i64
}

/// Shared integer binop semantics (also used by the machine).
pub fn eval_ibin(op: IBinOp, x: i64, y: i64) -> IrResult<i64> {
    Ok(match op {
        IBinOp::Add => x.wrapping_add(y),
        IBinOp::Sub => x.wrapping_sub(y),
        IBinOp::Mul => x.wrapping_mul(y),
        IBinOp::Div => {
            if y == 0 || (x == i64::MIN && y == -1) {
                return Err(IrError::Trap("integer divide fault".into()));
            }
            x / y
        }
        IBinOp::Rem => {
            if y == 0 || (x == i64::MIN && y == -1) {
                return Err(IrError::Trap("integer divide fault".into()));
            }
            x % y
        }
        IBinOp::And => x & y,
        IBinOp::Or => x | y,
        IBinOp::Xor => x ^ y,
        IBinOp::Shl => x.wrapping_shl((y & 63) as u32),
        IBinOp::LShr => ((x as u64).wrapping_shr((y & 63) as u32)) as i64,
        IBinOp::AShr => x.wrapping_shr((y & 63) as u32),
    })
}

/// Shared float binop semantics.
pub fn eval_fbin(op: FBinOp, x: f64, y: f64) -> f64 {
    match op {
        FBinOp::Add => x + y,
        FBinOp::Sub => x - y,
        FBinOp::Mul => x * y,
        FBinOp::Div => x / y,
    }
}

/// Shared integer comparison semantics.
pub fn eval_icmp(pred: IPred, x: i64, y: i64) -> bool {
    match pred {
        IPred::Eq => x == y,
        IPred::Ne => x != y,
        IPred::Slt => x < y,
        IPred::Sle => x <= y,
        IPred::Sgt => x > y,
        IPred::Sge => x >= y,
    }
}

/// Shared (ordered) float comparison semantics.
pub fn eval_fcmp(pred: FPred, x: f64, y: f64) -> bool {
    match pred {
        FPred::Oeq => x == y,
        FPred::One => x != y && !x.is_nan() && !y.is_nan(),
        FPred::Olt => x < y,
        FPred::Ole => x <= y,
        FPred::Ogt => x > y,
        FPred::Oge => x >= y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{GlobalInit, Module};

    fn run_main(m: &Module) -> ExecResult {
        Interp::new(m, 1_000_000).run().expect("execution failed")
    }

    #[test]
    fn arithmetic_and_return() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let x = b.ibin(IBinOp::Mul, Operand::ConstI(6), Operand::ConstI(7));
        b.ret(Some(x));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit_code, 42);
    }

    #[test]
    fn loop_sums_to_100() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let header = b.add_block("h");
        let body = b.add_block("b");
        let exit = b.add_block("e");
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let s = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(10));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        let s2 = b.ibin(IBinOp::Add, s, i2);
        b.add_incoming(i, body, i2);
        b.add_incoming(s, body, s2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(s));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit_code, 55);
    }

    #[test]
    fn globals_and_memory() {
        let mut m = Module::new();
        let g = m.add_global("arr", GlobalInit::I64s(vec![10, 20, 30]));
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let p1 = b.elem(Operand::Global(g), Operand::ConstI(1));
        let v = b.load(p1, Ty::I64);
        let p2 = b.elem(Operand::Global(g), Operand::ConstI(2));
        b.store(p2, Operand::ConstI(99), Ty::I64);
        let v2 = b.load(p2, Ty::I64);
        let sum = b.ibin(IBinOp::Add, v, v2);
        b.ret(Some(sum));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit_code, 119);
    }

    #[test]
    fn alloca_roundtrip() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let a = b.alloca(4);
        let p = b.elem(a, Operand::ConstI(3));
        b.store(p, Operand::ConstI(7), Ty::I64);
        let v = b.load(p, Ty::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit_code, 7);
    }

    #[test]
    fn float_math_and_print() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let x = b.fbin(FBinOp::Mul, Operand::ConstF(1.5), Operand::ConstF(4.0));
        let s = b.intrinsic(Intrinsic::Sqrt, vec![x]).unwrap();
        b.intrinsic(Intrinsic::PrintF64, vec![s]);
        b.ret(Some(Operand::ConstI(0)));
        m.add_function(b.finish());
        let r = run_main(&m);
        assert_eq!(r.output, vec![OutEvent::F64(6.0f64.sqrt())]);
    }

    #[test]
    fn call_with_args() {
        let mut m = Module::new();
        let mut cal = FuncBuilder::new("twice", vec![Ty::I64], Some(Ty::I64));
        let p = cal.params()[0];
        let r = cal.ibin(IBinOp::Mul, p, Operand::ConstI(2));
        cal.ret(Some(r));
        let twice = m.add_function(cal.finish());
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let r = b.call(twice, vec![Operand::ConstI(21)], Some(Ty::I64)).unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit_code, 42);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let z = b.ibin(IBinOp::Sub, Operand::ConstI(1), Operand::ConstI(1));
        let d = b.ibin(IBinOp::Div, Operand::ConstI(5), z);
        b.ret(Some(d));
        m.add_function(b.finish());
        assert!(matches!(Interp::new(&m, 1000).run(), Err(IrError::Trap(_))));
    }

    #[test]
    fn wild_pointer_traps() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let p = b.cast(CastOp::IntToPtr, Operand::ConstI(0x10));
        let v = b.load(p, Ty::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(matches!(Interp::new(&m, 1000).run(), Err(IrError::Trap(_))));
    }

    #[test]
    fn fuel_exhaustion_times_out() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let l = b.add_block("l");
        b.br(l);
        b.switch_to(l);
        b.br(l);
        m.add_function(b.finish());
        assert!(matches!(Interp::new(&m, 100).run(), Err(IrError::Timeout)));
    }

    #[test]
    fn ibin_semantics() {
        assert_eq!(eval_ibin(IBinOp::Add, i64::MAX, 1).unwrap(), i64::MIN);
        assert_eq!(eval_ibin(IBinOp::Shl, 1, 65).unwrap(), 2); // masked shift
        assert_eq!(eval_ibin(IBinOp::LShr, -1, 63).unwrap(), 1);
        assert_eq!(eval_ibin(IBinOp::AShr, -8, 1).unwrap(), -4);
        assert!(eval_ibin(IBinOp::Div, i64::MIN, -1).is_err());
        assert!(eval_ibin(IBinOp::Rem, 3, 0).is_err());
    }

    #[test]
    fn fcmp_nan_is_unordered() {
        assert!(!eval_fcmp(FPred::Oeq, f64::NAN, f64::NAN));
        assert!(!eval_fcmp(FPred::Olt, f64::NAN, 1.0));
        assert!(!eval_fcmp(FPred::One, f64::NAN, 1.0));
        assert!(eval_fcmp(FPred::One, 1.0, 2.0));
    }
}
