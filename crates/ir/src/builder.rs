//! Ergonomic IR construction, used by the MiniLang frontend and by tests.

use crate::instr::{
    CastOp, FBinOp, FPred, IBinOp, IPred, Instr, Intrinsic, Operand, Terminator,
};
use crate::module::{BlockId, FuncId, Function, InstrData, StrId, Ty};

/// Builds one [`Function`] by appending instructions at a movable insertion
/// point (always the end of the current block).
pub struct FuncBuilder {
    func: Function,
    cur: BlockId,
}

impl FuncBuilder {
    /// Start building a function; the insertion point is the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Self {
        FuncBuilder { func: Function::new(name, params, ret), cur: BlockId(0) }
    }

    /// The parameter values of the function under construction.
    pub fn params(&self) -> Vec<Operand> {
        self.func.param_values().map(Operand::Value).collect()
    }

    /// Create a new block (does not move the insertion point).
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Move the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// True when the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.func.block(self.cur).term.is_some()
    }

    /// Type of an operand under this function's value table.
    pub fn operand_ty(&self, op: Operand) -> Ty {
        match op {
            Operand::Value(v) => self.func.ty_of(v),
            Operand::ConstI(_) => Ty::I64,
            Operand::ConstF(_) => Ty::F64,
            Operand::Global(_) => Ty::Ptr,
        }
    }

    fn push(&mut self, instr: Instr, ty: Option<Ty>) -> Option<Operand> {
        debug_assert!(
            self.func.block(self.cur).term.is_none(),
            "appending to a terminated block in {}",
            self.func.name
        );
        let result = ty.map(|t| self.func.new_value(t));
        self.func.block_mut(self.cur).instrs.push(InstrData { instr, result });
        result.map(Operand::Value)
    }

    /// Stack allocation of `words` 8-byte words.
    pub fn alloca(&mut self, words: u32) -> Operand {
        self.push(Instr::Alloca { words }, Some(Ty::Ptr)).unwrap()
    }

    /// Stack allocation hoisted into the entry block (inserted after any
    /// existing leading allocas), regardless of the insertion point. Used by
    /// frontends so that allocas in loops do not re-allocate per iteration.
    pub fn alloca_in_entry(&mut self, words: u32) -> Operand {
        let result = self.func.new_value(Ty::Ptr);
        let entry = self.func.block_mut(BlockId(0));
        let at = entry
            .instrs
            .iter()
            .position(|i| !matches!(i.instr, Instr::Alloca { .. }))
            .unwrap_or(entry.instrs.len());
        entry.instrs.insert(
            at,
            InstrData { instr: Instr::Alloca { words }, result: Some(result) },
        );
        Operand::Value(result)
    }

    /// Typed 8-byte load.
    pub fn load(&mut self, addr: Operand, ty: Ty) -> Operand {
        self.push(Instr::Load { addr, ty }, Some(ty)).unwrap()
    }

    /// Typed 8-byte store.
    pub fn store(&mut self, addr: Operand, val: Operand, ty: Ty) {
        self.push(Instr::Store { addr, val, ty }, None);
    }

    /// Integer binary operation.
    pub fn ibin(&mut self, op: IBinOp, a: Operand, b: Operand) -> Operand {
        self.push(Instr::IBin { op, a, b }, Some(Ty::I64)).unwrap()
    }

    /// Floating binary operation.
    pub fn fbin(&mut self, op: FBinOp, a: Operand, b: Operand) -> Operand {
        self.push(Instr::FBin { op, a, b }, Some(Ty::F64)).unwrap()
    }

    /// Integer comparison.
    pub fn icmp(&mut self, pred: IPred, a: Operand, b: Operand) -> Operand {
        self.push(Instr::ICmp { pred, a, b }, Some(Ty::I1)).unwrap()
    }

    /// Float comparison.
    pub fn fcmp(&mut self, pred: FPred, a: Operand, b: Operand) -> Operand {
        self.push(Instr::FCmp { pred, a, b }, Some(Ty::I1)).unwrap()
    }

    /// Select.
    pub fn select(&mut self, cond: Operand, a: Operand, b: Operand, ty: Ty) -> Operand {
        self.push(Instr::Select { cond, a, b, ty }, Some(ty)).unwrap()
    }

    /// Conversion.
    pub fn cast(&mut self, op: CastOp, v: Operand) -> Operand {
        let ty = match op {
            CastOp::SiToF | CastOp::BitsToF => Ty::F64,
            CastOp::FToSi | CastOp::I1ToI64 | CastOp::PtrToInt | CastOp::FToBits => Ty::I64,
            CastOp::IntToPtr => Ty::Ptr,
        };
        self.push(Instr::Cast { op, v }, Some(ty)).unwrap()
    }

    /// Address arithmetic `base + idx*scale + disp`.
    pub fn ptradd(&mut self, base: Operand, idx: Operand, scale: i64, disp: i64) -> Operand {
        self.push(Instr::PtrAdd { base, idx, scale, disp }, Some(Ty::Ptr)).unwrap()
    }

    /// Convenience: address of `base[idx]` for 8-byte elements.
    pub fn elem(&mut self, base: Operand, idx: Operand) -> Operand {
        self.ptradd(base, idx, 8, 0)
    }

    /// Direct call; `ret` must be the callee's return type.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>, ret: Option<Ty>) -> Option<Operand> {
        self.push(Instr::Call { func, args }, ret)
    }

    /// Intrinsic call.
    pub fn intrinsic(&mut self, which: Intrinsic, args: Vec<Operand>) -> Option<Operand> {
        let ty = which.result_ty();
        self.push(Instr::IntrinsicCall { which, args }, ty)
    }

    /// Print a string literal.
    pub fn print_str(&mut self, s: StrId) {
        self.push(Instr::PrintStr { s }, None);
    }

    /// Phi node (typically patched later with [`FuncBuilder::add_incoming`]).
    pub fn phi(&mut self, ty: Ty, incomings: Vec<(BlockId, Operand)>) -> Operand {
        self.push(Instr::Phi { incomings, ty }, Some(ty)).unwrap()
    }

    /// Append an incoming edge to an existing phi (identified by its result).
    pub fn add_incoming(&mut self, phi: Operand, pred: BlockId, val: Operand) {
        let v = phi.as_value().expect("phi operand must be a value");
        for b in &mut self.func.blocks {
            for id in &mut b.instrs {
                if id.result == Some(v) {
                    if let Instr::Phi { incomings, .. } = &mut id.instr {
                        incomings.push((pred, val));
                        return;
                    }
                }
            }
        }
        panic!("add_incoming: phi not found");
    }

    /// Unconditional branch terminator.
    pub fn br(&mut self, b: BlockId) {
        debug_assert!(!self.is_terminated());
        self.func.block_mut(self.cur).term = Some(Terminator::Br(b));
    }

    /// Conditional branch terminator.
    pub fn cond_br(&mut self, cond: Operand, t: BlockId, f: BlockId) {
        debug_assert!(!self.is_terminated());
        self.func.block_mut(self.cur).term = Some(Terminator::CondBr { cond, t, f });
    }

    /// Return terminator.
    pub fn ret(&mut self, v: Option<Operand>) {
        debug_assert!(!self.is_terminated());
        self.func.block_mut(self.cur).term = Some(Terminator::Ret(v));
    }

    /// Finish building, yielding the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_function() {
        let mut b = FuncBuilder::new("add2", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let r = b.ibin(IBinOp::Add, p, Operand::ConstI(2));
        b.ret(Some(r));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].instrs.len(), 1);
        assert!(matches!(f.blocks[0].term, Some(Terminator::Ret(Some(_)))));
    }

    #[test]
    fn builds_loop_with_phi() {
        let mut b = FuncBuilder::new("count", vec![], Some(Ty::I64));
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(10));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let inext = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.add_incoming(i, body, inext);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        if let Instr::Phi { incomings, .. } = &f.blocks[1].instrs[0].instr {
            assert_eq!(incomings.len(), 2);
        } else {
            panic!("first instr of header must be a phi");
        }
    }

    #[test]
    fn operand_types() {
        let mut b = FuncBuilder::new("f", vec![Ty::F64], None);
        let p = b.params()[0];
        assert_eq!(b.operand_ty(p), Ty::F64);
        assert_eq!(b.operand_ty(Operand::ConstI(0)), Ty::I64);
        let a = b.alloca(4);
        assert_eq!(b.operand_ty(a), Ty::Ptr);
        b.ret(None);
    }
}
