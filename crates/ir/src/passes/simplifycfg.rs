//! CFG cleanup: constant-branch folding, unreachable-block removal, and
//! straight-line block merging.

use super::Subst;
use crate::instr::{Instr, Operand, Terminator};
use crate::module::{BlockId, Function};

/// Run CFG simplification on `f`. Returns `true` on change.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    changed |= fold_const_branches(f);
    changed |= merge_straightline(f);
    changed |= remove_unreachable(f);
    changed
}

/// `condbr` on a constant (or with identical targets) becomes `br`.
fn fold_const_branches(f: &mut Function) -> bool {
    let mut changed = false;
    let mut retargets: Vec<(BlockId, BlockId, BlockId)> = Vec::new(); // (block, dead edge target, kept)
    for (bi, b) in f.blocks.iter_mut().enumerate() {
        if let Some(Terminator::CondBr { cond, t, f: fb }) = &b.term {
            let (t, fb) = (*t, *fb);
            let keep = match cond {
                Operand::ConstI(c) => Some(if *c != 0 { t } else { fb }),
                _ if t == fb => Some(t),
                _ => None,
            };
            if let Some(k) = keep {
                let dead = if k == t { fb } else { t };
                b.term = Some(Terminator::Br(k));
                if dead != k {
                    retargets.push((BlockId(bi as u32), dead, k));
                }
                changed = true;
            }
        }
    }
    // Remove phi incomings along deleted edges.
    for (src, dead, _kept) in retargets {
        for id in &mut f.blocks[dead.index()].instrs {
            if let Instr::Phi { incomings, .. } = &mut id.instr {
                incomings.retain(|(p, _)| *p != src);
            }
        }
    }
    changed
}

/// Merge `b -> s` chains where `s` has exactly one predecessor.
fn merge_straightline(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = f.predecessors();
        let mut merged_once = false;
        for bi in 0..f.blocks.len() {
            let Some(Terminator::Br(s)) = f.blocks[bi].term else { continue };
            if s.index() == 0 || s.index() == bi {
                continue; // never merge the entry block or self-loops
            }
            if preds[s.index()].len() != 1 {
                continue;
            }
            // Resolve phis in `s`: single predecessor means each phi is just
            // its lone incoming value.
            let mut subst = Subst::default();
            let succ_instrs = std::mem::take(&mut f.blocks[s.index()].instrs);
            let mut moved = Vec::with_capacity(succ_instrs.len());
            for id in succ_instrs {
                if let Instr::Phi { incomings, .. } = &id.instr {
                    assert_eq!(incomings.len(), 1, "single-pred block phi");
                    subst.insert(id.result.unwrap(), incomings[0].1);
                } else {
                    moved.push(id);
                }
            }
            let succ_term = f.blocks[s.index()].term.take();
            f.blocks[bi].instrs.extend(moved);
            f.blocks[bi].term = succ_term;
            // `s` becomes unreachable; fix phi incomings in s's successors to
            // point at `bi` instead.
            let new_pred = BlockId(bi as u32);
            for t in f.blocks[bi].successors() {
                for id in &mut f.blocks[t.index()].instrs {
                    if let Instr::Phi { incomings, .. } = &mut id.instr {
                        for (p, _) in incomings.iter_mut() {
                            if *p == s {
                                *p = new_pred;
                            }
                        }
                    }
                }
            }
            subst.apply(f);
            changed = true;
            merged_once = true;
            break; // predecessor lists are stale; recompute
        }
        if !merged_once {
            break;
        }
    }
    changed
}

/// Drop unreachable blocks and renumber the survivors.
fn remove_unreachable(f: &mut Function) -> bool {
    let rpo = f.reverse_postorder();
    if rpo.len() == f.blocks.len() {
        return false;
    }
    let mut keep = vec![false; f.blocks.len()];
    for b in &rpo {
        keep[b.index()] = true;
    }
    // Purge phi incomings that arrive from dying blocks.
    for b in &mut f.blocks {
        for id in &mut b.instrs {
            if let Instr::Phi { incomings, .. } = &mut id.instr {
                incomings.retain(|(p, _)| keep[p.index()]);
            }
        }
    }
    // Build the renumbering.
    let mut remap = vec![BlockId(u32::MAX); f.blocks.len()];
    let mut next = 0u32;
    for (i, k) in keep.iter().enumerate() {
        if *k {
            remap[i] = BlockId(next);
            next += 1;
        }
    }
    let mut old = std::mem::take(&mut f.blocks);
    f.blocks = old
        .drain(..)
        .enumerate()
        .filter(|(i, _)| keep[*i])
        .map(|(_, b)| b)
        .collect();
    for b in &mut f.blocks {
        for id in &mut b.instrs {
            if let Instr::Phi { incomings, .. } = &mut id.instr {
                for (p, _) in incomings.iter_mut() {
                    *p = remap[p.index()];
                }
            }
        }
        match &mut b.term {
            Some(Terminator::Br(t)) => *t = remap[t.index()],
            Some(Terminator::CondBr { t, f: fb, .. }) => {
                *t = remap[t.index()];
                *fb = remap[fb.index()];
            }
            _ => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::{IBinOp, IPred};
    use crate::interp::Interp;
    use crate::module::{Module, Ty};
    use crate::verify::verify_module;

    #[test]
    fn folds_constant_branch_and_removes_dead_arm() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let t = b.add_block("t");
        let fb = b.add_block("f");
        b.cond_br(Operand::ConstI(1), t, fb);
        b.switch_to(t);
        b.ret(Some(Operand::ConstI(1)));
        b.switch_to(fb);
        b.ret(Some(Operand::ConstI(2)));
        m.add_function(b.finish());
        assert!(run(&mut m.funcs[0]));
        verify_module(&m).unwrap();
        // Dead arm removed; t merged into entry leaves one block.
        assert_eq!(m.funcs[0].blocks.len(), 1);
        assert_eq!(Interp::new(&m, 100).run().unwrap().exit_code, 1);
    }

    #[test]
    fn merges_chain_of_blocks() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let b1 = b.add_block("b1");
        let b2 = b.add_block("b2");
        let x = b.ibin(IBinOp::Add, Operand::ConstI(1), Operand::ConstI(2));
        b.br(b1);
        b.switch_to(b1);
        let y = b.ibin(IBinOp::Add, x, Operand::ConstI(3));
        b.br(b2);
        b.switch_to(b2);
        b.ret(Some(y));
        m.add_function(b.finish());
        assert!(run(&mut m.funcs[0]));
        verify_module(&m).unwrap();
        assert_eq!(m.funcs[0].blocks.len(), 1);
        assert_eq!(Interp::new(&m, 100).run().unwrap().exit_code, 6);
    }

    #[test]
    fn loop_structure_survives() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let h = b.add_block("h");
        let body = b.add_block("body");
        let e = b.add_block("e");
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(3));
        b.cond_br(c, body, e);
        b.switch_to(body);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.add_incoming(i, body, i2);
        b.br(h);
        b.switch_to(e);
        b.ret(Some(i));
        m.add_function(b.finish());
        run(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        assert_eq!(Interp::new(&m, 1000).run().unwrap().exit_code, 3);
    }

    #[test]
    fn phi_incoming_retargeted_after_merge() {
        // entry -> mid -> join; entry -> join. mid merges nothing (join has 2
        // preds) but folding a const branch can retarget; exercise phi fixups
        // via unreachable removal.
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let mid = b.add_block("mid");
        let join = b.add_block("join");
        b.cond_br(Operand::ConstI(0), mid, join);
        b.switch_to(mid);
        b.br(join);
        b.switch_to(join);
        let p = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(5)), (mid, Operand::ConstI(9))]);
        b.ret(Some(p));
        m.add_function(b.finish());
        assert!(run(&mut m.funcs[0]));
        verify_module(&m).unwrap();
        assert_eq!(Interp::new(&m, 100).run().unwrap().exit_code, 5);
    }
}
