//! Constant folding and safe algebraic simplification.

use super::Subst;
use crate::instr::{CastOp, Instr, Operand};
use crate::interp::{eval_fbin, eval_fcmp, eval_ibin, eval_icmp, f_to_si};
use crate::module::Function;

/// Fold constants in `f`. Returns `true` on change.
pub fn run(f: &mut Function) -> bool {
    let mut subst = Subst::default();
    let mut removed = false;

    for b in &mut f.blocks {
        for id in &mut b.instrs {
            // Resolve operands through earlier folds in the same run.
            id.instr.for_each_operand_mut(&mut |op| *op = subst.resolve(*op));
            let Some(res) = id.result else { continue };
            let replacement = match &id.instr {
                Instr::IBin { op, a: Operand::ConstI(x), b: Operand::ConstI(y) } => {
                    // Leave trapping operations in place: folding a divide
                    // fault away would change program behaviour.
                    eval_ibin(*op, *x, *y).ok().map(Operand::ConstI)
                }
                Instr::IBin { op, a, b } => fold_int_identity(*op, *a, *b),
                Instr::FBin { op, a: Operand::ConstF(x), b: Operand::ConstF(y) } => {
                    Some(Operand::ConstF(eval_fbin(*op, *x, *y)))
                }
                Instr::FBin { op, a, b } => fold_float_identity(*op, *a, *b),
                Instr::ICmp { pred, a: Operand::ConstI(x), b: Operand::ConstI(y) } => {
                    Some(Operand::ConstI(eval_icmp(*pred, *x, *y) as i64))
                }
                Instr::FCmp { pred, a: Operand::ConstF(x), b: Operand::ConstF(y) } => {
                    Some(Operand::ConstI(eval_fcmp(*pred, *x, *y) as i64))
                }
                Instr::Select { cond: Operand::ConstI(c), a, b, .. } => {
                    Some(if *c != 0 { *a } else { *b })
                }
                Instr::Cast { op, v } => match (op, v) {
                    (CastOp::SiToF, Operand::ConstI(x)) => Some(Operand::ConstF(*x as f64)),
                    (CastOp::FToSi, Operand::ConstF(x)) => Some(Operand::ConstI(f_to_si(*x))),
                    (CastOp::I1ToI64, Operand::ConstI(x)) => Some(Operand::ConstI(x & 1)),
                    (CastOp::IntToPtr | CastOp::PtrToInt, Operand::ConstI(x)) => {
                        Some(Operand::ConstI(*x))
                    }
                    (CastOp::BitsToF, Operand::ConstI(x)) => {
                        Some(Operand::ConstF(f64::from_bits(*x as u64)))
                    }
                    (CastOp::FToBits, Operand::ConstF(x)) => {
                        Some(Operand::ConstI(x.to_bits() as i64))
                    }
                    _ => None,
                },
                Instr::Phi { incomings, .. } => {
                    // A phi whose incomings are all the same operand folds.
                    let first = incomings.first().map(|(_, op)| *op);
                    match first {
                        Some(op)
                            if op.as_value() != Some(res)
                                && incomings.iter().all(|(_, o)| *o == op) =>
                        {
                            Some(op)
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(rep) = replacement {
                subst.insert(res, rep);
                removed = true;
            }
        }
    }

    if subst.is_empty() {
        return removed;
    }
    // Drop the folded instructions (pure, result substituted away).
    let folded: std::collections::HashSet<_> = f
        .blocks
        .iter()
        .flat_map(|b| b.instrs.iter())
        .filter_map(|id| {
            id.result
                .filter(|v| !matches!(subst.resolve(Operand::Value(*v)), Operand::Value(x) if x == *v))
        })
        .collect();
    for b in &mut f.blocks {
        b.instrs
            .retain(|id| !(id.instr.is_pure() && id.result.is_some_and(|v| folded.contains(&v))));
        if let Some(t) = &mut b.term {
            t.for_each_operand_mut(&mut |op| *op = subst.resolve(*op));
        }
    }
    subst.apply(f);
    true
}

/// Safe integer identities: `x+0`, `x-0`, `x*1`, `x*0`, `x^x`, shifts by 0.
fn fold_int_identity(op: crate::instr::IBinOp, a: Operand, b: Operand) -> Option<Operand> {
    use crate::instr::IBinOp::*;
    match (op, a, b) {
        (Add, x, Operand::ConstI(0)) | (Add, Operand::ConstI(0), x) => Some(x),
        (Sub, x, Operand::ConstI(0)) => Some(x),
        (Mul, x, Operand::ConstI(1)) | (Mul, Operand::ConstI(1), x) => Some(x),
        (Mul, _, Operand::ConstI(0)) | (Mul, Operand::ConstI(0), _) => Some(Operand::ConstI(0)),
        (Xor, Operand::Value(x), Operand::Value(y)) if x == y => Some(Operand::ConstI(0)),
        (Shl | LShr | AShr, x, Operand::ConstI(0)) => Some(x),
        (Or | And, Operand::Value(x), Operand::Value(y)) if x == y => Some(Operand::Value(x)),
        _ => None,
    }
}

/// Safe float identities (`x*1.0`, `x/1.0` only — additive identities are
/// unsound under signed zero).
fn fold_float_identity(op: crate::instr::FBinOp, a: Operand, b: Operand) -> Option<Operand> {
    use crate::instr::FBinOp::*;
    match (op, a, b) {
        (Mul, x, Operand::ConstF(c)) | (Mul, Operand::ConstF(c), x) if c == 1.0 => Some(x),
        (Div, x, Operand::ConstF(1.0)) => Some(x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::{FBinOp, IBinOp, IPred};
    use crate::module::{Module, Ty};
    use crate::verify::verify_module;

    #[test]
    fn folds_constant_tree() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let x = b.ibin(IBinOp::Add, Operand::ConstI(2), Operand::ConstI(3));
        let y = b.ibin(IBinOp::Mul, x, Operand::ConstI(4));
        b.ret(Some(y));
        m.add_function(b.finish());
        assert!(run(&mut m.funcs[0]));
        verify_module(&m).unwrap();
        assert!(m.funcs[0].blocks[0].instrs.is_empty());
        assert!(matches!(
            m.funcs[0].blocks[0].term,
            Some(crate::instr::Terminator::Ret(Some(Operand::ConstI(20))))
        ));
    }

    #[test]
    fn keeps_trapping_division() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let d = b.ibin(IBinOp::Div, Operand::ConstI(1), Operand::ConstI(0));
        b.ret(Some(d));
        m.add_function(b.finish());
        run(&mut m.funcs[0]);
        assert_eq!(m.funcs[0].blocks[0].instrs.len(), 1, "div-by-zero must survive");
    }

    #[test]
    fn folds_identities() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![Ty::I64, Ty::F64], Some(Ty::F64));
        let p = b.params()[0];
        let q = b.params()[1];
        let x = b.ibin(IBinOp::Add, p, Operand::ConstI(0));
        let y = b.ibin(IBinOp::Mul, x, Operand::ConstI(1));
        let z = b.cast(CastOp::SiToF, y);
        let w = b.fbin(FBinOp::Mul, z, Operand::ConstF(1.0));
        let r = b.fbin(FBinOp::Add, w, q);
        b.ret(Some(r));
        m.add_function(b.finish());
        assert!(run(&mut m.funcs[0]));
        verify_module(&m).unwrap();
        // add+mul+fmul identities gone: only sitofp and fadd remain.
        assert_eq!(m.funcs[0].blocks[0].instrs.len(), 2);
    }

    #[test]
    fn folds_comparison_and_select() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let c = b.icmp(IPred::Slt, Operand::ConstI(1), Operand::ConstI(2));
        let s = b.select(c, Operand::ConstI(10), Operand::ConstI(20), Ty::I64);
        b.ret(Some(s));
        m.add_function(b.finish());
        // Two rounds: fold icmp, then select on the folded condition.
        run(&mut m.funcs[0]);
        run(&mut m.funcs[0]);
        assert!(m.funcs[0].blocks[0].instrs.is_empty());
        assert!(matches!(
            m.funcs[0].blocks[0].term,
            Some(crate::instr::Terminator::Ret(Some(Operand::ConstI(10))))
        ));
    }
}
