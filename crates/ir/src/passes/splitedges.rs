//! Critical-edge splitting, run by the backend before phi lowering.
//!
//! An edge P -> S is critical when P has several successors and S has
//! several predecessors; phi-elimination copies cannot be placed at either
//! end of such an edge without corrupting another path, so a trampoline
//! block is inserted on it.

use crate::instr::{Instr, Terminator};
use crate::module::{BlockId, Function};

/// Split all critical edges of `f`. Returns the number of edges split.
pub fn run(f: &mut Function) -> usize {
    let mut split = 0;
    loop {
        let preds = f.predecessors();
        let mut found: Option<(BlockId, BlockId)> = None;
        'outer: for (bi, b) in f.blocks.iter().enumerate() {
            let succs = b.successors();
            if succs.len() < 2 {
                continue;
            }
            for s in succs {
                if preds[s.index()].len() >= 2 {
                    found = Some((BlockId(bi as u32), s));
                    break 'outer;
                }
            }
        }
        let Some((p, s)) = found else { break };
        let tramp = f.add_block(format!("crit.{}.{}", p.0, s.0));
        f.block_mut(tramp).term = Some(Terminator::Br(s));
        // Retarget the edge p -> s through the trampoline.
        match f.block_mut(p).term.as_mut().expect("terminated") {
            Terminator::CondBr { t, f: fb, .. } => {
                // Retarget only one edge; if both arms point at `s`, split
                // iterations handle them one at a time.
                if *t == s {
                    *t = tramp;
                } else if *fb == s {
                    *fb = tramp;
                }
            }
            _ => unreachable!("critical edge source must be a multi-way branch"),
        }
        // Phi incomings in `s` from `p` now arrive from the trampoline.
        for id in &mut f.blocks[s.index()].instrs {
            if let Instr::Phi { incomings, .. } = &mut id.instr {
                for (pred, _) in incomings.iter_mut() {
                    if *pred == p {
                        *pred = tramp;
                    }
                }
            }
        }
        split += 1;
    }
    split
}

/// True when `f` has no critical edges left.
pub fn is_split(f: &Function) -> bool {
    let preds = f.predecessors();
    for b in &f.blocks {
        let succs = b.successors();
        if succs.len() < 2 {
            continue;
        }
        for s in succs {
            if preds[s.index()].len() >= 2 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::{IBinOp, IPred, Operand};
    use crate::interp::Interp;
    use crate::module::{Module, Ty};
    use crate::verify::verify_module;

    /// A loop with a conditional latch produces a critical back edge.
    #[test]
    fn splits_loop_backedge() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let h = b.add_block("h");
        let e = b.add_block("e");
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.add_incoming(i, h, i2);
        let c = b.icmp(IPred::Slt, i2, Operand::ConstI(7));
        b.cond_br(c, h, e); // h -> h is critical (h has 2 succ, h has 2 preds)
        b.switch_to(e);
        b.ret(Some(i2));
        m.add_function(b.finish());

        let before = Interp::new(&m, 10_000).run().unwrap().exit_code;
        let n = run(&mut m.funcs[0]);
        assert!(n >= 1);
        assert!(is_split(&m.funcs[0]));
        verify_module(&m).unwrap();
        let after = Interp::new(&m, 10_000).run().unwrap().exit_code;
        assert_eq!(before, after);
        assert_eq!(after, 7);
    }

    #[test]
    fn leaves_clean_cfgs_alone() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        b.ret(Some(Operand::ConstI(0)));
        m.add_function(b.finish());
        assert_eq!(run(&mut m.funcs[0]), 0);
        assert!(is_split(&m.funcs[0]));
    }
}
