//! The IR optimizer.
//!
//! LLFI-class tools instrument *after* these passes run (the paper, §3.3.2,
//! and LLFI's documented build flow), and REFINE runs in the backend after
//! lowering of the optimized IR — so both tools in this workspace call
//! [`optimize`] first. The pass set is the minimum that makes the machine
//! code realistically optimized: allocas promoted to SSA (`mem2reg`),
//! constants folded, redundant expressions removed, dead code eliminated,
//! and the CFG cleaned up.

pub mod constfold;
pub mod cse;
pub mod dce;
pub mod gvn;
pub mod inline;
pub mod licm;
pub mod mem2reg;
pub mod simplifycfg;
pub mod splitedges;

use crate::module::{Function, Module, ValueId};
use crate::instr::Operand;
use std::collections::HashMap;

/// Optimization level, mirroring `-O0`/`-O2` in the paper's build recipes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// No IR transformation at all.
    O0,
    /// mem2reg + folding + CSE + DCE + CFG simplification, iterated.
    O2,
}

/// Run the optimizer over every function of `m`.
pub fn optimize(m: &mut Module, level: OptLevel) {
    if level == OptLevel::O0 {
        return;
    }
    let rets: Vec<Option<crate::module::Ty>> = m.funcs.iter().map(|f| f.ret) .collect();
    // Inline small leaf helpers first so their bodies participate in every
    // later optimization (address folding in particular).
    inline::run(m);
    for f in &mut m.funcs {
        mem2reg::run(f);
        for _ in 0..3 {
            let mut changed = false;
            changed |= constfold::run(f);
            changed |= cse::run(f);
            changed |= gvn::run(f);
            changed |= dce::run(f, &rets);
            changed |= simplifycfg::run(f);
            if !changed {
                break;
            }
        }
        // Hoist loop invariants, then clean up what hoisting exposed.
        if licm::run(f) > 0 {
            constfold::run(f);
            cse::run(f);
            dce::run(f, &rets);
            simplifycfg::run(f);
        }
    }
}

/// A value-substitution map with path compression, shared by several passes.
#[derive(Default)]
pub struct Subst {
    map: HashMap<ValueId, Operand>,
}

impl Subst {
    /// Record that `v` must be replaced by `op` everywhere.
    pub fn insert(&mut self, v: ValueId, op: Operand) {
        self.map.insert(v, op);
    }

    /// True when no substitutions are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resolve an operand through the substitution chain.
    pub fn resolve(&self, mut op: Operand) -> Operand {
        let mut guard = 0;
        while let Operand::Value(v) = op {
            match self.map.get(&v) {
                Some(next) => {
                    op = *next;
                    guard += 1;
                    debug_assert!(guard < 10_000, "substitution cycle");
                }
                None => break,
            }
        }
        op
    }

    /// Apply the substitution to every operand in the function.
    pub fn apply(&self, f: &mut Function) {
        if self.map.is_empty() {
            return;
        }
        for b in &mut f.blocks {
            for id in &mut b.instrs {
                id.instr.for_each_operand_mut(&mut |op| *op = self.resolve(*op));
            }
            if let Some(t) = &mut b.term {
                t.for_each_operand_mut(&mut |op| *op = self.resolve(*op));
            }
        }
    }
}

/// Count uses of every SSA value in `f`.
pub fn use_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.value_tys.len()];
    f.for_each_operand(|op| {
        if let Some(v) = op.as_value() {
            counts[v.index()] += 1;
        }
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::IBinOp;
    use crate::interp::Interp;
    use crate::module::{Module, Ty};
    use crate::verify::verify_module;

    /// The optimizer must preserve semantics on a small but complete program.
    #[test]
    fn optimize_preserves_semantics() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        // Use a promotable alloca as a mutable accumulator.
        let acc = b.alloca(1);
        b.store(acc, Operand::ConstI(0), Ty::I64);
        let header = b.add_block("h");
        let body = b.add_block("b");
        let exit = b.add_block("e");
        let iv = b.alloca(1);
        b.store(iv, Operand::ConstI(0), Ty::I64);
        b.br(header);
        b.switch_to(header);
        let i = b.load(iv, Ty::I64);
        let c = b.icmp(crate::instr::IPred::Slt, i, Operand::ConstI(20));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let a = b.load(acc, Ty::I64);
        let t = b.ibin(IBinOp::Mul, i, Operand::ConstI(1)); // foldable identity
        let a2 = b.ibin(IBinOp::Add, a, t);
        b.store(acc, a2, Ty::I64);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.store(iv, i2, Ty::I64);
        b.br(header);
        b.switch_to(exit);
        let r = b.load(acc, Ty::I64);
        b.ret(Some(r));
        m.add_function(b.finish());

        let before = Interp::new(&m, 1_000_000).run().unwrap();
        let mut opt = m.clone();
        optimize(&mut opt, OptLevel::O2);
        verify_module(&opt).expect("optimized module verifies");
        let after = Interp::new(&opt, 1_000_000).run().unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(before.exit_code, 190);
        // The optimizer must actually shrink the work: fewer dynamic instrs.
        assert!(after.instrs_executed < before.instrs_executed);
    }

    #[test]
    fn subst_resolves_chains() {
        let mut s = Subst::default();
        s.insert(ValueId(1), Operand::Value(ValueId(2)));
        s.insert(ValueId(2), Operand::ConstI(7));
        assert_eq!(s.resolve(Operand::Value(ValueId(1))), Operand::ConstI(7));
        assert_eq!(s.resolve(Operand::ConstF(1.0)), Operand::ConstF(1.0));
    }
}
