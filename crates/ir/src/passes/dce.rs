//! Dead-code elimination: remove pure instructions whose results are unused.

use super::use_counts;
use crate::module::{Function, Ty};

/// Run DCE to fixpoint on `f`. Returns `true` on change.
///
/// `rets` is unused here but kept in the signature so every pass in the
/// pipeline shares a shape (some passes need callee return types).
pub fn run(f: &mut Function, rets: &[Option<Ty>]) -> bool {
    let _ = rets;
    let mut any = false;
    loop {
        let counts = use_counts(f);
        let mut changed = false;
        for b in &mut f.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|id| {
                let dead = id.instr.is_pure()
                    && id.result.is_none_or(|v| counts[v.index()] == 0);
                !dead
            });
            if b.instrs.len() != before {
                changed = true;
            }
        }
        // Also drop allocas that are never referenced (arrays left behind by
        // other passes). Allocas are not "pure" (they affect the frame) but
        // an unused one is safely removable.
        let counts = use_counts(f);
        for b in &mut f.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|id| {
                let dead = matches!(id.instr, crate::instr::Instr::Alloca { .. })
                    && id.result.is_none_or(|v| counts[v.index()] == 0);
                !dead
            });
            if b.instrs.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
        any = true;
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::{IBinOp, Intrinsic, Operand};
    use crate::module::{Module, Ty};

    #[test]
    fn removes_dead_chain() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.ibin(IBinOp::Add, p, Operand::ConstI(1));
        let _y = b.ibin(IBinOp::Mul, x, Operand::ConstI(2)); // dead (and its input chain)
        b.ret(Some(p));
        m.add_function(b.finish());
        assert!(run(&mut m.funcs[0], &[]));
        assert!(m.funcs[0].blocks[0].instrs.is_empty());
    }

    #[test]
    fn keeps_side_effects() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![], None);
        b.intrinsic(Intrinsic::PrintI64, vec![Operand::ConstI(1)]);
        b.ret(None);
        m.add_function(b.finish());
        assert!(!run(&mut m.funcs[0], &[]));
        assert_eq!(m.funcs[0].blocks[0].instrs.len(), 1);
    }

    #[test]
    fn removes_unused_alloca() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![], None);
        let _a = b.alloca(16);
        b.ret(None);
        m.add_function(b.finish());
        assert!(run(&mut m.funcs[0], &[]));
        assert!(m.funcs[0].blocks[0].instrs.is_empty());
    }
}
