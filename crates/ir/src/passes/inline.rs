//! Inlining of small leaf functions.
//!
//! The benchmark kernels use tiny index helpers (`gid(i,j,k)`-style), which
//! any production compiler inlines; without this pass every array access
//! would carry call overhead and the generated code would misrepresent the
//! instruction mix FI samples from. Only single-block, call-free functions
//! below a size threshold are inlined.

use crate::instr::{Instr, Operand, Terminator};
use crate::module::{Function, InstrData, Module, ValueId};
use std::collections::HashMap;

/// Maximum callee size (instructions) considered for inlining.
pub const MAX_INLINE_INSTRS: usize = 16;

/// Is `f` an inlining candidate: one block, small, no calls (intrinsics are
/// fine — they are runtime operations, not user calls), returns a value or
/// void via a plain `ret`.
fn is_candidate(f: &Function) -> bool {
    f.blocks.len() == 1
        && f.blocks[0].instrs.len() <= MAX_INLINE_INSTRS
        && f.blocks[0]
            .instrs
            .iter()
            .all(|i| !matches!(i.instr, Instr::Call { .. } | Instr::Phi { .. }))
        && matches!(f.blocks[0].term, Some(Terminator::Ret(_)))
}

/// Run inlining over the whole module. Returns the number of call sites
/// inlined.
pub fn run(m: &mut Module) -> usize {
    let candidates: Vec<Option<Function>> = m
        .funcs
        .iter()
        .map(|f| if is_candidate(f) { Some(f.clone()) } else { None })
        .collect();
    let mut inlined = 0;
    for fi in 0..m.funcs.len() {
        // Never inline a candidate into itself (no recursion among
        // candidates is possible anyway: they contain no calls).
        let f = &mut m.funcs[fi];
        for bi in 0..f.blocks.len() {
            let old = std::mem::take(&mut f.blocks[bi].instrs);
            let mut neu = Vec::with_capacity(old.len());
            for id in old {
                match &id.instr {
                    Instr::Call { func, args }
                        if func.index() != fi && candidates[func.index()].is_some() =>
                    {
                        let callee = candidates[func.index()].as_ref().unwrap();
                        let ret =
                            splice(f, callee, args, &mut neu);
                        if let (Some(res), Some(ret_op)) = (id.result, ret) {
                            // Bind the call result: emit a copy so later
                            // uses of `res` keep working. A trivial binop
                            // with 0 keeps the IR simple; constfold cleans
                            // it up.
                            neu.push(InstrData {
                                instr: copy_instr(f, res, ret_op),
                                result: Some(res),
                            });
                        }
                        inlined += 1;
                    }
                    _ => neu.push(id),
                }
            }
            f.blocks[bi].instrs = neu;
        }
    }
    inlined
}

/// Clone `callee`'s single block into the caller at the current position,
/// remapping parameters to `args` and values to fresh caller values.
/// Returns the remapped return operand.
fn splice(
    caller: &mut Function,
    callee: &Function,
    args: &[Operand],
    out: &mut Vec<InstrData>,
) -> Option<Operand> {
    let mut vmap: HashMap<ValueId, Operand> = HashMap::new();
    for (i, a) in args.iter().enumerate() {
        vmap.insert(ValueId(i as u32), *a);
    }
    let remap = |op: &mut Operand, vmap: &HashMap<ValueId, Operand>| {
        if let Some(v) = op.as_value() {
            *op = *vmap.get(&v).expect("callee value defined before use");
        }
    };
    for id in &callee.blocks[0].instrs {
        let mut instr = id.instr.clone();
        instr.for_each_operand_mut(&mut |op| remap(op, &vmap));
        let result = id.result.map(|r| {
            let fresh = caller.new_value(callee.ty_of(r));
            vmap.insert(r, Operand::Value(fresh));
            fresh
        });
        out.push(InstrData { instr, result });
    }
    match callee.blocks[0].term.as_ref().unwrap() {
        Terminator::Ret(Some(op)) => {
            let mut op = *op;
            remap(&mut op, &vmap);
            Some(op)
        }
        Terminator::Ret(None) => None,
        _ => unreachable!("candidate ends with ret"),
    }
}

/// A value-copy instruction binding `res` (typed like `res`) to `src`.
fn copy_instr(f: &Function, res: ValueId, src: Operand) -> Instr {
    match f.ty_of(res) {
        crate::module::Ty::F64 => Instr::FBin {
            op: crate::instr::FBinOp::Mul,
            a: src,
            b: Operand::ConstF(1.0),
        },
        crate::module::Ty::I1 => Instr::Select {
            cond: src,
            a: Operand::ConstI(1),
            b: Operand::ConstI(0),
            ty: crate::module::Ty::I1,
        },
        _ => Instr::IBin { op: crate::instr::IBinOp::Add, a: src, b: Operand::ConstI(0) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::IBinOp;
    use crate::interp::Interp;
    use crate::module::Ty;
    use crate::verify::verify_module;

    fn idx_module() -> Module {
        let mut m = Module::new();
        let mut h = FuncBuilder::new("idx", vec![Ty::I64, Ty::I64], Some(Ty::I64));
        let p = h.params();
        let t = h.ibin(IBinOp::Mul, p[0], Operand::ConstI(10));
        let r = h.ibin(IBinOp::Add, t, p[1]);
        h.ret(Some(r));
        let idx = m.add_function(h.finish());

        let g = m.add_global("a", crate::module::GlobalInit::Zero(100));
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let i1 = b.call(idx, vec![Operand::ConstI(3), Operand::ConstI(4)], Some(Ty::I64)).unwrap();
        let addr = b.elem(Operand::Global(g), i1);
        b.store(addr, Operand::ConstI(77), Ty::I64);
        let i2 = b.call(idx, vec![Operand::ConstI(3), Operand::ConstI(4)], Some(Ty::I64)).unwrap();
        let addr2 = b.elem(Operand::Global(g), i2);
        let v = b.load(addr2, Ty::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn inlines_index_helper() {
        let mut m = idx_module();
        let before = Interp::new(&m, 100_000).run().unwrap().exit_code;
        let n = run(&mut m);
        assert_eq!(n, 2);
        verify_module(&m).unwrap();
        // No calls remain in main.
        let main = m.func_by_name("main").unwrap();
        assert!(!m.funcs[main.index()]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.instr, Instr::Call { .. })));
        let after = Interp::new(&m, 100_000).run().unwrap().exit_code;
        assert_eq!(before, after);
        assert_eq!(after, 77);
    }

    #[test]
    fn does_not_inline_large_or_multiblock() {
        let mut m = Module::new();
        // Multi-block callee.
        let mut h = FuncBuilder::new("branchy", vec![Ty::I64], Some(Ty::I64));
        let t = h.add_block("t");
        let e = h.add_block("e");
        let p = h.params()[0];
        let c = h.icmp(crate::instr::IPred::Sgt, p, Operand::ConstI(0));
        h.cond_br(c, t, e);
        h.switch_to(t);
        h.ret(Some(Operand::ConstI(1)));
        h.switch_to(e);
        h.ret(Some(Operand::ConstI(2)));
        let branchy = m.add_function(h.finish());
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let r = b.call(branchy, vec![Operand::ConstI(5)], Some(Ty::I64)).unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());
        assert_eq!(run(&mut m), 0, "multi-block callee must not inline");
    }

    #[test]
    fn no_self_inlining() {
        // A candidate-shaped function calling a candidate still works; the
        // candidate itself is not mutated into infinite growth.
        let mut m = idx_module();
        run(&mut m);
        run(&mut m); // second round is a no-op
        verify_module(&m).unwrap();
    }

    #[test]
    fn float_and_void_results() {
        let mut m = Module::new();
        let mut h = FuncBuilder::new("half", vec![Ty::F64], Some(Ty::F64));
        let p = h.params()[0];
        let r = h.fbin(crate::instr::FBinOp::Mul, p, Operand::ConstF(0.5));
        h.ret(Some(r));
        let half = m.add_function(h.finish());
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let x = b.call(half, vec![Operand::ConstF(9.0)], Some(Ty::F64)).unwrap();
        let i = b.cast(crate::instr::CastOp::FToSi, x);
        b.ret(Some(i));
        m.add_function(b.finish());
        assert_eq!(run(&mut m), 1);
        verify_module(&m).unwrap();
        assert_eq!(Interp::new(&m, 1000).run().unwrap().exit_code, 4);
    }
}
