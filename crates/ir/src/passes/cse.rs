//! Local (per-block) common-subexpression elimination over pure instructions.

use super::Subst;
use crate::instr::{Instr, Operand};
use crate::module::Function;
use std::collections::HashMap;

/// Run local CSE on every block of `f`. Returns `true` on change.
pub fn run(f: &mut Function) -> bool {
    let mut subst = Subst::default();
    let mut changed = false;

    for b in &mut f.blocks {
        // Key: canonical encoding of (opcode, operands). Using the Debug
        // rendering keeps the key total over every instruction shape without
        // a parallel mirror enum; instruction structs are small, so the
        // allocation cost is irrelevant at compile time.
        let mut available: HashMap<String, crate::module::ValueId> = HashMap::new();
        for id in &mut b.instrs {
            id.instr.for_each_operand_mut(&mut |op| *op = subst.resolve(*op));
            // Phis are pure but position-dependent; skip them.
            if !id.instr.is_pure() || id.instr.is_phi() {
                continue;
            }
            let Some(res) = id.result else { continue };
            let key = instr_key(&id.instr);
            match available.get(&key) {
                Some(&prev) => {
                    subst.insert(res, Operand::Value(prev));
                    changed = true;
                }
                None => {
                    available.insert(key, res);
                }
            }
        }
    }
    if !changed {
        return false;
    }
    // Remove the now-redundant instructions and rewrite uses.
    for b in &mut f.blocks {
        b.instrs.retain(|id| match id.result {
            Some(v) => {
                !id.instr.is_pure()
                    || matches!(subst.resolve(Operand::Value(v)), Operand::Value(x) if x == v)
            }
            None => true,
        });
    }
    subst.apply(f);
    true
}

fn instr_key(i: &Instr) -> String {
    format!("{i:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::IBinOp;
    use crate::module::{Module, Ty};
    use crate::verify::verify_module;

    #[test]
    fn merges_duplicate_expressions() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.ibin(IBinOp::Mul, p, p);
        let y = b.ibin(IBinOp::Mul, p, p); // duplicate
        let s = b.ibin(IBinOp::Add, x, y);
        b.ret(Some(s));
        m.add_function(b.finish());
        assert!(run(&mut m.funcs[0]));
        verify_module(&m).unwrap();
        assert_eq!(m.funcs[0].blocks[0].instrs.len(), 2);
    }

    #[test]
    fn does_not_merge_across_blocks() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let next = b.add_block("next");
        let _x = b.ibin(IBinOp::Mul, p, p);
        b.br(next);
        b.switch_to(next);
        let y = b.ibin(IBinOp::Mul, p, p);
        b.ret(Some(y));
        m.add_function(b.finish());
        assert!(!run(&mut m.funcs[0]), "local CSE must not cross blocks");
    }

    #[test]
    fn does_not_merge_loads() {
        let mut m = Module::new();
        let g = m.add_global("g", crate::module::GlobalInit::Zero(1));
        let mut b = FuncBuilder::new("f", vec![], Some(Ty::I64));
        let a = b.load(Operand::Global(g), Ty::I64);
        b.store(Operand::Global(g), Operand::ConstI(1), Ty::I64);
        let c = b.load(Operand::Global(g), Ty::I64);
        let s = b.ibin(IBinOp::Add, a, c);
        b.ret(Some(s));
        m.add_function(b.finish());
        assert!(!run(&mut m.funcs[0]), "loads are not pure and must survive");
    }
}
