//! Loop-invariant code motion.
//!
//! Hoists pure, non-trapping instructions whose operands are loop-invariant
//! into a preheader. Loops are natural loops found via back edges
//! (`latch -> header` where the header dominates the latch); a preheader is
//! only created when the header has exactly one entry edge (always true for
//! frontend-generated loops).

use crate::dom::DomTree;
use crate::instr::{IBinOp, Instr, Operand, Terminator};
use crate::module::{BlockId, Function, InstrData, ValueId};
use std::collections::{HashMap, HashSet};

/// Run LICM on one function. Returns the number of instructions hoisted.
pub fn run(f: &mut Function) -> usize {
    let mut total = 0;
    // Iterate: hoisting can expose more loops' invariants; bounded passes.
    for _ in 0..2 {
        let n = run_once(f);
        total += n;
        if n == 0 {
            break;
        }
    }
    total
}

fn run_once(f: &mut Function) -> usize {
    let dt = DomTree::compute(f);
    let preds = f.predecessors();

    // --- Find natural loops: back edges latch -> header.
    let mut loops: Vec<(BlockId, HashSet<BlockId>)> = Vec::new(); // (header, body)
    for (bi, b) in f.blocks.iter().enumerate() {
        for s in b.successors() {
            let latch = BlockId(bi as u32);
            if dt.idom[s.index()].is_some() && dt.dominates(s, latch) {
                // body = {header} ∪ nodes that reach latch without header
                let header = s;
                let mut body: HashSet<BlockId> = HashSet::new();
                body.insert(header);
                let mut stack = vec![latch];
                while let Some(n) = stack.pop() {
                    if body.insert(n) {
                        for &p in &preds[n.index()] {
                            stack.push(p);
                        }
                    }
                }
                loops.push((header, body));
            }
        }
    }
    // Inner loops first (smaller bodies).
    loops.sort_by_key(|(_, body)| body.len());

    // --- Definition block of every value.
    let mut def_block: HashMap<ValueId, BlockId> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for id in &b.instrs {
            if let Some(r) = id.result {
                def_block.insert(r, BlockId(bi as u32));
            }
        }
    }

    let mut hoisted_total = 0;
    for (header, body) in loops {
        // One entry edge only.
        let outside: Vec<BlockId> = preds[header.index()]
            .iter()
            .copied()
            .filter(|p| !body.contains(p))
            .collect();
        if outside.len() != 1 {
            continue;
        }
        let entry = outside[0];
        // The entry must branch unconditionally to the header for in-place
        // appending to be safe (true for frontend loops; skip otherwise).
        if !matches!(f.block(entry).term, Some(Terminator::Br(t)) if t == header) {
            continue;
        }

        // Deterministic block order: a HashSet walk here would make the
        // hoist (and thus emitted-code) order depend on hasher state, and
        // identical inputs must compile to identical binaries — the
        // campaign engine's artifact-cache contract.
        let mut body_order: Vec<BlockId> = body.iter().copied().collect();
        body_order.sort_unstable_by_key(|b| b.index());

        // Collect hoistable instructions (fixpoint within the loop).
        let mut hoisted_vals: HashSet<ValueId> = HashSet::new();
        let mut moves: Vec<(BlockId, usize)> = Vec::new();
        loop {
            let mut changed = false;
            for &bb in &body_order {
                for (ii, id) in f.blocks[bb.index()].instrs.iter().enumerate() {
                    if moves.contains(&(bb, ii)) {
                        continue;
                    }
                    if !hoistable(&id.instr) {
                        continue;
                    }
                    let Some(res) = id.result else { continue };
                    if hoisted_vals.contains(&res) {
                        continue;
                    }
                    let mut invariant = true;
                    id.instr.for_each_operand(&mut |op| {
                        if let Some(v) = op.as_value() {
                            match def_block.get(&v) {
                                Some(db) if body.contains(db) && !hoisted_vals.contains(&v) => {
                                    invariant = false
                                }
                                _ => {}
                            }
                        }
                    });
                    if invariant {
                        hoisted_vals.insert(res);
                        moves.push((bb, ii));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if moves.is_empty() {
            continue;
        }

        // Move them (in discovery order, which respects dependencies) to the
        // end of the entry block, before its terminator.
        let mut payload: Vec<InstrData> = Vec::with_capacity(moves.len());
        // Remove from the back so indices stay valid: sort per block desc.
        let mut by_block: HashMap<BlockId, Vec<usize>> = HashMap::new();
        for &(bb, ii) in &moves {
            by_block.entry(bb).or_default().push(ii);
        }
        // Extract in discovery order (dependency order matters in payload).
        let mut extracted: HashMap<(BlockId, usize), InstrData> = HashMap::new();
        for (bb, mut idxs) in by_block {
            idxs.sort_unstable_by(|a, b| b.cmp(a));
            for ii in idxs {
                let id = f.blocks[bb.index()].instrs.remove(ii);
                extracted.insert((bb, ii), id);
            }
        }
        for key in &moves {
            payload.push(extracted.remove(key).expect("extracted"));
        }
        for id in payload.iter() {
            if let Some(r) = id.result {
                def_block.insert(r, entry);
            }
        }
        hoisted_total += payload.len();
        f.blocks[entry.index()].instrs.extend(payload);
    }
    hoisted_total
}

/// Safe to execute speculatively: pure and never trapping. Division and
/// remainder trap on zero divisors, so they only hoist with a non-zero
/// constant divisor.
fn hoistable(i: &Instr) -> bool {
    if !i.is_pure() || i.is_phi() {
        return false;
    }
    match i {
        Instr::IBin { op: IBinOp::Div | IBinOp::Rem, b, .. } => {
            matches!(b, Operand::ConstI(c) if *c != 0 && *c != -1)
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::{IBinOp, IPred};
    use crate::interp::Interp;
    use crate::module::{Module, Ty};
    use crate::verify::verify_module;

    /// sum of i*K for i in 0..n where K = a*b is invariant.
    fn loop_with_invariant() -> Module {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let h = b.add_block("h");
        let body = b.add_block("body");
        let e = b.add_block("e");
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let s = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(10));
        b.cond_br(c, body, e);
        b.switch_to(body);
        // Invariant computation inside the loop.
        let k1 = b.ibin(IBinOp::Mul, Operand::ConstI(6), Operand::ConstI(7));
        let k2 = b.ibin(IBinOp::Add, k1, Operand::ConstI(8));
        let term = b.ibin(IBinOp::Mul, i, k2);
        let s2 = b.ibin(IBinOp::Add, s, term);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.add_incoming(i, body, i2);
        b.add_incoming(s, body, s2);
        b.br(h);
        b.switch_to(e);
        b.ret(Some(s));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn hoists_invariants_and_preserves_semantics() {
        let mut m = loop_with_invariant();
        let before = Interp::new(&m, 100_000).run().unwrap();
        let n = run(&mut m.funcs[0]);
        assert!(n >= 2, "k1 and k2 must hoist, got {n}");
        verify_module(&m).unwrap();
        let after = Interp::new(&m, 100_000).run().unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(after.exit_code, 2250); // sum(i*50, i<10) = 45*50
        assert!(
            after.instrs_executed < before.instrs_executed,
            "LICM must reduce dynamic work"
        );
        // Hoisted code lives in the entry block now.
        assert!(m.funcs[0].blocks[0]
            .instrs
            .iter()
            .any(|i| matches!(i.instr, Instr::IBin { op: IBinOp::Mul, .. })));
    }

    #[test]
    fn does_not_hoist_variant_or_trapping() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![Ty::I64], Some(Ty::I64));
        let h = b.add_block("h");
        let body = b.add_block("body");
        let e = b.add_block("e");
        let p = b.params()[0];
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(1))]);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(5));
        b.cond_br(c, body, e);
        b.switch_to(body);
        // i-dependent (variant): must stay.
        let v = b.ibin(IBinOp::Mul, i, Operand::ConstI(3));
        // Trapping with a non-constant divisor: must stay even though p is
        // invariant (p could be zero and the loop might never execute).
        let d = b.ibin(IBinOp::Div, Operand::ConstI(100), p);
        let t = b.ibin(IBinOp::Add, v, d);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        let _ = t;
        b.add_incoming(i, body, i2);
        b.br(h);
        b.switch_to(e);
        b.ret(Some(i));
        m.add_function(b.finish());
        run(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        let body_instrs = &m.funcs[0].blocks[2].instrs;
        assert!(
            body_instrs.iter().any(|x| matches!(x.instr, Instr::IBin { op: IBinOp::Div, .. })),
            "trapping div must not be hoisted"
        );
        assert!(
            body_instrs.iter().any(|x| matches!(x.instr, Instr::IBin { op: IBinOp::Mul, .. })),
            "variant mul must not be hoisted"
        );
    }

    #[test]
    fn nested_loops_hoist_outward() {
        // Outer loop runs 3x, inner 4x; an invariant inside the inner loop
        // should leave at least the inner loop.
        let src_m = {
            let mut m = Module::new();
            let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
            let oh = b.add_block("oh");
            let ob = b.add_block("ob");
            let ih = b.add_block("ih");
            let ib = b.add_block("ib");
            let ie = b.add_block("ie");
            let oe = b.add_block("oe");
            b.br(oh);
            b.switch_to(oh);
            let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
            let acc = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
            let ci = b.icmp(IPred::Slt, i, Operand::ConstI(3));
            b.cond_br(ci, ob, oe);
            b.switch_to(ob);
            b.br(ih);
            b.switch_to(ih);
            let j = b.phi(Ty::I64, vec![(ob, Operand::ConstI(0))]);
            let a2 = b.phi(Ty::I64, vec![(ob, acc)]);
            let cj = b.icmp(IPred::Slt, j, Operand::ConstI(4));
            b.cond_br(cj, ib, ie);
            b.switch_to(ib);
            let k = b.ibin(IBinOp::Mul, Operand::ConstI(5), Operand::ConstI(9)); // invariant
            let a3 = b.ibin(IBinOp::Add, a2, k);
            let j2 = b.ibin(IBinOp::Add, j, Operand::ConstI(1));
            b.add_incoming(j, ib, j2);
            b.add_incoming(a2, ib, a3);
            b.br(ih);
            b.switch_to(ie);
            let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
            b.add_incoming(i, ie, i2);
            b.add_incoming(acc, ie, a2);
            b.br(oh);
            b.switch_to(oe);
            b.ret(Some(acc));
            m.add_function(b.finish());
            m
        };
        let mut m = src_m;
        let before = Interp::new(&m, 100_000).run().unwrap();
        let n = run(&mut m.funcs[0]);
        assert!(n >= 1);
        verify_module(&m).unwrap();
        let after = Interp::new(&m, 100_000).run().unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(after.exit_code, 3 * 4 * 45);
        assert!(after.instrs_executed < before.instrs_executed);
    }
}
