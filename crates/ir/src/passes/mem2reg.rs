//! Promote single-word, non-escaping allocas to SSA values.
//!
//! This is the pass whose *absence* LLFI-style tools effectively suffer from
//! when their instrumentation pins values to memory; with it, the benchmark
//! kernels compile to register-resident loops like the paper's Listing 2b.

use super::Subst;
use crate::dom::DomTree;
use crate::instr::{Instr, Operand};
use crate::module::{BlockId, Function, InstrData, Ty, ValueId};
use std::collections::{HashMap, HashSet};

/// Run mem2reg on one function. Returns `true` if anything was promoted.
pub fn run(f: &mut Function) -> bool {
    let candidates = promotable_allocas(f);
    if candidates.is_empty() {
        return false;
    }

    let dt = DomTree::compute(f);
    let preds = f.predecessors();

    // ---- Phi insertion at iterated dominance frontiers of store blocks.
    // For each candidate alloca: the set of blocks containing stores to it.
    let mut def_blocks: HashMap<ValueId, Vec<BlockId>> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for id in &b.instrs {
            if let Instr::Store { addr: Operand::Value(a), .. } = &id.instr {
                if candidates.contains_key(a) {
                    def_blocks.entry(*a).or_default().push(BlockId(bi as u32));
                }
            }
        }
    }

    // phi result value -> alloca it materializes
    let mut phi_of: HashMap<ValueId, ValueId> = HashMap::new();
    // (block, alloca) -> phi value, to fill incomings during renaming
    let mut block_phi: HashMap<(BlockId, ValueId), ValueId> = HashMap::new();

    // Deterministic iteration order: value-id order (a HashMap walk here
    // would make compilation output depend on hasher state).
    let mut ordered: Vec<(ValueId, Ty)> = candidates.iter().map(|(v, t)| (*v, *t)).collect();
    ordered.sort_by_key(|(v, _)| *v);
    for &(alloca, ty) in &ordered {
        let mut work: Vec<BlockId> = def_blocks.get(&alloca).cloned().unwrap_or_default();
        let mut placed: HashSet<BlockId> = HashSet::new();
        let mut on_work: HashSet<BlockId> = work.iter().copied().collect();
        while let Some(b) = work.pop() {
            for &df in &dt.frontier[b.index()] {
                if placed.insert(df) {
                    let phi_val = f.new_value(ty);
                    f.blocks[df.index()].instrs.insert(
                        0,
                        InstrData {
                            instr: Instr::Phi { incomings: vec![], ty },
                            result: Some(phi_val),
                        },
                    );
                    phi_of.insert(phi_val, alloca);
                    block_phi.insert((df, alloca), phi_val);
                    if on_work.insert(df) {
                        work.push(df);
                    }
                }
            }
        }
    }

    // ---- Renaming along the dominator tree.
    let mut subst = Subst::default();
    let mut kill: HashSet<(usize, usize)> = HashSet::new(); // (block, instr index)
    // DFS with explicit stack carrying the current value of each alloca.
    type Env = HashMap<ValueId, Operand>;
    let default_value = |ty: Ty| match ty {
        Ty::F64 => Operand::ConstF(0.0),
        _ => Operand::ConstI(0),
    };
    let mut stack: Vec<(BlockId, Env)> = vec![(BlockId(0), Env::new())];
    let mut visited = vec![false; f.blocks.len()];
    while let Some((b, mut env)) = stack.pop() {
        if visited[b.index()] {
            continue;
        }
        visited[b.index()] = true;
        for (ii, id) in f.blocks[b.index()].instrs.iter().enumerate() {
            match (&id.instr, id.result) {
                (Instr::Phi { .. }, Some(res)) if phi_of.contains_key(&res) => {
                    env.insert(phi_of[&res], Operand::Value(res));
                }
                (Instr::Alloca { .. }, Some(res)) if candidates.contains_key(&res) => {
                    kill.insert((b.index(), ii));
                }
                (Instr::Load { addr: Operand::Value(a), ty }, Some(res))
                    if candidates.contains_key(a) =>
                {
                    let cur = env
                        .get(a)
                        .copied()
                        .map(|op| subst.resolve(op))
                        .unwrap_or_else(|| default_value(*ty));
                    subst.insert(res, cur);
                    kill.insert((b.index(), ii));
                }
                (Instr::Store { addr: Operand::Value(a), val, .. }, _)
                    if candidates.contains_key(a) =>
                {
                    env.insert(*a, subst.resolve(*val));
                    kill.insert((b.index(), ii));
                }
                _ => {}
            }
        }
        // Fill phi incomings in CFG successors.
        for s in f.blocks[b.index()].successors() {
            for id in &mut f.blocks[s.index()].instrs {
                let Some(res) = id.result else { continue };
                let Some(&alloca) = phi_of.get(&res) else { continue };
                if let Instr::Phi { incomings, ty } = &mut id.instr {
                    let cur = env
                        .get(&alloca)
                        .copied()
                        .map(|op| subst.resolve(op))
                        .unwrap_or_else(|| default_value(*ty));
                    incomings.push((b, cur));
                }
            }
        }
        // Recurse into dominator-tree children (every reachable block is
        // dominated by the entry, so this visits everything).
        for &c in &dt.children[b.index()] {
            stack.push((c, env.clone()));
        }
        // Also push CFG successors not dominated by us, to make sure phi
        // incomings from *this* edge were recorded above even if the block is
        // visited via the dom tree; visiting is guarded by `visited`.
        let _ = &preds;
    }

    // ---- Drop promoted loads/stores/allocas and apply the substitution.
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut ii = 0usize;
        let mut orig = 0usize;
        block.instrs.retain(|_| {
            let keep = !kill.contains(&(bi, orig));
            orig += 1;
            if keep {
                ii += 1;
            }
            keep
        });
        let _ = ii;
    }
    subst.apply(f);

    // Resolve phi-incoming chains created during renaming (an incoming may
    // reference a load value substituted later).
    for b in &mut f.blocks {
        for id in &mut b.instrs {
            if let Instr::Phi { incomings, .. } = &mut id.instr {
                for (_, op) in incomings {
                    *op = subst.resolve(*op);
                }
            }
        }
    }
    true
}

/// Allocas that are single 8-byte words and only ever used directly as the
/// address of loads/stores (no address arithmetic, no escaping).
fn promotable_allocas(f: &Function) -> HashMap<ValueId, Ty> {
    let mut info: HashMap<ValueId, (bool, Option<Ty>)> = HashMap::new(); // value -> (ok, ty)
    for b in &f.blocks {
        for id in &b.instrs {
            if let (Instr::Alloca { words: 1 }, Some(res)) = (&id.instr, id.result) {
                info.insert(res, (true, None));
            }
        }
    }
    if info.is_empty() {
        return HashMap::new();
    }
    // Examine all uses.
    for b in &f.blocks {
        for id in &b.instrs {
            match &id.instr {
                Instr::Load { addr: Operand::Value(a), ty } => {
                    if let Some(e) = info.get_mut(a) {
                        match e.1 {
                            None => e.1 = Some(*ty),
                            Some(t) if t == *ty => {}
                            _ => e.0 = false, // mixed-type access: leave in memory
                        }
                    }
                }
                Instr::Store { addr: Operand::Value(a), val, ty } => {
                    // The stored *value* being the alloca address = escape.
                    if let Some(v) = val.as_value() {
                        if let Some(e) = info.get_mut(&v) {
                            e.0 = false;
                        }
                    }
                    if let Some(e) = info.get_mut(a) {
                        match e.1 {
                            None => e.1 = Some(*ty),
                            Some(t) if t == *ty => {}
                            _ => e.0 = false,
                        }
                    }
                }
                other => {
                    // Any other appearance disqualifies the alloca.
                    other.for_each_operand(&mut |op| {
                        if let Some(v) = op.as_value() {
                            if let Some(e) = info.get_mut(&v) {
                                e.0 = false;
                            }
                        }
                    });
                }
            }
        }
        if let Some(t) = &b.term {
            let mut t = t.clone();
            t.for_each_operand_mut(&mut |op| {
                if let Some(v) = op.as_value() {
                    if let Some(e) = info.get_mut(&v) {
                        e.0 = false;
                    }
                }
            });
        }
    }
    info.into_iter()
        .filter_map(|(v, (ok, ty))| {
            if ok {
                Some((v, ty.unwrap_or(Ty::I64)))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::{IBinOp, IPred};
    use crate::interp::Interp;
    use crate::module::Module;
    use crate::verify::verify_module;

    /// Build sum 0..n with a memory counter; after mem2reg there must be no
    /// loads/stores left and the semantics must be unchanged.
    #[test]
    fn promotes_loop_counter() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let iv = b.alloca(1);
        let sv = b.alloca(1);
        b.store(iv, Operand::ConstI(0), Ty::I64);
        b.store(sv, Operand::ConstI(0), Ty::I64);
        let h = b.add_block("h");
        let body = b.add_block("body");
        let e = b.add_block("e");
        b.br(h);
        b.switch_to(h);
        let i = b.load(iv, Ty::I64);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(5));
        b.cond_br(c, body, e);
        b.switch_to(body);
        let s = b.load(sv, Ty::I64);
        let s2 = b.ibin(IBinOp::Add, s, i);
        b.store(sv, s2, Ty::I64);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.store(iv, i2, Ty::I64);
        b.br(h);
        b.switch_to(e);
        let r = b.load(sv, Ty::I64);
        b.ret(Some(r));
        m.add_function(b.finish());

        let before = Interp::new(&m, 100_000).run().unwrap().exit_code;
        let changed = run(&mut m.funcs[0]);
        assert!(changed);
        verify_module(&m).unwrap();
        for blk in &m.funcs[0].blocks {
            for id in &blk.instrs {
                assert!(
                    !matches!(id.instr, Instr::Load { .. } | Instr::Store { .. } | Instr::Alloca { .. }),
                    "memory op survived mem2reg: {:?}",
                    id.instr
                );
            }
        }
        let after = Interp::new(&m, 100_000).run().unwrap().exit_code;
        assert_eq!(before, after);
        assert_eq!(after, 10);
    }

    /// Array allocas (words > 1) and escaping allocas must not be promoted.
    #[test]
    fn leaves_arrays_alone() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let arr = b.alloca(4);
        let p = b.elem(arr, Operand::ConstI(2));
        b.store(p, Operand::ConstI(9), Ty::I64);
        let v = b.load(p, Ty::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        let changed = run(&mut m.funcs[0]);
        assert!(!changed);
        let r = Interp::new(&m, 1000).run().unwrap();
        assert_eq!(r.exit_code, 9);
    }

    /// Loads before any store read zero (mirrors zero-initialized stack).
    #[test]
    fn undefined_load_becomes_zero() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let a = b.alloca(1);
        let v = b.load(a, Ty::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        run(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        assert_eq!(Interp::new(&m, 1000).run().unwrap().exit_code, 0);
    }

    /// Diamond with stores on both sides must produce a phi at the join.
    #[test]
    fn inserts_phi_at_join() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let a = b.alloca(1);
        let t = b.add_block("t");
        let f = b.add_block("f");
        let j = b.add_block("j");
        let c = b.icmp(IPred::Sgt, p, Operand::ConstI(0));
        b.cond_br(c, t, f);
        b.switch_to(t);
        b.store(a, Operand::ConstI(100), Ty::I64);
        b.br(j);
        b.switch_to(f);
        b.store(a, Operand::ConstI(200), Ty::I64);
        b.br(j);
        b.switch_to(j);
        let v = b.load(a, Ty::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        run(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        let has_phi = m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| i.instr.is_phi());
        assert!(has_phi, "expected a phi at the join block");
    }
}
