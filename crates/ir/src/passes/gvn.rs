//! Dominator-scoped global value numbering.
//!
//! Extends local CSE across blocks: an expression computed in a dominating
//! block is available in every dominated block. This matters after inlining
//! (the same `i*25+j*5` index arithmetic appears in sibling stencil arms)
//! and keeps the "optimized code" the FI tools operate on honest.

use super::Subst;
use crate::dom::DomTree;
use crate::instr::{Instr, Operand};
use crate::module::{BlockId, Function, ValueId};
use std::collections::HashMap;

/// Run GVN on `f`. Returns `true` on change.
pub fn run(f: &mut Function) -> bool {
    let dt = DomTree::compute(f);
    let mut subst = Subst::default();
    let mut kill: Vec<(usize, usize)> = Vec::new();

    // DFS down the dominator tree, each child inheriting the parent's
    // available-expression table.
    let mut stack: Vec<(BlockId, HashMap<String, ValueId>)> =
        vec![(BlockId(0), HashMap::new())];
    while let Some((b, mut avail)) = stack.pop() {
        for (ii, id) in f.blocks[b.index()].instrs.iter_mut().enumerate() {
            id.instr.for_each_operand_mut(&mut |op| *op = subst.resolve(*op));
            if !id.instr.is_pure() || id.instr.is_phi() {
                continue;
            }
            let Some(res) = id.result else { continue };
            let key = format!("{:?}", id.instr);
            match avail.get(&key) {
                Some(&prev) => {
                    subst.insert(res, Operand::Value(prev));
                    kill.push((b.index(), ii));
                }
                None => {
                    avail.insert(key, res);
                }
            }
        }
        for &c in &dt.children[b.index()] {
            stack.push((c, avail.clone()));
        }
    }

    if kill.is_empty() {
        return false;
    }
    // Remove replaced instructions (indices valid per block: delete from
    // the back).
    kill.sort_unstable_by(|a, b| b.cmp(a));
    for (bi, ii) in kill {
        f.blocks[bi].instrs.remove(ii);
    }
    subst.apply(f);
    // Phi incomings may reference substituted values via edges processed
    // before the substitution was recorded.
    for b in &mut f.blocks {
        for id in &mut b.instrs {
            if let Instr::Phi { incomings, .. } = &mut id.instr {
                for (_, op) in incomings {
                    *op = subst.resolve(*op);
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::{IBinOp, IPred};
    use crate::interp::Interp;
    use crate::module::{Module, Ty};
    use crate::verify::verify_module;

    /// The same expression in both arms of a diamond, dominated by a copy
    /// in the entry: both arms reuse the entry's value.
    #[test]
    fn dedupes_across_dominated_blocks() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        let x0 = b.ibin(IBinOp::Mul, p, p); // entry
        let c = b.icmp(IPred::Sgt, p, Operand::ConstI(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let x1 = b.ibin(IBinOp::Mul, p, p); // duplicate of x0
        let y1 = b.ibin(IBinOp::Add, x1, Operand::ConstI(1));
        b.br(j);
        b.switch_to(e);
        let x2 = b.ibin(IBinOp::Mul, p, p); // duplicate of x0
        let y2 = b.ibin(IBinOp::Add, x2, Operand::ConstI(2));
        b.br(j);
        b.switch_to(j);
        let ph = b.phi(Ty::I64, vec![(t, y1), (e, y2)]);
        let r = b.ibin(IBinOp::Add, ph, x0);
        b.ret(Some(r));
        m.add_function(b.finish());

        assert!(run(&mut m.funcs[0]));
        verify_module(&m).unwrap();
        let muls: usize = m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.instr, Instr::IBin { op: IBinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 1, "p*p must be computed once");
    }

    /// Sibling blocks do not dominate each other: no cross-sibling merging
    /// (the expression is not available on the other path).
    #[test]
    fn does_not_merge_between_siblings_only() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let t = b.add_block("t");
        let e = b.add_block("e");
        let c = b.icmp(IPred::Sgt, p, Operand::ConstI(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let x1 = b.ibin(IBinOp::Mul, p, p);
        b.ret(Some(x1));
        b.switch_to(e);
        let x2 = b.ibin(IBinOp::Mul, p, p);
        b.ret(Some(x2));
        m.add_function(b.finish());
        assert!(!run(&mut m.funcs[0]), "siblings must not share");
    }

    /// Semantics preserved on a real loop nest.
    #[test]
    fn preserves_semantics() {
        let mut m = refine_frontend_like_module();
        let before = Interp::new(&m, 1_000_000).run().unwrap();
        super::super::mem2reg::run(&mut m.funcs[0]);
        run(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        let after = Interp::new(&m, 1_000_000).run().unwrap();
        assert_eq!(before.exit_code, after.exit_code);
    }

    fn refine_frontend_like_module() -> Module {
        let mut m = Module::new();
        let g = m.add_global("a", crate::module::GlobalInit::Zero(64));
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let h = b.add_block("h");
        let body = b.add_block("body");
        let e = b.add_block("e");
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let s = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(8));
        b.cond_br(c, body, e);
        b.switch_to(body);
        let i8x = b.ibin(IBinOp::Mul, i, Operand::ConstI(8));
        let a1 = b.elem(Operand::Global(g), i8x);
        b.store(a1, i, Ty::I64);
        let i8y = b.ibin(IBinOp::Mul, i, Operand::ConstI(8)); // dup
        let a2 = b.elem(Operand::Global(g), i8y);
        let v = b.load(a2, Ty::I64);
        let s2 = b.ibin(IBinOp::Add, s, v);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.add_incoming(i, body, i2);
        b.add_incoming(s, body, s2);
        b.br(h);
        b.switch_to(e);
        b.ret(Some(s));
        m.add_function(b.finish());
        m
    }
}
