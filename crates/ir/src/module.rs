//! Modules, functions, basic blocks and globals.

use crate::instr::{Instr, Operand, Terminator};

/// A first-class IR type. The IR is deliberately small: 64-bit integers,
/// double-precision floats, booleans (`i1`, products of comparisons) and
/// untyped 8-byte-element pointers. All memory traffic is 8 bytes wide, which
/// keeps the backend honest (loads/stores, address arithmetic) without
/// dragging in sub-word semantics that none of the 14 benchmarks need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Boolean produced by comparisons; zero-extended to 64 bits in registers.
    I1,
    /// 64-bit two's-complement integer.
    I64,
    /// IEEE-754 binary64.
    F64,
    /// Byte-addressed pointer (64-bit).
    Ptr,
}

impl Ty {
    /// Width in bits of a value of this type when held in a register.
    /// This is the width used by the fault model when flipping bits at the IR
    /// level (LLFI flips within the *value's* width, e.g. a single bit for
    /// `i1`, which is one of the accuracy differences vs. machine registers).
    pub fn bits(self) -> u32 {
        match self {
            Ty::I1 => 1,
            Ty::I64 | Ty::F64 | Ty::Ptr => 64,
        }
    }

    /// True for the integer-class types held in general-purpose registers.
    pub fn is_int_class(self) -> bool {
        !matches!(self, Ty::F64)
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::I1 => write!(f, "i1"),
            Ty::I64 => write!(f, "i64"),
            Ty::F64 => write!(f, "double"),
            Ty::Ptr => write!(f, "ptr"),
        }
    }
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Index form for direct vector access.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_type!(
    /// Identifies an SSA value within one function (parameters first, then
    /// instruction results in allocation order).
    ValueId
);
id_type!(
    /// Identifies a basic block within one function. Block 0 is the entry.
    BlockId
);
id_type!(
    /// Identifies a function within a module.
    FuncId
);
id_type!(
    /// Identifies a global variable within a module.
    GlobalId
);
id_type!(
    /// Identifies an interned string literal within a module.
    StrId
);

/// Initial contents of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized region of `n` 8-byte words.
    Zero(u32),
    /// Explicit 64-bit integer words.
    I64s(Vec<i64>),
    /// Explicit binary64 words.
    F64s(Vec<f64>),
}

impl GlobalInit {
    /// Size of the global in 8-byte words.
    pub fn words(&self) -> u32 {
        match self {
            GlobalInit::Zero(n) => *n,
            GlobalInit::I64s(v) => v.len() as u32,
            GlobalInit::F64s(v) => v.len() as u32,
        }
    }
}

/// A module-level global variable (the benchmarks keep their arrays here,
/// like the static data of the original C programs).
#[derive(Debug, Clone)]
pub struct Global {
    /// Symbolic name, used by the printer and the linker.
    pub name: String,
    /// Initializer; also determines the size.
    pub init: GlobalInit,
}

/// One basic block: zero or more phis, then ordinary instructions, then a
/// single terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Printable label.
    pub name: String,
    /// Instructions in execution order. The verifier enforces that phis form
    /// a prefix of this list.
    pub instrs: Vec<InstrData>,
    /// Block terminator. `None` only transiently during construction.
    pub term: Option<Terminator>,
}

impl Block {
    /// Successor blocks of this block's terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match &self.term {
            Some(Terminator::Br(b)) => vec![*b],
            Some(Terminator::CondBr { t, f, .. }) => vec![*t, *f],
            Some(Terminator::Ret(_)) | None => vec![],
        }
    }
}

/// An instruction together with its (optional) SSA result.
#[derive(Debug, Clone)]
pub struct InstrData {
    /// The operation.
    pub instr: Instr,
    /// Result value, when the instruction produces one.
    pub result: Option<ValueId>,
}

/// A function: a CFG of basic blocks over a private SSA value space.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbolic name (used by `-fi-funcs` filters, the printer, the linker).
    pub name: String,
    /// Parameter types; parameters are values `0..params.len()`.
    pub params: Vec<Ty>,
    /// Return type, or `None` for void functions.
    pub ret: Option<Ty>,
    /// Basic blocks; `BlockId(0)` is the entry block.
    pub blocks: Vec<Block>,
    /// Type of each SSA value, indexed by [`ValueId`].
    pub value_tys: Vec<Ty>,
}

impl Function {
    /// Create an empty function with a single unterminated entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Self {
        let value_tys = params.clone();
        Function {
            name: name.into(),
            params,
            ret,
            blocks: vec![Block { name: "entry".into(), instrs: vec![], term: None }],
            value_tys,
        }
    }

    /// Parameter values of this function.
    pub fn param_values(&self) -> impl Iterator<Item = ValueId> {
        (0..self.params.len() as u32).map(ValueId)
    }

    /// Allocate a fresh SSA value of type `ty`.
    pub fn new_value(&mut self, ty: Ty) -> ValueId {
        let id = ValueId(self.value_tys.len() as u32);
        self.value_tys.push(ty);
        id
    }

    /// Type of a value.
    pub fn ty_of(&self, v: ValueId) -> Ty {
        self.value_tys[v.index()]
    }

    /// Append a fresh empty block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { name: name.into(), instrs: vec![], term: None });
        id
    }

    /// Immutable access to one block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to one block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![vec![]; self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.successors() {
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Reverse postorder over the CFG from the entry block. Unreachable
    /// blocks are omitted.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some((b, i)) = stack.pop() {
            let succs = self.block(b).successors();
            if i < succs.len() {
                stack.push((b, i + 1));
                let s = succs[i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }

    /// Total number of instructions (excluding terminators).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Visit every operand of every instruction and terminator.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        for b in &self.blocks {
            for id in &b.instrs {
                id.instr.for_each_operand(&mut f);
            }
            match &b.term {
                Some(Terminator::CondBr { cond, .. }) => f(cond),
                Some(Terminator::Ret(Some(op))) => f(op),
                _ => {}
            }
        }
    }
}

/// A whole program: functions, globals, string literals.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// All functions; `main` must exist for a runnable program.
    pub funcs: Vec<Function>,
    /// Module globals.
    pub globals: Vec<Global>,
    /// Interned string literals (for `print_str`).
    pub strings: Vec<String>,
}

impl Module {
    /// Fresh empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Add a function and return its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(id_check(f));
        id
    }

    /// Declare (or re-use) a global variable.
    pub fn add_global(&mut self, name: impl Into<String>, init: GlobalInit) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global { name: name.into(), init });
        id
    }

    /// Intern a string literal.
    pub fn add_string(&mut self, s: impl Into<String>) -> StrId {
        let s = s.into();
        if let Some(i) = self.strings.iter().position(|x| *x == s) {
            return StrId(i as u32);
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s);
        id
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Immutable access to a function.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.index()]
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.funcs[f.index()]
    }
}

fn id_check(f: Function) -> Function {
    debug_assert!(!f.blocks.is_empty(), "function {} has no blocks", f.name);
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_bits() {
        assert_eq!(Ty::I1.bits(), 1);
        assert_eq!(Ty::I64.bits(), 64);
        assert_eq!(Ty::F64.bits(), 64);
        assert_eq!(Ty::Ptr.bits(), 64);
        assert!(Ty::I64.is_int_class());
        assert!(Ty::Ptr.is_int_class());
        assert!(!Ty::F64.is_int_class());
    }

    #[test]
    fn function_values_and_blocks() {
        let mut f = Function::new("f", vec![Ty::I64, Ty::F64], Some(Ty::I64));
        assert_eq!(f.param_values().count(), 2);
        assert_eq!(f.ty_of(ValueId(1)), Ty::F64);
        let v = f.new_value(Ty::Ptr);
        assert_eq!(f.ty_of(v), Ty::Ptr);
        let b = f.add_block("loop");
        assert_eq!(b, BlockId(1));
        assert_eq!(f.blocks.len(), 2);
    }

    #[test]
    fn module_string_interning() {
        let mut m = Module::new();
        let a = m.add_string("x");
        let b = m.add_string("y");
        let c = m.add_string("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(m.strings.len(), 2);
    }

    #[test]
    fn reverse_postorder_visits_entry_first() {
        let mut f = Function::new("f", vec![], None);
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        f.block_mut(BlockId(0)).term = Some(Terminator::CondBr {
            cond: Operand::ConstI(1),
            t: b1,
            f: b2,
        });
        f.block_mut(b1).term = Some(Terminator::Ret(None));
        f.block_mut(b2).term = Some(Terminator::Ret(None));
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn predecessors_computed() {
        let mut f = Function::new("f", vec![], None);
        let b1 = f.add_block("b1");
        f.block_mut(BlockId(0)).term = Some(Terminator::Br(b1));
        f.block_mut(b1).term = Some(Terminator::Ret(None));
        let preds = f.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
    }

    #[test]
    fn global_init_words() {
        assert_eq!(GlobalInit::Zero(4).words(), 4);
        assert_eq!(GlobalInit::I64s(vec![1, 2, 3]).words(), 3);
        assert_eq!(GlobalInit::F64s(vec![1.0]).words(), 1);
    }
}
