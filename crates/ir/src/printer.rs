//! Textual IR output in an LLVM-flavoured syntax.
//!
//! Used by `examples/codegen_interference.rs` to reproduce the paper's
//! Listing 1a/2a (IR next to machine assembly).

use crate::instr::{CastOp, FBinOp, FPred, IBinOp, IPred, Instr, Operand, Terminator};
use crate::module::{Function, Module, ValueId};
use std::fmt::Write;

/// Render a whole module.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    for (i, g) in m.globals.iter().enumerate() {
        let _ = writeln!(s, "@{} = global [{} x i64] ; g{}", g.name, g.init.words(), i);
    }
    if !m.globals.is_empty() {
        s.push('\n');
    }
    for f in &m.funcs {
        s.push_str(&print_function(m, f));
        s.push('\n');
    }
    s
}

/// Render one function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut s = String::new();
    let ret = f.ret.map(|t| t.to_string()).unwrap_or_else(|| "void".into());
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %{i}"))
        .collect();
    let _ = writeln!(s, "define {ret} @{}({}) {{", f.name, params.join(", "));
    for (bi, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(s, "{}.{}:", b.name, bi);
        for id in &b.instrs {
            let lhs = match id.result {
                Some(v) => format!("%{} = ", v.0),
                None => String::new(),
            };
            let _ = writeln!(s, "  {}{}", lhs, print_instr(m, f, &id.instr));
        }
        match &b.term {
            Some(Terminator::Br(t)) => {
                let _ = writeln!(s, "  br label %{}.{}", f.blocks[t.index()].name, t.0);
            }
            Some(Terminator::CondBr { cond, t, f: fb }) => {
                let _ = writeln!(
                    s,
                    "  br i1 {}, label %{}.{}, label %{}.{}",
                    op_str(cond),
                    f.blocks[t.index()].name,
                    t.0,
                    f.blocks[fb.index()].name,
                    fb.0
                );
            }
            Some(Terminator::Ret(Some(v))) => {
                let _ = writeln!(s, "  ret {} {}", ret, op_str(v));
            }
            Some(Terminator::Ret(None)) => {
                let _ = writeln!(s, "  ret void");
            }
            None => {
                let _ = writeln!(s, "  <unterminated>");
            }
        }
    }
    s.push_str("}\n");
    s
}

fn op_str(o: &Operand) -> String {
    match o {
        Operand::Value(ValueId(v)) => format!("%{v}"),
        Operand::ConstI(c) => format!("{c}"),
        Operand::ConstF(c) => format!("{c:?}"),
        Operand::Global(g) => format!("@g{}", g.0),
    }
}

fn ibin_name(op: IBinOp) -> &'static str {
    match op {
        IBinOp::Add => "add",
        IBinOp::Sub => "sub",
        IBinOp::Mul => "mul",
        IBinOp::Div => "sdiv",
        IBinOp::Rem => "srem",
        IBinOp::And => "and",
        IBinOp::Or => "or",
        IBinOp::Xor => "xor",
        IBinOp::Shl => "shl",
        IBinOp::LShr => "lshr",
        IBinOp::AShr => "ashr",
    }
}

fn fbin_name(op: FBinOp) -> &'static str {
    match op {
        FBinOp::Add => "fadd",
        FBinOp::Sub => "fsub",
        FBinOp::Mul => "fmul",
        FBinOp::Div => "fdiv",
    }
}

fn ipred_name(p: IPred) -> &'static str {
    match p {
        IPred::Eq => "eq",
        IPred::Ne => "ne",
        IPred::Slt => "slt",
        IPred::Sle => "sle",
        IPred::Sgt => "sgt",
        IPred::Sge => "sge",
    }
}

fn fpred_name(p: FPred) -> &'static str {
    match p {
        FPred::Oeq => "oeq",
        FPred::One => "one",
        FPred::Olt => "olt",
        FPred::Ole => "ole",
        FPred::Ogt => "ogt",
        FPred::Oge => "oge",
    }
}

fn print_instr(m: &Module, f: &Function, i: &Instr) -> String {
    match i {
        Instr::Alloca { words } => format!("alloca [{words} x i64]"),
        Instr::Load { addr, ty } => format!("load {ty}, ptr {}", op_str(addr)),
        Instr::Store { addr, val, ty } => {
            format!("store {ty} {}, ptr {}", op_str(val), op_str(addr))
        }
        Instr::IBin { op, a, b } => {
            format!("{} i64 {}, {}", ibin_name(*op), op_str(a), op_str(b))
        }
        Instr::FBin { op, a, b } => {
            format!("{} double {}, {}", fbin_name(*op), op_str(a), op_str(b))
        }
        Instr::ICmp { pred, a, b } => {
            format!("icmp {} i64 {}, {}", ipred_name(*pred), op_str(a), op_str(b))
        }
        Instr::FCmp { pred, a, b } => {
            format!("fcmp {} double {}, {}", fpred_name(*pred), op_str(a), op_str(b))
        }
        Instr::Select { cond, a, b, ty } => format!(
            "select i1 {}, {ty} {}, {ty} {}",
            op_str(cond),
            op_str(a),
            op_str(b)
        ),
        Instr::Cast { op, v } => {
            let name = match op {
                CastOp::SiToF => "sitofp",
                CastOp::FToSi => "fptosi",
                CastOp::I1ToI64 => "zext",
                CastOp::IntToPtr => "inttoptr",
                CastOp::PtrToInt => "ptrtoint",
                CastOp::BitsToF => "bitcast-to-f64",
                CastOp::FToBits => "bitcast-to-i64",
            };
            format!("{name} {}", op_str(v))
        }
        Instr::PtrAdd { base, idx, scale, disp } => format!(
            "getelementptr ptr {}, i64 {} x {scale} + {disp}",
            op_str(base),
            op_str(idx)
        ),
        Instr::Call { func, args } => {
            let a: Vec<String> = args.iter().map(op_str).collect();
            format!("call @{}({})", m.funcs[func.index()].name, a.join(", "))
        }
        Instr::IntrinsicCall { which, args } => {
            let a: Vec<String> = args.iter().map(op_str).collect();
            format!("call @{}({})", which.name(), a.join(", "))
        }
        Instr::PrintStr { s } => format!("call @print_str(\"{}\")", m.strings[s.index()]),
        Instr::LlfiInject { site, val, ty } => {
            format!("call {ty} @injectFault{site}(i64 {site}, {ty} {})", op_str(val))
        }
        Instr::Phi { incomings, ty } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(b, v)| {
                    format!("[ {}, %{}.{} ]", op_str(v), f.blocks[b.index()].name, b.0)
                })
                .collect();
            format!("phi {ty} {}", inc.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::IBinOp;
    use crate::module::Ty;

    #[test]
    fn prints_simple_function() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let r = b.ibin(IBinOp::Mul, p, Operand::ConstI(3));
        b.ret(Some(r));
        m.add_function(b.finish());
        let s = print_module(&m);
        assert!(s.contains("define i64 @f(i64 %0)"));
        assert!(s.contains("%1 = mul i64 %0, 3"));
        assert!(s.contains("ret i64 %1"));
    }

    #[test]
    fn prints_globals_and_strings() {
        let mut m = Module::new();
        m.add_global("grid", crate::module::GlobalInit::Zero(16));
        let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
        let s = m.add_string("hello");
        b.print_str(s);
        b.ret(Some(Operand::ConstI(0)));
        m.add_function(b.finish());
        let out = print_module(&m);
        assert!(out.contains("@grid = global [16 x i64]"));
        assert!(out.contains("call @print_str(\"hello\")"));
    }
}
