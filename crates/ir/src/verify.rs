//! Structural and type verification of IR modules.
//!
//! Checked properties:
//! * every block is terminated, every branch targets an existing block;
//! * phis form a prefix of their block and have exactly one incoming per
//!   (reachable) predecessor;
//! * every value referenced is defined exactly once (SSA), and non-phi uses
//!   are dominated by their definition;
//! * operand and result types match the instruction's signature;
//! * call argument counts/types match callee signatures.

use crate::dom::DomTree;
use crate::instr::{CastOp, Instr, Operand, Terminator};
use crate::module::{BlockId, Function, Module, Ty, ValueId};
use crate::{IrError, IrResult};

/// Verify every function of the module.
pub fn verify_module(m: &Module) -> IrResult<()> {
    for f in &m.funcs {
        verify_function(m, f).map_err(|e| match e {
            IrError::Verify(msg) => IrError::Verify(format!("in @{}: {msg}", f.name)),
            other => other,
        })?;
    }
    Ok(())
}

fn err<T>(msg: impl Into<String>) -> IrResult<T> {
    Err(IrError::Verify(msg.into()))
}

/// Verify a single function.
pub fn verify_function(m: &Module, f: &Function) -> IrResult<()> {
    let nblocks = f.blocks.len();

    // --- Definitions: each value defined at most once; record def site.
    let mut def_site: Vec<Option<(BlockId, usize)>> = vec![None; f.value_tys.len()];
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut seen_non_phi = false;
        for (ii, id) in b.instrs.iter().enumerate() {
            if id.instr.is_phi() {
                if seen_non_phi {
                    return err(format!("phi after non-phi in block {bi}"));
                }
            } else {
                seen_non_phi = true;
            }
            if let Some(v) = id.result {
                if v.index() >= f.value_tys.len() {
                    return err(format!("result value %{} out of range", v.0));
                }
                if v.index() < f.params.len() {
                    return err(format!("instruction redefines parameter %{}", v.0));
                }
                if def_site[v.index()].is_some() {
                    return err(format!("value %{} defined twice", v.0));
                }
                def_site[v.index()] = Some((BlockId(bi as u32), ii));
                // Result type must match the instruction.
                let expect = id
                    .instr
                    .result_ty(|vv| f.ty_of(vv), |fid| m.funcs[fid.index()].ret);
                match expect {
                    Some(t) if t == f.ty_of(v) => {}
                    Some(t) => {
                        return err(format!(
                            "value %{} declared {} but instruction produces {}",
                            v.0,
                            f.ty_of(v),
                            t
                        ))
                    }
                    None => return err(format!("instruction produces no value but has result %{}", v.0)),
                }
            }
        }
        // Terminator exists and targets valid blocks.
        match &b.term {
            None => return err(format!("block {bi} not terminated")),
            Some(Terminator::Br(t)) => {
                if t.index() >= nblocks {
                    return err(format!("branch to missing block {}", t.0));
                }
            }
            Some(Terminator::CondBr { t, f: fb, .. }) => {
                if t.index() >= nblocks || fb.index() >= nblocks {
                    return err("conditional branch to missing block".to_string());
                }
            }
            Some(Terminator::Ret(v)) => match (v, f.ret) {
                (None, None) => {}
                (Some(_), Some(_)) => {}
                (None, Some(_)) => return err("void return in non-void function"),
                (Some(_), None) => return err("value return in void function"),
            },
        }
    }

    let preds = f.predecessors();
    let dt = DomTree::compute(f);
    let reachable: Vec<bool> = {
        let mut r = vec![false; nblocks];
        for &b in &dt.rpo {
            r[b.index()] = true;
        }
        r
    };

    // --- Uses: type checks + dominance.
    let operand_ty = |op: &Operand| -> IrResult<Ty> {
        match op {
            Operand::Value(v) => {
                if v.index() >= f.value_tys.len() {
                    return err(format!("use of undeclared value %{}", v.0));
                }
                Ok(f.ty_of(*v))
            }
            Operand::ConstI(_) => Ok(Ty::I64),
            Operand::ConstF(_) => Ok(Ty::F64),
            Operand::Global(g) => {
                if g.index() >= m.globals.len() {
                    return err(format!("use of undeclared global g{}", g.0));
                }
                Ok(Ty::Ptr)
            }
        }
    };
    // Constants are allowed to stand in for any int-class type (i1 guards,
    // pointer nulls); so type "compatibility" is class-based for ConstI.
    let compat = |expected: Ty, op: &Operand, actual: Ty| -> bool {
        match op {
            Operand::ConstI(_) => expected.is_int_class(),
            _ => expected == actual || (expected == Ty::Ptr && actual == Ty::I64) || (expected == Ty::I64 && actual == Ty::Ptr),
        }
    };

    for (bi, b) in f.blocks.iter().enumerate() {
        if !reachable[bi] {
            continue;
        }
        let bid = BlockId(bi as u32);
        for (ii, id) in b.instrs.iter().enumerate() {
            // Per-instruction operand typing.
            check_instr_types(m, f, &id.instr, &operand_ty, &compat)?;
            // Dominance of uses (phis checked per-edge below).
            if let Instr::Phi { incomings, .. } = &id.instr {
                let mut ps: Vec<BlockId> =
                    preds[bi].iter().copied().filter(|p| reachable[p.index()]).collect();
                ps.sort();
                ps.dedup();
                if ps.is_empty() {
                    return err(format!("phi in block {bi} which has no predecessors"));
                }
                let mut inc: Vec<BlockId> = incomings
                    .iter()
                    .map(|(p, _)| *p)
                    .filter(|p| reachable[p.index()])
                    .collect();
                inc.sort();
                if inc != ps {
                    return err(format!(
                        "phi in block {bi} incomings {:?} do not match predecessors {:?}",
                        inc, ps
                    ));
                }
                for (p, op) in incomings {
                    if let Some(v) = op.as_value() {
                        if let Some((db, _)) = def_site_or_param(f, &def_site, v)? {
                            if reachable[p.index()] && !dt.dominates(db, *p) {
                                return err(format!(
                                    "phi incoming %{} from block {} not dominated by def",
                                    v.0, p.0
                                ));
                            }
                        }
                    }
                }
            } else {
                let mut bad: Option<String> = None;
                id.instr.for_each_operand(&mut |op| {
                    if bad.is_some() {
                        return;
                    }
                    if let Some(v) = op.as_value() {
                        match def_site_or_param(f, &def_site, v) {
                            Err(_) => bad = Some(format!("use of undefined value %{}", v.0)),
                            Ok(Some((db, di))) => {
                                let ok = if db == bid {
                                    di < ii
                                } else {
                                    dt.dominates(db, bid)
                                };
                                if !ok {
                                    bad = Some(format!(
                                        "use of %{} in block {bi} not dominated by its definition",
                                        v.0
                                    ));
                                }
                            }
                            Ok(None) => {} // parameter, dominates everything
                        }
                    }
                });
                if let Some(msg) = bad {
                    return err(msg);
                }
            }
        }
        // Terminator operand: type and dominance.
        let mut term_uses: Vec<ValueId> = Vec::new();
        match &b.term {
            Some(Terminator::CondBr { cond, .. }) => {
                if let Some(v) = cond.as_value() {
                    term_uses.push(v);
                }
            }
            Some(Terminator::Ret(Some(v))) => {
                if let Some(v) = v.as_value() {
                    term_uses.push(v);
                }
            }
            _ => {}
        }
        for v in term_uses {
            if let Some((db, _)) = def_site_or_param(f, &def_site, v)? {
                if db != bid && !dt.dominates(db, bid) {
                    return err(format!(
                        "terminator use of %{} in block {bi} not dominated by its definition",
                        v.0
                    ));
                }
            }
        }
        if let Some(Terminator::CondBr { cond, .. }) = &b.term {
            let t = operand_ty(cond)?;
            if !compat(Ty::I1, cond, t) && t != Ty::I1 {
                return err(format!("condbr condition has type {t}, expected i1"));
            }
        }
        if let Some(Terminator::Ret(Some(v))) = &b.term {
            let t = operand_ty(v)?;
            let rt = f.ret.unwrap();
            if !compat(rt, v, t) {
                return err(format!("return of {t}, function returns {rt}"));
            }
        }
    }
    Ok(())
}

/// `Ok(None)` for parameters (defined at entry), `Ok(Some(site))` otherwise.
fn def_site_or_param(
    f: &Function,
    def_site: &[Option<(BlockId, usize)>],
    v: ValueId,
) -> IrResult<Option<(BlockId, usize)>> {
    if v.index() < f.params.len() {
        return Ok(None);
    }
    match def_site.get(v.index()).copied().flatten() {
        Some(s) => Ok(Some(s)),
        None => err(format!("value %{} never defined", v.0)),
    }
}

fn check_instr_types(
    m: &Module,
    f: &Function,
    i: &Instr,
    operand_ty: &impl Fn(&Operand) -> IrResult<Ty>,
    compat: &impl Fn(Ty, &Operand, Ty) -> bool,
) -> IrResult<()> {
    let want = |expected: Ty, op: &Operand| -> IrResult<()> {
        let t = operand_ty(op)?;
        if compat(expected, op, t) {
            Ok(())
        } else {
            err(format!("operand type {t}, expected {expected}"))
        }
    };
    match i {
        Instr::Alloca { words } => {
            if *words == 0 {
                return err("zero-sized alloca");
            }
        }
        Instr::Load { addr, ty } => {
            want(Ty::Ptr, addr)?;
            if *ty == Ty::I1 {
                return err("i1 loads are not supported");
            }
        }
        Instr::Store { addr, val, ty } => {
            want(Ty::Ptr, addr)?;
            want(*ty, val)?;
        }
        Instr::IBin { a, b, .. } => {
            want(Ty::I64, a)?;
            want(Ty::I64, b)?;
        }
        Instr::FBin { a, b, .. } => {
            want(Ty::F64, a)?;
            want(Ty::F64, b)?;
        }
        Instr::ICmp { a, b, .. } => {
            want(Ty::I64, a)?;
            want(Ty::I64, b)?;
        }
        Instr::FCmp { a, b, .. } => {
            want(Ty::F64, a)?;
            want(Ty::F64, b)?;
        }
        Instr::Select { cond, a, b, ty } => {
            let ct = operand_ty(cond)?;
            if ct != Ty::I1 && !matches!(cond, Operand::ConstI(_)) {
                return err(format!("select condition has type {ct}"));
            }
            want(*ty, a)?;
            want(*ty, b)?;
        }
        Instr::Cast { op, v } => {
            let src = match op {
                CastOp::SiToF | CastOp::I1ToI64 | CastOp::IntToPtr | CastOp::BitsToF => {
                    if *op == CastOp::I1ToI64 { Ty::I1 } else { Ty::I64 }
                }
                CastOp::FToSi | CastOp::FToBits => Ty::F64,
                CastOp::PtrToInt => Ty::Ptr,
            };
            want(src, v)?;
        }
        Instr::PtrAdd { base, idx, scale, .. } => {
            want(Ty::Ptr, base)?;
            want(Ty::I64, idx)?;
            if *scale == 0 {
                return err("ptradd with zero scale");
            }
        }
        Instr::Call { func, args } => {
            if func.index() >= m.funcs.len() {
                return err("call to missing function");
            }
            let callee = &m.funcs[func.index()];
            if callee.params.len() != args.len() {
                return err(format!(
                    "call to @{} with {} args, expected {}",
                    callee.name,
                    args.len(),
                    callee.params.len()
                ));
            }
            for (p, a) in callee.params.iter().zip(args) {
                want(*p, a)?;
            }
        }
        Instr::IntrinsicCall { which, args } => {
            if which.arity() != args.len() {
                return err(format!(
                    "intrinsic {} with {} args, expected {}",
                    which.name(),
                    args.len(),
                    which.arity()
                ));
            }
            let expect = match which {
                crate::instr::Intrinsic::PrintI64 => Ty::I64,
                _ => Ty::F64,
            };
            for a in args {
                want(expect, a)?;
            }
        }
        Instr::LlfiInject { val, ty, .. } => {
            if *ty == Ty::I1 {
                // i1 flips are modelled at 1-bit width; the operand must be
                // a boolean value.
                let t = operand_ty(val)?;
                if t != Ty::I1 && !matches!(val, Operand::ConstI(_)) {
                    return err(format!("llfi inject of {t}, declared i1"));
                }
            } else {
                want(*ty, val)?;
            }
        }
        Instr::PrintStr { s } => {
            if s.index() >= m.strings.len() {
                return err("print_str of missing string");
            }
        }
        Instr::Phi { incomings, ty } => {
            for (_, op) in incomings {
                want(*ty, op)?;
            }
        }
    }
    let _ = f;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::instr::{IBinOp, IPred};
    use crate::module::{Function, InstrData};

    fn module_with(f: Function) -> Module {
        let mut m = Module::new();
        m.add_function(f);
        m
    }

    #[test]
    fn accepts_valid_function() {
        let mut b = FuncBuilder::new("ok", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.ibin(IBinOp::Add, p, Operand::ConstI(1));
        b.ret(Some(x));
        assert!(verify_module(&module_with(b.finish())).is_ok());
    }

    #[test]
    fn rejects_unterminated_block() {
        let f = Function::new("bad", vec![], None);
        assert!(matches!(
            verify_module(&module_with(f)),
            Err(IrError::Verify(_))
        ));
    }

    #[test]
    fn rejects_double_definition() {
        let mut f = Function::new("bad", vec![], Some(Ty::I64));
        let v = f.new_value(Ty::I64);
        let add = Instr::IBin { op: IBinOp::Add, a: Operand::ConstI(0), b: Operand::ConstI(1) };
        f.block_mut(BlockId(0)).instrs.push(InstrData { instr: add.clone(), result: Some(v) });
        f.block_mut(BlockId(0)).instrs.push(InstrData { instr: add, result: Some(v) });
        f.block_mut(BlockId(0)).term = Some(Terminator::Ret(Some(Operand::Value(v))));
        assert!(verify_module(&module_with(f)).is_err());
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = Function::new("bad", vec![Ty::F64], Some(Ty::I64));
        let v = f.new_value(Ty::I64);
        f.block_mut(BlockId(0)).instrs.push(InstrData {
            instr: Instr::IBin {
                op: IBinOp::Add,
                a: Operand::Value(ValueId(0)), // f64 param used as i64
                b: Operand::ConstI(1),
            },
            result: Some(v),
        });
        f.block_mut(BlockId(0)).term = Some(Terminator::Ret(Some(Operand::Value(v))));
        assert!(verify_module(&module_with(f)).is_err());
    }

    #[test]
    fn rejects_phi_with_wrong_preds() {
        let mut b = FuncBuilder::new("bad", vec![], Some(Ty::I64));
        let other = b.add_block("other");
        // phi in entry claims an incoming from `other`, but entry has no preds.
        let ph = b.phi(Ty::I64, vec![(other, Operand::ConstI(1))]);
        b.ret(Some(ph));
        b.switch_to(other);
        b.ret(Some(Operand::ConstI(0)));
        assert!(verify_module(&module_with(b.finish())).is_err());
    }

    #[test]
    fn rejects_use_before_def_across_blocks() {
        let mut f = Function::new("bad", vec![], Some(Ty::I64));
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        let v = f.new_value(Ty::I64);
        // entry: condbr to b1/b2; def in b1; use in b2 (not dominated).
        f.block_mut(BlockId(0)).term =
            Some(Terminator::CondBr { cond: Operand::ConstI(1), t: b1, f: b2 });
        f.block_mut(b1).instrs.push(InstrData {
            instr: Instr::IBin { op: IBinOp::Add, a: Operand::ConstI(1), b: Operand::ConstI(2) },
            result: Some(v),
        });
        f.block_mut(b1).term = Some(Terminator::Ret(Some(Operand::Value(v))));
        f.block_mut(b2).term = Some(Terminator::Ret(Some(Operand::Value(v))));
        assert!(verify_module(&module_with(f)).is_err());
    }

    #[test]
    fn accepts_loop_phi() {
        let mut b = FuncBuilder::new("loop", vec![], Some(Ty::I64));
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I64, vec![(BlockId(0), Operand::ConstI(0))]);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(4));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let n = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.add_incoming(i, body, n);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        assert!(verify_module(&module_with(b.finish())).is_ok());
    }
}
