//! Per-trial fault provenance.
//!
//! Every campaign trial can emit one [`TrialTrace`] — which fault was
//! injected where, and what happened — streamed as one JSON object per
//! line to a [`TraceSink`]. The [`TraceSummary`] aggregator folds a trace
//! file back into an injection-site × outcome table.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Provenance record for one fault-injection trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialTrace {
    /// Benchmark application name.
    pub app: String,
    /// FI tool name (`llfi` / `refine` / `pinfi`).
    pub tool: String,
    /// Trial index within the campaign.
    pub trial: u64,
    /// Fault-model RNG seed for the trial.
    pub seed: u64,
    /// Target dynamic instruction index (1-based; the fault fires when
    /// the selector's dynamic count reaches it).
    pub target_dyn: u64,
    /// Static instruction id of the injection site (REFINE/LLFI: site id;
    /// PINFI: instruction address), when an injection actually fired.
    pub site: Option<u64>,
    /// Opcode / assembly mnemonic of the injected instruction.
    pub opcode: Option<String>,
    /// Destination operand index the flip landed in.
    pub operand: Option<u64>,
    /// Bit position flipped.
    pub bit: Option<u64>,
    /// Outcome class label (`crash` / `soc` / `benign`).
    pub outcome: String,
    /// Trap cause when the trial trapped.
    pub trap: Option<String>,
    /// Simulated cycles consumed by the trial.
    pub cycles: u64,
    /// Dynamic instructions retired by the trial.
    pub instrs: u64,
}

/// Thread-safe JSONL writer for [`TrialTrace`] records.
pub struct TraceSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl TraceSink {
    /// Stream to a file at `path` (truncates).
    pub fn to_file(path: &Path) -> std::io::Result<TraceSink> {
        let f = std::fs::File::create(path)?;
        Ok(TraceSink::new(Box::new(f)))
    }

    /// Stream to an arbitrary writer.
    pub fn new(w: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            out: Mutex::new(BufWriter::new(w)),
        }
    }

    /// Buffer records in memory. The returned handle exposes the raw JSONL
    /// bytes written so far (after [`TraceSink::flush`]); determinism tests
    /// use it to compare trace record sets without touching the filesystem.
    pub fn in_memory() -> (TraceSink, TraceBuffer) {
        let buf = TraceBuffer(Arc::new(Mutex::new(Vec::new())));
        (TraceSink::new(Box::new(buf.clone())), buf)
    }

    /// Append one record as a JSON line. Serialization happens outside
    /// the lock; the lock covers only the buffered write.
    pub fn write(&self, t: &TrialTrace) -> std::io::Result<()> {
        let mut line = serde::json::to_string(t);
        line.push('\n');
        self.out.lock().write_all(line.as_bytes())
    }

    /// Flush buffered records to the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().flush()
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

/// Shared in-memory JSONL buffer behind a [`TraceSink`].
#[derive(Clone, Default)]
pub struct TraceBuffer(Arc<Mutex<Vec<u8>>>);

impl TraceBuffer {
    /// The JSONL text accumulated so far (flush the sink first).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.0.lock()).into_owned()
    }

    /// Parse the accumulated records.
    pub fn records(&self) -> Result<Vec<TrialTrace>, String> {
        read_jsonl_str(&self.text())
    }
}

impl Write for TraceBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Parse JSONL trace text into records.
pub fn read_jsonl_str(text: &str) -> Result<Vec<TrialTrace>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            serde::json::from_str(l).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

/// Parse a JSONL trace file back into records.
pub fn read_jsonl(path: &Path) -> Result<Vec<TrialTrace>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    read_jsonl_str(&text)
}

/// Outcome tallies for one aggregation key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// `crash` records.
    pub crash: u64,
    /// `soc` records.
    pub soc: u64,
    /// `benign` records.
    pub benign: u64,
}

impl OutcomeTally {
    fn add(&mut self, outcome: &str) {
        match outcome {
            "crash" => self.crash += 1,
            "soc" => self.soc += 1,
            _ => self.benign += 1,
        }
    }

    /// Total records in this tally.
    pub fn total(&self) -> u64 {
        self.crash + self.soc + self.benign
    }
}

/// Injection-site × outcome aggregation of a set of trace records.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Tallies keyed by `(tool, opcode)` — the fault provenance axis the
    /// paper's accuracy argument turns on.
    pub by_tool_opcode: BTreeMap<(String, String), OutcomeTally>,
    /// Overall tallies per tool.
    pub by_tool: BTreeMap<String, OutcomeTally>,
    /// Records with no `site` (fault never fired — selector past end).
    pub no_injection: u64,
    /// Total records.
    pub total: u64,
}

impl TraceSummary {
    /// Aggregate records.
    pub fn from_records(records: &[TrialTrace]) -> TraceSummary {
        let mut s = TraceSummary::default();
        for r in records {
            s.total += 1;
            s.by_tool.entry(r.tool.clone()).or_default().add(&r.outcome);
            match &r.opcode {
                Some(op) => s
                    .by_tool_opcode
                    .entry((r.tool.clone(), op.clone()))
                    .or_default()
                    .add(&r.outcome),
                None => s.no_injection += 1,
            }
        }
        s
    }

    /// Render the injection-site × outcome table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:<12} {:>7} {:>7} {:>7} {:>7}\n",
            "tool", "opcode", "trials", "crash", "soc", "benign"
        ));
        for ((tool, opcode), t) in &self.by_tool_opcode {
            out.push_str(&format!(
                "{:<8} {:<12} {:>7} {:>7} {:>7} {:>7}\n",
                tool,
                opcode,
                t.total(),
                t.crash,
                t.soc,
                t.benign
            ));
        }
        out.push_str(&format!(
            "{} records total, {} with no injection fired\n",
            self.total, self.no_injection
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tool: &str, opcode: Option<&str>, outcome: &str, trial: u64) -> TrialTrace {
        TrialTrace {
            app: "matmul".into(),
            tool: tool.into(),
            trial,
            seed: 0xdead_beef ^ trial,
            target_dyn: 100 + trial,
            site: opcode.map(|_| 7),
            opcode: opcode.map(Into::into),
            operand: opcode.map(|_| 0),
            bit: opcode.map(|_| 13),
            outcome: outcome.into(),
            trap: (outcome == "crash").then(|| "segfault".to_string()),
            cycles: 1234,
            instrs: 567,
        }
    }

    #[test]
    fn trial_trace_serde_round_trip() {
        for r in [
            rec("refine", Some("alu.add"), "crash", 1),
            rec("pinfi", None, "benign", 2),
        ] {
            let line = serde::json::to_string(&r);
            let back: TrialTrace = serde::json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn sink_writes_jsonl_and_reads_back() {
        let dir = std::env::temp_dir().join("refine-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
        let records = vec![
            rec("llfi", Some("fmul"), "soc", 0),
            rec("refine", Some("ld"), "crash", 1),
            rec("refine", None, "benign", 2),
        ];
        {
            let sink = TraceSink::to_file(&path).unwrap();
            for r in &records {
                sink.write(r).unwrap();
            }
            sink.flush().unwrap();
        }
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn in_memory_sink_round_trips() {
        let (sink, buf) = TraceSink::in_memory();
        let records =
            vec![rec("refine", Some("alu.add"), "crash", 0), rec("pinfi", None, "benign", 1)];
        for r in &records {
            sink.write(r).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(buf.records().unwrap(), records);
        assert_eq!(buf.text().lines().count(), 2);
    }

    #[test]
    fn summary_aggregates_by_site_and_outcome() {
        let records = vec![
            rec("refine", Some("alu.add"), "crash", 0),
            rec("refine", Some("alu.add"), "benign", 1),
            rec("refine", Some("fmul"), "soc", 2),
            rec("pinfi", Some("alu.add"), "benign", 3),
            rec("pinfi", None, "benign", 4),
        ];
        let s = TraceSummary::from_records(&records);
        assert_eq!(s.total, 5);
        assert_eq!(s.no_injection, 1);
        let t = &s.by_tool_opcode[&("refine".to_string(), "alu.add".to_string())];
        assert_eq!((t.crash, t.soc, t.benign), (1, 0, 1));
        assert_eq!(s.by_tool["pinfi"].total(), 2);
        let table = s.render();
        assert!(table.contains("alu.add"));
        assert!(table.contains("5 records total"));
    }
}
