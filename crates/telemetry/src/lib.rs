//! Telemetry for the REFINE reproduction: structured tracing, metrics, and
//! per-trial fault provenance.
//!
//! Four pieces, mirroring what a production FI pipeline needs to stay
//! observable:
//!
//! * [`metrics`] — a lock-cheap global registry of atomic counters and
//!   fixed-bucket (power-of-two) histograms, snapshotable at any point into
//!   a serde-serializable [`metrics::MetricsSnapshot`];
//! * [`span`] — RAII phase timers ([`span::Span`]/[`span::PhaseTimer`])
//!   wrapping compile stages (lex/parse, lowering, isel, regalloc,
//!   finalize/emit) and the FI instrumentation passes, so front-ends can
//!   print a per-phase time table;
//! * [`trace`] — per-trial provenance records ([`trace::TrialTrace`])
//!   streamed to a JSONL sink, plus an aggregator summarizing injection
//!   site × outcome;
//! * [`progress`] — campaign progress reporting (trials/s, ETA, live
//!   outcome percentages) on stderr.
//!
//! # Zero cost when disabled
//!
//! The registry starts **disabled**: every record path first does a single
//! relaxed atomic load and bails, so library crates can call telemetry
//! hooks unconditionally. Binaries that want the data opt in once with
//! [`enable`]. Timers ([`span::Span`]) skip even the clock read while
//! disabled.

pub mod metrics;
pub mod progress;
pub mod span;
pub mod trace;

pub use metrics::{
    registry, ArtifactCacheSnapshot, CheckpointSnapshot, ConvergenceSnapshot, MetricsSnapshot,
    OutcomeKind, SuperblockSnapshot,
};
pub use progress::Progress;
pub use span::{Phase, PhaseTimer, Span};
pub use trace::{TraceBuffer, TraceSink, TrialTrace};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn on metric and span recording process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording back off (used by tests; recorded data is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is on. A single relaxed load — cheap enough to guard
/// every hook in compile/run hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Unit tests flip the global enabled flag and reset the phase table, so
/// those that depend on either serialize through this lock.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
