//! Lock-cheap metrics registry.
//!
//! Hot-path recording is a handful of relaxed atomic ops (counters,
//! histogram buckets). The only lock is a `parking_lot::Mutex` around the
//! trap-cause breakdown, which is touched solely on crashing trials.

use crate::span::{Phase, PhasesSnapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// `v` with `v.bits() == i`, i.e. upper bound `2^i - 1`; the last bucket
/// is open-ended.
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Const-constructible zero counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram over `u64` values with power-of-two bucket
/// boundaries. Recording is wait-free: one bucket increment plus sum /
/// count / min / max updates, all relaxed atomics.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Const-constructible empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: the bit width of `v` (0 → bucket 0).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy out a point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Serializable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts, indexed like [`Histogram::bucket_bound`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the q-quantile (`0.0..=1.0`) from bucket
    /// boundaries.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another snapshot into this one (e.g. combining per-shard
    /// histograms). Bucket vectors must have the same length.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "cannot merge histograms with different bucket layouts"
        );
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Outcome classes tracked by the registry (mirrors the campaign's
/// Crash / SOC / Benign classification without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Trap or timeout.
    Crash = 0,
    /// Silent output corruption.
    Soc = 1,
    /// Output matched golden.
    Benign = 2,
}

/// The global metrics registry.
pub struct Registry {
    /// Wall-clock nanoseconds per fault-injection trial.
    pub trial_latency_ns: Histogram,
    /// Dynamic instructions retired per trial.
    pub trial_instrs: Histogram,
    /// Simulated cycles per trial.
    pub trial_cycles: Histogram,
    /// Outcome counters indexed by [`OutcomeKind`].
    outcomes: [Counter; 3],
    /// Trap-cause breakdown (crashing trials only, so a mutex is fine).
    traps: Mutex<BTreeMap<String, u64>>,
    /// Trials that ran to completion (for rate computations).
    pub trials_total: Counter,
    /// Instrumented-artifact cache hits (campaign engine).
    pub artifact_cache_hits: Counter,
    /// Instrumented-artifact cache misses, i.e. full compile+instrument+
    /// profile pipelines actually executed.
    pub artifact_cache_misses: Counter,
    /// Wall-clock nanoseconds per artifact preparation (cache misses only).
    pub artifact_prepare_ns: Histogram,
    /// Trials fast-forwarded from a golden-run checkpoint.
    pub checkpoint_restores: Counter,
    /// Trials executed cold (no usable checkpoint or checkpointing off).
    pub checkpoint_cold: Counter,
    /// Dynamic instructions skipped per checkpoint restore.
    pub checkpoint_skipped_instrs: Histogram,
    /// Trials whose post-injection state converged with the golden run and
    /// whose outcome was spliced.
    pub convergence_hits: Counter,
    /// Post-injection instructions executed under convergence checking.
    pub convergence_checked_instrs: Histogram,
    /// Instructions skipped per convergence hit (golden-suffix splice).
    pub convergence_saved_instrs: Histogram,
    /// Superblock programs built (predecode + fusion, one per prepared
    /// artifact).
    pub superblock_built: Counter,
    /// Fused superblock dispatches across all trials.
    pub superblock_dispatches: Counter,
    /// Instructions retired through fused dispatch.
    pub superblock_fused_instrs: Counter,
    /// Total instructions retired under superblock loops (fused + exact
    /// single-step fallback).
    pub superblock_total_instrs: Counter,
}

static REGISTRY: Registry = Registry::new();

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    &REGISTRY
}

impl Registry {
    const fn new() -> Self {
        Registry {
            trial_latency_ns: Histogram::new(),
            trial_instrs: Histogram::new(),
            trial_cycles: Histogram::new(),
            outcomes: [Counter::new(), Counter::new(), Counter::new()],
            traps: Mutex::new(BTreeMap::new()),
            trials_total: Counter::new(),
            artifact_cache_hits: Counter::new(),
            artifact_cache_misses: Counter::new(),
            artifact_prepare_ns: Histogram::new(),
            checkpoint_restores: Counter::new(),
            checkpoint_cold: Counter::new(),
            checkpoint_skipped_instrs: Histogram::new(),
            convergence_hits: Counter::new(),
            convergence_checked_instrs: Histogram::new(),
            convergence_saved_instrs: Histogram::new(),
            superblock_built: Counter::new(),
            superblock_dispatches: Counter::new(),
            superblock_fused_instrs: Counter::new(),
            superblock_total_instrs: Counter::new(),
        }
    }

    /// Record one completed trial.
    pub fn record_trial(
        &self,
        latency_ns: u64,
        instrs: u64,
        cycles: u64,
        outcome: OutcomeKind,
        trap: Option<&str>,
    ) {
        if !crate::enabled() {
            return;
        }
        self.trial_latency_ns.record(latency_ns);
        self.trial_instrs.record(instrs);
        self.trial_cycles.record(cycles);
        self.outcomes[outcome as usize].incr();
        self.trials_total.incr();
        if let Some(cause) = trap {
            *self.traps.lock().entry(cause.to_string()).or_insert(0) += 1;
        }
    }

    /// Outcome count for one class.
    pub fn outcome_count(&self, kind: OutcomeKind) -> u64 {
        self.outcomes[kind as usize].get()
    }

    /// Copy out a point-in-time snapshot of everything, including the
    /// per-phase span table.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            trial_latency_ns: self.trial_latency_ns.snapshot(),
            trial_instrs: self.trial_instrs.snapshot(),
            trial_cycles: self.trial_cycles.snapshot(),
            outcomes: OutcomeCountsSnapshot {
                crash: self.outcomes[OutcomeKind::Crash as usize].get(),
                soc: self.outcomes[OutcomeKind::Soc as usize].get(),
                benign: self.outcomes[OutcomeKind::Benign as usize].get(),
            },
            traps: self.traps.lock().clone(),
            phases: Phase::snapshot_all(),
            artifact_cache: ArtifactCacheSnapshot {
                hits: self.artifact_cache_hits.get(),
                misses: self.artifact_cache_misses.get(),
                prepare_ns: self.artifact_prepare_ns.snapshot(),
            },
            checkpoint: CheckpointSnapshot {
                restores: self.checkpoint_restores.get(),
                cold: self.checkpoint_cold.get(),
                skipped_instrs: self.checkpoint_skipped_instrs.snapshot(),
            },
            convergence: ConvergenceSnapshot {
                hits: self.convergence_hits.get(),
                checked_instrs: self.convergence_checked_instrs.snapshot(),
                saved_instrs: self.convergence_saved_instrs.snapshot(),
            },
            superblock: SuperblockSnapshot {
                built: self.superblock_built.get(),
                dispatches: self.superblock_dispatches.get(),
                fused_instrs: self.superblock_fused_instrs.get(),
                total_instrs: self.superblock_total_instrs.get(),
            },
        }
    }
}

/// Serializable superblock-engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperblockSnapshot {
    /// Superblock programs built (one per prepared artifact).
    pub built: u64,
    /// Fused block dispatches across all trials.
    pub dispatches: u64,
    /// Instructions retired through fused dispatch.
    pub fused_instrs: u64,
    /// Total instructions retired under superblock loops.
    pub total_instrs: u64,
}

impl SuperblockSnapshot {
    /// Fraction of superblock-loop instructions retired fused (0 when the
    /// engine never ran).
    pub fn fused_instr_share(&self) -> f64 {
        if self.total_instrs == 0 {
            0.0
        } else {
            self.fused_instrs as f64 / self.total_instrs as f64
        }
    }
}

/// Serializable golden-convergence early-exit statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSnapshot {
    /// Trials whose outcome was spliced from the golden run.
    pub hits: u64,
    /// Post-injection instructions executed under convergence checking.
    pub checked_instrs: HistogramSnapshot,
    /// Instructions skipped per convergence hit.
    pub saved_instrs: HistogramSnapshot,
}

/// Serializable checkpoint fast-forward statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSnapshot {
    /// Trials fast-forwarded from a golden-run checkpoint.
    pub restores: u64,
    /// Trials executed cold (no usable checkpoint or checkpointing off).
    pub cold: u64,
    /// Dynamic instructions skipped per restore.
    pub skipped_instrs: HistogramSnapshot,
}

/// Serializable instrumented-artifact cache statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactCacheSnapshot {
    /// Lookups served from an already-prepared artifact.
    pub hits: u64,
    /// Lookups that had to run the full compile+instrument+profile pipeline.
    pub misses: u64,
    /// Preparation wall-time distribution (misses only).
    pub prepare_ns: HistogramSnapshot,
}

impl ArtifactCacheSnapshot {
    /// Fraction of lookups served from cache (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Serializable outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCountsSnapshot {
    /// Trap or timeout.
    pub crash: u64,
    /// Silent output corruption.
    pub soc: u64,
    /// Matched golden output.
    pub benign: u64,
}

/// Serializable point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Wall-clock nanoseconds per trial.
    pub trial_latency_ns: HistogramSnapshot,
    /// Dynamic instructions retired per trial.
    pub trial_instrs: HistogramSnapshot,
    /// Simulated cycles per trial.
    pub trial_cycles: HistogramSnapshot,
    /// Outcome counters.
    pub outcomes: OutcomeCountsSnapshot,
    /// Trap-cause breakdown.
    pub traps: BTreeMap<String, u64>,
    /// Per-phase compile/FI-pass timings.
    pub phases: PhasesSnapshot,
    /// Instrumented-artifact cache statistics.
    pub artifact_cache: ArtifactCacheSnapshot,
    /// Checkpoint fast-forward statistics.
    pub checkpoint: CheckpointSnapshot,
    /// Golden-convergence early-exit statistics.
    pub convergence: ConvergenceSnapshot,
    /// Superblock-engine statistics.
    pub superblock: SuperblockSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        let _g = crate::test_lock();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(255), 8);
        assert_eq!(Histogram::bucket_index(256), 9);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        // Every bucket's bound actually lands in that bucket.
        for i in 0..HIST_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_bound(i)), i);
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let _g = crate::test_lock();
        crate::enable();
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 300, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 100_309);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 2); // 1, 1
        assert_eq!(s.buckets[3], 1); // 7
        assert_eq!(s.buckets[9], 1); // 300
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        assert!((s.mean() - 100_309.0 / 6.0).abs() < 1e-9);
        assert!(s.quantile(0.5) >= 1 && s.quantile(0.5) <= 7);
        assert_eq!(s.quantile(1.0), 100_000);
    }

    #[test]
    fn histogram_disabled_is_noop() {
        let _g = crate::test_lock();
        crate::disable();
        let h = Histogram::new();
        h.record(42);
        assert_eq!(h.snapshot().count, 0);
        crate::enable();
    }

    #[test]
    fn snapshot_merge() {
        let _g = crate::test_lock();
        crate::enable();
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [0u64, 1000] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert_eq!(m.sum, 1015);
        assert_eq!(m.min, 0);
        assert_eq!(m.max, 1000);
        assert_eq!(m.buckets.iter().sum::<u64>(), 5);

        // Merging an empty histogram changes nothing (incl. min).
        let before = m.clone();
        m.merge(&Histogram::new().snapshot());
        assert_eq!(m, before);

        // Merging *into* an empty histogram copies the other side.
        let mut empty = Histogram::new().snapshot();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn registry_trials_and_traps() {
        let _g = crate::test_lock();
        crate::enable();
        let r = Registry::new();
        r.record_trial(1_000, 50, 120, OutcomeKind::Crash, Some("segfault"));
        r.record_trial(2_000, 60, 130, OutcomeKind::Benign, None);
        r.record_trial(1_500, 55, 125, OutcomeKind::Crash, Some("segfault"));
        r.record_trial(1_200, 52, 122, OutcomeKind::Soc, None);
        let s = r.snapshot();
        assert_eq!(s.outcomes.crash, 2);
        assert_eq!(s.outcomes.soc, 1);
        assert_eq!(s.outcomes.benign, 1);
        assert_eq!(s.traps.get("segfault"), Some(&2));
        assert_eq!(s.trial_latency_ns.count, 4);
        assert_eq!(r.trials_total.get(), 4);
    }

    #[test]
    fn cache_counters_snapshot_and_hit_rate() {
        let _g = crate::test_lock();
        crate::enable();
        let r = Registry::new();
        r.artifact_cache_hits.add(9);
        r.artifact_cache_misses.incr();
        r.artifact_prepare_ns.record(1_000_000);
        let s = r.snapshot();
        assert_eq!(s.artifact_cache.hits, 9);
        assert_eq!(s.artifact_cache.misses, 1);
        assert!((s.artifact_cache.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(s.artifact_cache.prepare_ns.count, 1);
        assert_eq!(ArtifactCacheSnapshot { hits: 0, misses: 0, prepare_ns: Histogram::new().snapshot() }.hit_rate(), 0.0);
    }

    #[test]
    fn metrics_snapshot_serde_round_trip() {
        let _g = crate::test_lock();
        crate::enable();
        let r = Registry::new();
        r.record_trial(5_000, 40, 100, OutcomeKind::Crash, Some("bad-pc"));
        r.record_trial(6_000, 45, 110, OutcomeKind::Benign, None);
        let snap = r.snapshot();
        let text = serde::json::to_string(&snap);
        let back: MetricsSnapshot = serde::json::from_str(&text).expect("parses");
        assert_eq!(back, snap);
        // Pretty form parses identically too.
        let pretty = serde::json::to_string_pretty(&snap);
        let back2: MetricsSnapshot = serde::json::from_str(&pretty).expect("parses");
        assert_eq!(back2, snap);
    }
}
