//! Campaign progress reporting: trials/s, ETA, and live outcome
//! percentages on stderr, replacing per-sweep `eprintln!` calls.
//!
//! Recording ([`Progress::record`]) is a few relaxed atomics; the printing
//! itself is throttled to one line per interval and guarded by a
//! `try_lock`, so worker threads never queue behind the terminal.

use crate::metrics::OutcomeKind;
use parking_lot::Mutex;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const PRINT_INTERVAL_MS: u64 = 200;

/// Live progress reporter for a fixed number of trials.
pub struct Progress {
    label: Mutex<String>,
    total: u64,
    done: AtomicU64,
    outcomes: [AtomicU64; 3],
    start: Instant,
    /// Milliseconds since `start` of the last printed line.
    last_print_ms: AtomicU64,
    quiet: bool,
    /// Campaigns in the sweep (0 = single-campaign mode, not shown).
    campaigns_total: AtomicU64,
    /// Campaigns whose last trial has completed.
    campaigns_done: AtomicU64,
}

impl Progress {
    /// New reporter for `total` trials. When `quiet`, nothing is printed
    /// but counts still accumulate.
    pub fn new(total: u64, quiet: bool) -> Progress {
        Progress {
            label: Mutex::new(String::new()),
            total,
            done: AtomicU64::new(0),
            outcomes: [const { AtomicU64::new(0) }; 3],
            start: Instant::now(),
            last_print_ms: AtomicU64::new(0),
            quiet,
            campaigns_total: AtomicU64::new(0),
            campaigns_done: AtomicU64::new(0),
        }
    }

    /// Announce that this reporter covers a sweep of `n` campaigns; the
    /// progress line then shows `done/n campaigns` alongside trial counts.
    pub fn set_campaigns(&self, n: u64) {
        self.campaigns_total.store(n, Ordering::Relaxed);
    }

    /// Record that one campaign of the sweep finished all its trials.
    /// Workers of the sharded engine call this as each campaign drains, so
    /// the aggregate line reflects cross-campaign completion, not worker
    /// identity.
    pub fn campaign_finished(&self) {
        self.campaigns_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Set the `app/tool` prefix shown on the progress line.
    pub fn set_label(&self, label: impl Into<String>) {
        *self.label.lock() = label.into();
    }

    /// Record one finished trial and maybe refresh the progress line.
    pub fn record(&self, outcome: OutcomeKind) {
        self.outcomes[outcome as usize].fetch_add(1, Ordering::Relaxed);
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.quiet {
            return;
        }
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        let due = now_ms.saturating_sub(last) >= PRINT_INTERVAL_MS || done == self.total;
        if due
            && self
                .last_print_ms
                .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.print_line(done, now_ms);
        }
    }

    /// Trials completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    fn print_line(&self, done: u64, now_ms: u64) {
        let secs = (now_ms as f64 / 1e3).max(1e-3);
        let rate = done as f64 / secs;
        let eta = if rate > 0.0 && done < self.total {
            format!("{:.0}s", (self.total - done) as f64 / rate)
        } else {
            "0s".to_string()
        };
        let crash = self.outcomes[OutcomeKind::Crash as usize].load(Ordering::Relaxed);
        let soc = self.outcomes[OutcomeKind::Soc as usize].load(Ordering::Relaxed);
        let benign = self.outcomes[OutcomeKind::Benign as usize].load(Ordering::Relaxed);
        let pct = |n: u64| n as f64 * 100.0 / done.max(1) as f64;
        let label = self.label.lock().clone();
        let ctotal = self.campaigns_total.load(Ordering::Relaxed);
        let campaigns = if ctotal > 0 {
            format!("  {}/{} campaigns", self.campaigns_done.load(Ordering::Relaxed), ctotal)
        } else {
            String::new()
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r\x1b[2K[{label}] {done}/{total} trials{campaigns}  {rate:.0}/s  eta {eta}  \
             crash {c:.0}% soc {s:.0}% benign {b:.0}%",
            total = self.total,
            c = pct(crash),
            s = pct(soc),
            b = pct(benign),
        );
        let _ = err.flush();
    }

    /// Finish the progress line (newline) and print a completion summary.
    pub fn finish(&self) {
        if self.quiet {
            return;
        }
        let done = self.done();
        let secs = self.start.elapsed().as_secs_f64().max(1e-9);
        eprintln!(
            "\r\x1b[2K{done} trials in {secs:.2}s ({rate:.0} trials/s)",
            rate = done as f64 / secs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_progress_counts_without_printing() {
        let p = Progress::new(10, true);
        for i in 0..10u64 {
            p.record(match i % 3 {
                0 => OutcomeKind::Crash,
                1 => OutcomeKind::Soc,
                _ => OutcomeKind::Benign,
            });
        }
        assert_eq!(p.done(), 10);
        p.finish();
    }

    #[test]
    fn record_is_thread_safe() {
        let p = std::sync::Arc::new(Progress::new(4000, true));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    p.record(OutcomeKind::Benign);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.done(), 4000);
    }
}
