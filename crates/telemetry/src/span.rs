//! Phase-scoped span timers.
//!
//! Compile stages and FI passes wrap themselves in a [`Span`] guard; the
//! elapsed wall-clock time accumulates into a fixed per-[`Phase`] atomic
//! table that binaries can render as a time table ([`render_phase_table`])
//! or export inside a [`crate::MetricsSnapshot`].

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A named pipeline phase. Order defines table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Source → token stream.
    Lex = 0,
    /// Tokens → AST.
    Parse,
    /// AST → IR lowering + verification.
    LowerIr,
    /// IR optimization pipeline.
    Optimize,
    /// IR → machine lowering: instruction selection.
    Isel,
    /// Liveness + linear-scan register allocation.
    Regalloc,
    /// Frame finalization, peephole, branch fixup.
    Finalize,
    /// Encoding to the binary image.
    Emit,
    /// REFINE backend instrumentation pass.
    FiRefinePass,
    /// LLFI IR-level instrumentation pass.
    FiLlfiPass,
    /// PINFI probe setup / profiling instrumentation.
    FiPinfiProbe,
    /// Full artifact preparation for a campaign: compile + instrument +
    /// profiling run (a cache miss in the campaign engine).
    PrepareArtifact,
    /// Checkpoint-capturing profiling run (golden-run snapshot capture).
    CheckpointBuild,
    /// Per-trial checkpoint lookup + machine-state restore.
    CheckpointRestore,
    /// Superblock predecode + fusion of one prepared binary.
    SuperblockBuild,
}

/// All phases, in display order.
pub const PHASES: [Phase; 15] = [
    Phase::Lex,
    Phase::Parse,
    Phase::LowerIr,
    Phase::Optimize,
    Phase::Isel,
    Phase::Regalloc,
    Phase::Finalize,
    Phase::Emit,
    Phase::FiRefinePass,
    Phase::FiLlfiPass,
    Phase::FiPinfiProbe,
    Phase::PrepareArtifact,
    Phase::CheckpointBuild,
    Phase::CheckpointRestore,
    Phase::SuperblockBuild,
];

struct PhaseCell {
    total_ns: AtomicU64,
    calls: AtomicU64,
}

static PHASE_TABLE: [PhaseCell; PHASES.len()] = [const {
    PhaseCell {
        total_ns: AtomicU64::new(0),
        calls: AtomicU64::new(0),
    }
}; PHASES.len()];

impl Phase {
    /// Human-readable phase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::LowerIr => "lower-ir",
            Phase::Optimize => "optimize",
            Phase::Isel => "isel",
            Phase::Regalloc => "regalloc",
            Phase::Finalize => "finalize",
            Phase::Emit => "emit",
            Phase::FiRefinePass => "fi-refine-pass",
            Phase::FiLlfiPass => "fi-llfi-pass",
            Phase::FiPinfiProbe => "fi-pinfi-probe",
            Phase::PrepareArtifact => "prepare-artifact",
            Phase::CheckpointBuild => "checkpoint-build",
            Phase::CheckpointRestore => "checkpoint-restore",
            Phase::SuperblockBuild => "superblock-build",
        }
    }

    /// Add one timed call to this phase's accumulator.
    pub fn record_ns(self, ns: u64) {
        if !crate::enabled() {
            return;
        }
        let cell = &PHASE_TABLE[self as usize];
        cell.total_ns.fetch_add(ns, Ordering::Relaxed);
        cell.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every phase accumulator (phases with zero calls included).
    pub fn snapshot_all() -> PhasesSnapshot {
        PhasesSnapshot {
            phases: PHASES
                .iter()
                .map(|&p| {
                    let cell = &PHASE_TABLE[p as usize];
                    PhaseSnapshot {
                        name: p.name().to_string(),
                        calls: cell.calls.load(Ordering::Relaxed),
                        total_ns: cell.total_ns.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }

    /// Reset all phase accumulators (tests and repeated-compile tools).
    pub fn reset_all() {
        for cell in &PHASE_TABLE {
            cell.total_ns.store(0, Ordering::Relaxed);
            cell.calls.store(0, Ordering::Relaxed);
        }
    }
}

/// One phase's accumulated timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    /// Phase name.
    pub name: String,
    /// Number of spans recorded.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub total_ns: u64,
}

/// Snapshot of the whole phase table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasesSnapshot {
    /// Per-phase rows in display order.
    pub phases: Vec<PhaseSnapshot>,
}

impl PhasesSnapshot {
    /// Rows with at least one call.
    pub fn active(&self) -> impl Iterator<Item = &PhaseSnapshot> {
        self.phases.iter().filter(|p| p.calls > 0)
    }

    /// Total time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }
}

/// RAII guard accumulating elapsed wall-clock time into the global table
/// for one [`Phase`]. While telemetry is disabled the constructor skips
/// the clock read entirely.
#[must_use = "a Span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Span {
    /// Open a span for `phase`.
    #[inline]
    pub fn enter(phase: Phase) -> Span {
        Span {
            phase,
            start: crate::enabled().then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.phase
                .record_ns(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// A standalone stopwatch for callers that want the elapsed time of a
/// scope *and* the global phase accumulation — e.g. `minicc --times`
/// printing a one-shot table while experiments aggregate across modules.
pub struct PhaseTimer {
    phase: Phase,
    start: Instant,
}

impl PhaseTimer {
    /// Start timing `phase` (always times, independent of [`crate::enabled`]).
    pub fn start(phase: Phase) -> PhaseTimer {
        PhaseTimer {
            phase,
            start: Instant::now(),
        }
    }

    /// Stop, record into the global table, and return the elapsed time.
    pub fn stop(self) -> std::time::Duration {
        let elapsed = self.start.elapsed();
        self.phase
            .record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        elapsed
    }
}

/// Format `ns` adaptively (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

/// Render the active rows of a phase snapshot as an aligned text table.
pub fn render_phase_table(snap: &PhasesSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>12} {:>12}\n",
        "phase", "calls", "total", "mean"
    ));
    let total = snap.total_ns().max(1);
    for p in snap.active() {
        let mean = p.total_ns / p.calls.max(1);
        out.push_str(&format!(
            "{:<16} {:>8} {:>12} {:>12}   {:>5.1}%\n",
            p.name,
            p.calls,
            fmt_ns(p.total_ns),
            fmt_ns(mean),
            p.total_ns as f64 * 100.0 / total as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_phase_table() {
        let _g = crate::test_lock();
        crate::enable();
        Phase::reset_all();
        {
            let _s = Span::enter(Phase::Isel);
            std::hint::black_box(42);
        }
        {
            let _s = Span::enter(Phase::Isel);
        }
        let t = PhaseTimer::start(Phase::Regalloc);
        let d = t.stop();
        let snap = Phase::snapshot_all();
        let isel = snap.phases.iter().find(|p| p.name == "isel").unwrap();
        assert_eq!(isel.calls, 2);
        let ra = snap.phases.iter().find(|p| p.name == "regalloc").unwrap();
        assert_eq!(ra.calls, 1);
        assert!(ra.total_ns >= d.as_nanos() as u64 / 2);
        assert!(snap.active().count() >= 2);
        let table = render_phase_table(&snap);
        assert!(table.contains("isel"));
        assert!(table.contains("regalloc"));
        Phase::reset_all();
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = crate::test_lock();
        crate::disable();
        Phase::reset_all();
        {
            let _s = Span::enter(Phase::Emit);
        }
        let snap = Phase::snapshot_all();
        assert_eq!(snap.total_ns(), 0);
        crate::enable();
    }

    #[test]
    fn phases_snapshot_serde_round_trip() {
        let _g = crate::test_lock();
        let snap = PhasesSnapshot {
            phases: vec![PhaseSnapshot {
                name: "isel".into(),
                calls: 3,
                total_ns: 1234,
            }],
        };
        let text = serde::json::to_string(&snap);
        let back: PhasesSnapshot = serde::json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn fmt_ns_ranges() {
        let _g = crate::test_lock();
        assert_eq!(fmt_ns(500), "500 ns");
        assert!(fmt_ns(50_000).ends_with("µs"));
        assert!(fmt_ns(50_000_000).ends_with("ms"));
        assert!(fmt_ns(50_000_000_000).ends_with(" s"));
    }
}
