#![warn(missing_docs)]

//! `refine-pinfi` — the PINFI-style binary-level fault injector, the
//! paper's accuracy baseline.
//!
//! PINFI attaches a dynamic-binary-instrumentation probe (the PIN analogue
//! of `refine-machine`) to the *unmodified, fully optimized* binary:
//!
//! * the profiling run counts every dynamic instruction that writes at
//!   least one register — the same population predicate
//!   ([`refine_machine::fi_outputs`]) REFINE's backend pass uses, which is
//!   what makes the two tools statistically indistinguishable (Table 5);
//! * the injection run triggers at a uniformly drawn dynamic target, flips
//!   one uniformly drawn bit of one uniformly drawn output register, and
//!   then **detaches** — the performance optimization the authors added to
//!   PINFI (§5.2), after which the program runs at native speed;
//! * while attached, every instruction pays [`PIN_OVERHEAD_CYCLES`] extra
//!   cycles (PIN's JIT + analysis-routine cost).

pub mod opcode;

pub use opcode::{OpcodeFault, OpcodeInjector};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refine_core::FaultRecord;
use refine_machine::{fi_outputs, MInstr, Probe, ProbeAction};

/// Per-instruction overhead, in cycles, of the DBI engine while attached.
/// Calibrated so that the REFINE/PINFI campaign-time ratio lands in the
/// paper's observed band (~0.7–1.8x, 1.2x aggregate).
pub const PIN_OVERHEAD_CYCLES: u64 = 22;

/// Shared target predicate: instructions with at least one output register.
pub fn is_target(i: &MInstr) -> bool {
    !fi_outputs(i).is_empty()
}

/// Stable fingerprint of the PINFI attachment configuration for the
/// campaign engine's instrumented-artifact cache. PINFI has no compile-time
/// flags — the binary is the *uninstrumented* optimized program — so the
/// fingerprint covers the DBI parameters that shape trial behaviour.
pub fn config_fingerprint() -> u64 {
    refine_core::fnv1a_continue(
        refine_core::fnv1a(b"pinfi"),
        &PIN_OVERHEAD_CYCLES.to_le_bytes(),
    )
}

/// Profiling probe: counts the dynamic FI-target population.
#[derive(Debug, Default)]
pub struct PinfiProfiler {
    /// Dynamic count of target instructions.
    pub count: u64,
}

impl Probe for PinfiProfiler {
    fn before(&mut self, _pc: u32, instr: &MInstr, _retired: u64) -> ProbeAction {
        if is_target(instr) {
            self.count += 1;
        }
        ProbeAction::Continue
    }

    fn overhead_cycles(&self) -> u64 {
        PIN_OVERHEAD_CYCLES
    }

    fn fi_count(&self) -> u64 {
        self.count
    }
}

/// Injection probe: single bit flip at a chosen dynamic target instruction,
/// then detach.
#[derive(Debug)]
pub struct PinfiInjector {
    /// 1-based dynamic target index.
    pub target: u64,
    count: u64,
    rng: StdRng,
    /// Fault log entry, filled when the injection fires.
    pub log: Option<FaultRecord>,
}

impl PinfiInjector {
    /// Injector firing at dynamic target instruction `target` (1-based).
    pub fn new(target: u64, seed: u64) -> Self {
        PinfiInjector { target, count: 0, rng: StdRng::seed_from_u64(seed), log: None }
    }

    /// True once the fault was injected.
    pub fn fired(&self) -> bool {
        self.log.is_some()
    }

    /// An injector resuming after a checkpoint restore: behaves exactly as
    /// [`PinfiInjector::new`] would after `counted` quiescent target
    /// instructions, because the RNG is seeded fresh from `seed` and is
    /// consumed only when the fault fires.
    pub fn resume(target: u64, seed: u64, counted: u64) -> Self {
        debug_assert!(counted < target, "restore point must precede the target event");
        PinfiInjector { count: counted, ..PinfiInjector::new(target, seed) }
    }
}

impl Probe for PinfiInjector {
    fn before(&mut self, pc: u32, instr: &MInstr, _retired: u64) -> ProbeAction {
        if !is_target(instr) {
            return ProbeAction::Continue;
        }
        self.count += 1;
        if self.count != self.target {
            return ProbeAction::Continue;
        }
        let outs = fi_outputs(instr);
        let op = self.rng.gen_range(0..outs.len());
        let bit = self.rng.gen_range(0..outs[op].1.max(1));
        self.log = Some(FaultRecord {
            site: pc as u64,
            dynamic_index: self.count,
            operand: op as u32,
            bit,
        });
        ProbeAction::InjectAfter { op, bit, detach: true }
    }

    fn overhead_cycles(&self) -> u64 {
        PIN_OVERHEAD_CYCLES
    }

    fn fi_count(&self) -> u64 {
        self.count
    }

    fn fired(&self) -> bool {
        self.log.is_some()
    }
}

/// Replay a recorded PINFI fault exactly.
#[derive(Debug)]
pub struct PinfiReplay {
    record: FaultRecord,
    count: u64,
    /// True once the replayed fault fired.
    pub fired: bool,
}

impl PinfiReplay {
    /// Replay `record`.
    pub fn new(record: FaultRecord) -> Self {
        PinfiReplay { record, count: 0, fired: false }
    }
}

impl Probe for PinfiReplay {
    fn before(&mut self, _pc: u32, instr: &MInstr, _retired: u64) -> ProbeAction {
        if !is_target(instr) {
            return ProbeAction::Continue;
        }
        self.count += 1;
        if self.count != self.record.dynamic_index {
            return ProbeAction::Continue;
        }
        self.fired = true;
        ProbeAction::InjectAfter {
            op: self.record.operand as usize,
            bit: self.record.bit,
            detach: true,
        }
    }

    fn overhead_cycles(&self) -> u64 {
        PIN_OVERHEAD_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_core::FiOptions;
    use refine_ir::passes::OptLevel;
    use refine_machine::{Machine, NoFi, RunConfig, RunOutcome};

    fn binary() -> refine_machine::Binary {
        let m = refine_frontend::compile_source(
            "var acc;\n\
             fn main() {\n\
               for (i = 0; i < 200; i = i + 1) { acc = acc + i * i; }\n\
               print_i(acc);\n\
               return 0;\n\
             }",
        )
        .unwrap();
        refine_core::compile_with_fi(&m, OptLevel::O2, &FiOptions::default()).binary
    }

    #[test]
    fn profiler_counts_targets() {
        let b = binary();
        let mut p = PinfiProfiler::default();
        let r = Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut p));
        assert_eq!(r.outcome, RunOutcome::Exit(0));
        assert!(p.count > 500, "population too small: {}", p.count);
        assert!(p.count < r.instrs_retired, "targets are a subset of all instructions");
    }

    #[test]
    fn injection_fires_and_detaches() {
        let b = binary();
        let mut p = PinfiProfiler::default();
        let native = Machine::run(&b, &RunConfig::default(), &mut NoFi, None);
        Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut p));
        let total = p.count;

        // Early target -> most of the run executes detached (near-native).
        let mut early = PinfiInjector::new(5, 1);
        let r_early = Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut early));
        assert!(early.fired());
        // Late target -> almost the whole run pays DBI overhead.
        let mut late = PinfiInjector::new(total, 1);
        let r_late = Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut late));
        assert!(late.fired());
        assert!(r_early.cycles < r_late.cycles, "detach must save time");
        assert!(r_early.cycles < native.cycles * 3, "post-detach speed is native");
    }

    #[test]
    fn replay_reproduces_outcome() {
        let b = binary();
        let mut p = PinfiProfiler::default();
        Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut p));
        let total = p.count;
        for k in 1..8 {
            let mut inj = PinfiInjector::new(total * k / 8, 99 + k);
            let r1 = Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut inj));
            let Some(log) = inj.log else { continue };
            let mut rep = PinfiReplay::new(log);
            let r2 = Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut rep));
            assert!(rep.fired);
            assert_eq!(r1.outcome, r2.outcome);
            assert_eq!(r1.output, r2.output);
        }
    }

    /// Population identity with REFINE (DESIGN.md invariant 3): the PINFI
    /// profile of the clean binary equals REFINE's selInstr profile of the
    /// instrumented binary.
    #[test]
    fn population_identical_to_refine() {
        let m = refine_frontend::compile_source(
            "fvar g[8];\n\
             fn main() {\n\
               for (i = 0; i < 8; i = i + 1) { g[i] = sqrt(float(i)); }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 8; i = i + 1) { s = s + g[i]; }\n\
               print_f(s);\n\
               return 0;\n\
             }",
        )
        .unwrap();
        let plain = refine_core::compile_with_fi(&m, OptLevel::O2, &FiOptions::default());
        let inst = refine_core::compile_with_fi(&m, OptLevel::O2, &FiOptions::all());

        let mut pin = PinfiProfiler::default();
        Machine::run(&plain.binary, &RunConfig::default(), &mut NoFi, Some(&mut pin));
        let mut refine = refine_core::ProfilingRt::default();
        Machine::run(&inst.binary, &RunConfig::default(), &mut refine, None);
        assert_eq!(pin.count, refine.count);
    }
}
