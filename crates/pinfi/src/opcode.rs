//! Opcode corruption — the paper's §4.5 "future work" extension.
//!
//! REFINE (and our reproduction of it) can only flip bits in register
//! *values*: the compiler's emission stage refuses to assemble invalid
//! opcodes, so faults in the instruction encoding itself are out of its
//! reach. The paper sketches two remedies — corrupting the memory that
//! holds the opcodes, or relaxing the assembler's validity checks. A
//! binary-level tool has no such restriction: it can flip any bit of the
//! encoded instruction *before decode*.
//!
//! [`OpcodeInjector`] implements exactly that on the M64 binary: at the
//! target dynamic instruction it flips one uniformly drawn bit of the
//! 128-bit encoded form, re-decodes, and substitutes the result. An
//! undecodable word raises [`refine_machine::Trap::IllegalInstr`],
//! mirroring a real CPU's `#UD`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refine_machine::encode::{decode, encode};
use refine_machine::{MInstr, Probe, ProbeAction};

/// What a single opcode-bit flip produced.
#[derive(Debug, Clone, PartialEq)]
pub enum OpcodeFault {
    /// The corrupted word decodes to a different valid instruction, which
    /// was executed in place of the original.
    Mutated {
        /// Original instruction.
        from: MInstr,
        /// Instruction actually executed.
        to: MInstr,
    },
    /// The corrupted word does not decode: illegal instruction.
    Illegal,
    /// The flipped bit sits in an ignored field of the encoding: the word
    /// decodes to the identical instruction (a benign encoding fault).
    Unchanged,
}

/// A binary-level injector that corrupts the *encoding* of the target
/// dynamic instruction rather than its output registers.
#[derive(Debug)]
pub struct OpcodeInjector {
    /// 1-based dynamic target among instructions (every instruction
    /// counts — opcode faults are not limited to register-writers).
    pub target: u64,
    count: u64,
    rng: StdRng,
    /// The outcome of the flip, once fired.
    pub fault: Option<OpcodeFault>,
}

impl OpcodeInjector {
    /// New injector firing at dynamic instruction `target`.
    pub fn new(target: u64, seed: u64) -> Self {
        OpcodeInjector {
            target,
            count: 0,
            rng: StdRng::seed_from_u64(seed),
            fault: None,
        }
    }

    /// True once the fault was applied.
    pub fn fired(&self) -> bool {
        self.fault.is_some()
    }
}

impl Probe for OpcodeInjector {
    fn before(&mut self, _pc: u32, instr: &MInstr, _retired: u64) -> ProbeAction {
        self.count += 1;
        if self.count != self.target || self.fault.is_some() {
            return ProbeAction::Continue;
        }
        let (w0, w1) = encode(instr);
        let bit = self.rng.gen_range(0..128u32);
        let (c0, c1) = if bit < 64 { (w0 ^ (1 << bit), w1) } else { (w0, w1 ^ (1 << (bit - 64))) };
        match decode(c0, c1) {
            Ok(mutated) if mutated == *instr => {
                self.fault = Some(OpcodeFault::Unchanged);
                ProbeAction::Detach
            }
            Ok(mutated) => {
                self.fault = Some(OpcodeFault::Mutated { from: *instr, to: mutated });
                ProbeAction::Substitute { instr: mutated, detach: true }
            }
            Err(_) => {
                self.fault = Some(OpcodeFault::Illegal);
                ProbeAction::IllegalInstr
            }
        }
    }

    fn overhead_cycles(&self) -> u64 {
        crate::PIN_OVERHEAD_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_core::FiOptions;
    use refine_ir::passes::OptLevel;
    use refine_machine::{Machine, NoFi, RunConfig, RunOutcome, Trap};

    fn binary() -> refine_machine::Binary {
        let m = refine_frontend::compile_source(
            "fvar q[16];\n\
             fn main() {\n\
               for (i = 0; i < 16; i = i + 1) { q[i] = float(i) * 0.5 + 1.0; }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 16; i = i + 1) { s = s + q[i] * q[i]; }\n\
               print_f(s);\n\
               return 0;\n\
             }",
        )
        .unwrap();
        refine_core::compile_with_fi(&m, OptLevel::O2, &FiOptions::default()).binary
    }

    #[test]
    fn opcode_faults_fire_and_produce_both_kinds() {
        let b = binary();
        let native = Machine::run(&b, &RunConfig::default(), &mut NoFi, None);
        let total = native.instrs_retired;
        let (mut mutated, mut illegal) = (0, 0);
        for k in 0..120u64 {
            let target = 1 + (total * (k % 60) / 60);
            let mut inj = OpcodeInjector::new(target, k);
            let cfg = RunConfig { max_cycles: native.cycles * 12, stack_words: 1 << 16 };
            let r = Machine::run(&b, &cfg, &mut NoFi, Some(&mut inj));
            match &inj.fault {
                Some(OpcodeFault::Mutated { from, to }) => {
                    mutated += 1;
                    assert_ne!(from, to, "substitute must differ");
                }
                Some(OpcodeFault::Illegal) => {
                    illegal += 1;
                    assert_eq!(
                        r.outcome,
                        RunOutcome::Trap(Trap::IllegalInstr),
                        "illegal opcodes must trap"
                    );
                }
                Some(OpcodeFault::Unchanged) | None => {}
            }
        }
        assert!(mutated > 0, "no valid-opcode mutations observed");
        assert!(illegal > 0, "no illegal-opcode faults observed");
    }

    #[test]
    fn opcode_faults_are_deterministic() {
        let b = binary();
        let cfg = RunConfig::default();
        let mut a = OpcodeInjector::new(500, 9);
        let ra = Machine::run(&b, &cfg, &mut NoFi, Some(&mut a));
        let mut c = OpcodeInjector::new(500, 9);
        let rc = Machine::run(&b, &cfg, &mut NoFi, Some(&mut c));
        assert_eq!(a.fault, c.fault);
        assert_eq!(ra.outcome, rc.outcome);
    }
}
