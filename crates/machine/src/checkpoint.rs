//! Golden-run checkpointing and the predecoded quiescent fast path.
//!
//! A fault-injection trial is bit-identical to the fault-free profiling run
//! up to its dynamic injection index (the campaign engine's determinism
//! invariant): the injection RNG is consumed only when the fault fires, so
//! the *quiescent prefix* of every trial re-executes exactly the same
//! instruction stream the profiling run already executed. This module lets
//! the profiling run snapshot full machine state every K retired
//! instructions into an immutable [`CheckpointStore`] (shared across
//! workers alongside the instrumented binary in the artifact cache); trials
//! then restore the latest snapshot whose FI-event count is still below
//! their injection target and interpret only the suffix — O(N) per-trial
//! cost becomes O(N/K + suffix).
//!
//! Memory is captured as *dirty pages*: fixed-size word runs that differ
//! from the baseline image (the binary's data segment, an all-zero stack),
//! so restore cost is proportional to the state the program actually
//! touched, and clean pages are shared implicitly through the baseline.
//!
//! The companion [`Predecoded`] stream backs the monomorphized
//! "no-FI-until-index" interpreter loop (`Machine::run_quiescent_calls` /
//! `Machine::run_quiescent_probed`): per-pc instruction copies with their
//! cycle cost and PINFI-target flag precomputed, so the quiescent region
//! skips the `&mut dyn FiRuntime` virtual call and probe bookkeeping.

use crate::binary::Binary;
use crate::digest::{BaselineHashes, StateDigest};
use crate::isa::{fi_outputs, MInstr};
use crate::machine::OutEvent;

/// Dirty-page granularity in 8-byte words (512-byte pages).
pub const PAGE_WORDS: usize = 64;

/// A memory page (run of [`PAGE_WORDS`] words, the last page of a segment
/// may be shorter) that differs from the baseline image.
#[derive(Debug, Clone, PartialEq)]
pub struct DirtyPage {
    /// Page number within the segment (word offset / [`PAGE_WORDS`]).
    pub index: u32,
    /// The page's content at snapshot time.
    pub words: Box<[u64]>,
}

/// Diff a memory segment against its baseline (`None` = all zeros),
/// returning the pages that changed.
pub fn diff_pages(cur: &[u64], baseline: Option<&[u64]>) -> Vec<DirtyPage> {
    let mut out = Vec::new();
    for (i, chunk) in cur.chunks(PAGE_WORDS).enumerate() {
        let start = i * PAGE_WORDS;
        let clean = match baseline {
            Some(b) => chunk == &b[start..start + chunk.len()],
            None => chunk.iter().all(|&w| w == 0),
        };
        if !clean {
            out.push(DirtyPage { index: i as u32, words: chunk.into() });
        }
    }
    out
}

/// Overwrite `dst` with the captured pages (inverse of [`diff_pages`],
/// given that `dst` currently equals the baseline).
pub fn apply_pages(pages: &[DirtyPage], dst: &mut [u64]) {
    for p in pages {
        let start = p.index as usize * PAGE_WORDS;
        dst[start..start + p.words.len()].copy_from_slice(&p.words);
    }
}

/// A full architectural snapshot of one point of the profiling run,
/// restorable by [`crate::Machine::resume`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// General-purpose register file.
    pub regs: [u64; 16],
    /// Floating-point register file (raw bits).
    pub fregs: [u64; 16],
    /// FLAGS register.
    pub flags: u8,
    /// Program counter of the next instruction to execute.
    pub pc: u32,
    /// Simulated cycles consumed so far.
    pub cycles: u64,
    /// Dynamic instructions retired so far.
    pub retired: u64,
    /// FI population events counted so far (the `selInstr`/`injectFault`
    /// call count for REFINE/LLFI, the probed-target count for PINFI). A
    /// trial with injection target `t` may restore this snapshot iff
    /// `fi_count < t`.
    pub fi_count: u64,
    /// Output events emitted so far.
    pub output: Vec<OutEvent>,
    /// Data-segment pages differing from `binary.data`.
    pub data_pages: Vec<DirtyPage>,
    /// Stack pages differing from the all-zero initial stack.
    pub stack_pages: Vec<DirtyPage>,
    /// Incremental state digest at this boundary, stamped by
    /// [`CheckpointBuilder::push`]; trials compare against it at the same
    /// `(fi_count, pc)` point to detect golden convergence.
    pub digest: StateDigest,
}

impl Checkpoint {
    /// Words of captured page memory (diagnostics).
    pub fn memory_words(&self) -> usize {
        self.data_pages.iter().chain(&self.stack_pages).map(|p| p.words.len()).sum()
    }
}

/// Snapshot-capture knobs for [`crate::Machine::run_checkpointed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Snapshot every this many retired instructions.
    pub interval: u64,
    /// Snapshot count cap: reaching it drops every other snapshot and
    /// doubles the interval, bounding memory for long runs.
    pub max_checkpoints: usize,
    /// Data-segment word range `(start, count)` excluded from convergence
    /// digests — instrumentation scratch that a fired trial writes but the
    /// golden run never does, and that no golden-reachable pc ever reads
    /// before rewriting (see [`crate::BaselineHashes::exempt`]). `(0, 0)`
    /// exempts nothing.
    pub exempt_data_words: (u32, u32),
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig { interval: 2048, max_checkpoints: 128, exempt_data_words: (0, 0) }
    }
}

/// Accumulates snapshots during a profiling run, thinning when the cap is
/// hit; [`CheckpointBuilder::finish`] seals the immutable store.
#[derive(Debug)]
pub struct CheckpointBuilder {
    max: usize,
    interval: u64,
    checkpoints: Vec<Checkpoint>,
    baseline: BaselineHashes,
}

impl CheckpointBuilder {
    /// Empty builder with `cfg`'s interval and cap (both clamped to >= 1).
    /// `baseline` is the precomputed hash table of the run's initial
    /// memory image, used to stamp each snapshot's convergence digest.
    pub fn new(cfg: &CheckpointConfig, baseline: BaselineHashes) -> Self {
        CheckpointBuilder {
            max: cfg.max_checkpoints.max(1),
            interval: cfg.interval.max(1),
            checkpoints: Vec::new(),
            baseline,
        }
    }

    /// Should a snapshot be captured after `retired` instructions?
    #[inline]
    pub fn due(&self, retired: u64) -> bool {
        retired > 0 && retired.is_multiple_of(self.interval)
    }

    /// Record a snapshot. When the cap is reached, every other snapshot is
    /// dropped and the interval doubles; survivors (even multiples of the
    /// old interval) stay aligned to the new one, and `ck` itself is kept
    /// only if it is too.
    pub fn push(&mut self, mut ck: Checkpoint) {
        ck.digest = self.baseline.checkpoint_digest(
            &ck.regs,
            &ck.fregs,
            ck.flags,
            ck.pc,
            ck.fi_count,
            &ck.output,
            &ck.data_pages,
            &ck.stack_pages,
        );
        if self.checkpoints.len() >= self.max {
            let mut nth = 0usize;
            self.checkpoints.retain(|_| {
                nth += 1;
                nth.is_multiple_of(2)
            });
            self.interval *= 2;
            if !ck.retired.is_multiple_of(self.interval) {
                return;
            }
        }
        debug_assert!(
            self.checkpoints.last().is_none_or(|p| p.fi_count <= ck.fi_count),
            "FI-event counts must be monotone across snapshots"
        );
        self.checkpoints.push(ck);
    }

    /// Seal the store. `stack_words` records the stack geometry the
    /// profiling run used; restoring requires the same.
    pub fn finish(self, stack_words: usize) -> CheckpointStore {
        CheckpointStore {
            interval: self.interval,
            stack_words,
            checkpoints: self.checkpoints,
            baseline: self.baseline,
        }
    }
}

/// The immutable snapshot collection of one profiling run, held in the
/// artifact cache alongside the instrumented binary and shared (read-only)
/// by all campaign workers.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    /// Final snapshot interval (thinning may have raised the configured one).
    pub interval: u64,
    /// Stack size in words used by the profiling run.
    pub stack_words: usize,
    /// Snapshots in capture order (retired and `fi_count` both monotone).
    pub checkpoints: Vec<Checkpoint>,
    /// Baseline memory hashes shared by the snapshot digests; trials seed
    /// their incremental convergence hasher from these.
    pub baseline: BaselineHashes,
}

impl CheckpointStore {
    /// The latest checkpoint a trial targeting FI event `target` (1-based)
    /// may restore: its `fi_count` must still be strictly below `target`
    /// so the target event itself executes under the real injector.
    pub fn nearest_below(&self, target: u64) -> Option<&Checkpoint> {
        let n = self.checkpoints.partition_point(|c| c.fi_count < target);
        n.checked_sub(1).map(|i| &self.checkpoints[i])
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// True when no snapshots were captured (run shorter than one interval).
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Words of captured page memory across all snapshots (diagnostics).
    pub fn memory_words(&self) -> usize {
        self.checkpoints.iter().map(Checkpoint::memory_words).sum()
    }
}

/// One predecoded instruction slot: the instruction copy plus everything
/// the quiescent inner loop needs without re-deriving it per iteration.
#[derive(Debug, Clone, Copy)]
pub struct PredecodedEntry {
    /// The instruction at this pc.
    pub instr: MInstr,
    /// Its cycle cost ([`MInstr::cycles`]).
    pub cost: u64,
    /// Does PINFI count it (it has FI output operands)?
    pub is_target: bool,
}

/// A flattened, predecoded rendering of a binary's text section for the
/// quiescent fast path.
#[derive(Debug, Clone)]
pub struct Predecoded {
    entries: Vec<PredecodedEntry>,
}

impl Predecoded {
    /// Predecode `binary`'s text section.
    pub fn new(binary: &Binary) -> Self {
        let entries = binary
            .text
            .iter()
            .map(|i| PredecodedEntry {
                instr: *i,
                cost: i.cycles(),
                is_target: !fi_outputs(i).is_empty(),
            })
            .collect();
        Predecoded { entries }
    }

    /// The slot for `pc`, or `None` past the end of text (bad pc).
    #[inline]
    pub fn entry(&self, pc: u32) -> Option<&PredecodedEntry> {
        self.entries.get(pc as usize)
    }

    /// Number of instruction slots (== text length).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for an empty text section.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(retired: u64, fi_count: u64) -> Checkpoint {
        Checkpoint {
            regs: [0; 16],
            fregs: [0; 16],
            flags: 0,
            pc: 0,
            cycles: retired,
            retired,
            fi_count,
            output: Vec::new(),
            data_pages: Vec::new(),
            stack_pages: Vec::new(),
            digest: StateDigest::ZERO,
        }
    }

    fn builder(cfg: &CheckpointConfig) -> CheckpointBuilder {
        CheckpointBuilder::new(cfg, BaselineHashes::new(&[], 0, (0, 0)))
    }

    #[test]
    fn diff_and_apply_roundtrip() {
        let baseline: Vec<u64> = (0..200).collect();
        let mut cur = baseline.clone();
        cur[3] = 999; // page 0
        cur[130] = 7; // page 2
        cur[199] = 1; // page 3 (partial)
        let pages = diff_pages(&cur, Some(&baseline));
        assert_eq!(pages.iter().map(|p| p.index).collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(pages[2].words.len(), 200 - 3 * PAGE_WORDS);
        let mut restored = baseline.clone();
        apply_pages(&pages, &mut restored);
        assert_eq!(restored, cur);
    }

    #[test]
    fn zero_baseline_diffs_against_zeros() {
        let mut cur = vec![0u64; 3 * PAGE_WORDS];
        assert!(diff_pages(&cur, None).is_empty());
        cur[PAGE_WORDS] = 5;
        let pages = diff_pages(&cur, None);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].index, 1);
        let mut restored = vec![0u64; 3 * PAGE_WORDS];
        apply_pages(&pages, &mut restored);
        assert_eq!(restored, cur);
    }

    #[test]
    fn nearest_below_is_strict() {
        let mut b = builder(&CheckpointConfig { interval: 10, max_checkpoints: 64, ..Default::default() });
        for i in 1..=5u64 {
            b.push(ck(i * 10, i * 3)); // fi_counts 3, 6, 9, 12, 15
        }
        let store = b.finish(64);
        assert!(store.nearest_below(1).is_none());
        assert!(store.nearest_below(3).is_none(), "fi_count 3 is not < 3");
        assert_eq!(store.nearest_below(4).unwrap().fi_count, 3);
        assert_eq!(store.nearest_below(10).unwrap().fi_count, 9);
        assert_eq!(store.nearest_below(u64::MAX).unwrap().fi_count, 15);
    }

    #[test]
    fn builder_thins_and_doubles_on_cap() {
        let cfg = CheckpointConfig { interval: 10, max_checkpoints: 4, ..Default::default() };
        let mut b = builder(&cfg);
        let mut retired = 0;
        let mut pushed = 0u64;
        while pushed < 12 {
            retired += 10;
            if b.due(retired) {
                pushed += 1;
                b.push(ck(retired, retired / 10));
            }
        }
        let store = b.finish(64);
        assert!(store.len() <= cfg.max_checkpoints);
        assert!(store.interval > cfg.interval);
        for c in &store.checkpoints {
            assert!(c.retired.is_multiple_of(store.interval), "{} % {}", c.retired, store.interval);
        }
        // Still ordered and strictly usable for lookup.
        let counts: Vec<u64> = store.checkpoints.iter().map(|c| c.fi_count).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(counts, sorted);
    }

    #[test]
    fn due_respects_interval() {
        let b = builder(&CheckpointConfig { interval: 100, max_checkpoints: 8, ..Default::default() });
        assert!(!b.due(0));
        assert!(!b.due(99));
        assert!(b.due(100));
        assert!(b.due(700));
    }
}
