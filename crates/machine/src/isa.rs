//! The M64 instruction set architecture.

/// Number of bits in the FLAGS register (ZF, LT, UN, OF). This is the width
/// reported to `setupFI` for the flags operand of flag-writing instructions.
pub const FLAGS_BITS: u32 = 4;

/// FLAGS bit positions.
pub mod flags {
    /// Zero flag: result was zero / compare equal.
    pub const ZF: u8 = 1 << 0;
    /// Less-than flag (signed compare / float ordered-less).
    pub const LT: u8 = 1 << 1;
    /// Unordered flag: set by `fcmp` when either operand is NaN.
    pub const UN: u8 = 1 << 2;
    /// Signed-overflow flag (integer add/sub).
    pub const OF: u8 = 1 << 3;
}

/// Index of the stack pointer in the GPR file.
pub const SP: u8 = 15;
/// Index of the frame pointer in the GPR file.
pub const FP: u8 = 14;

/// An architectural register: general-purpose, floating-point, or FLAGS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// General-purpose register `r0..r15` (`r15` = sp, `r14` = fp).
    G(u8),
    /// Floating-point register `f0..f15`.
    F(u8),
    /// The 4-bit FLAGS register.
    Flags,
}

impl Reg {
    /// Bit width of the register for the fault model.
    pub fn bits(self) -> u32 {
        match self {
            Reg::Flags => FLAGS_BITS,
            _ => 64,
        }
    }

    /// Assembly name.
    pub fn name(self) -> String {
        match self {
            Reg::G(SP) => "sp".into(),
            Reg::G(FP) => "fp".into(),
            Reg::G(i) => format!("r{i}"),
            Reg::F(i) => format!("f{i}"),
            Reg::Flags => "flags".into(),
        }
    }
}

/// ABI description of M64 (x64-flavoured split of caller/callee saved).
pub mod abi {
    use super::Reg;

    /// GPRs used for the first integer/pointer arguments.
    pub const GPR_ARGS: [u8; 6] = [0, 1, 2, 3, 4, 5];
    /// FPRs used for the first floating arguments.
    pub const FPR_ARGS: [u8; 6] = [0, 1, 2, 3, 4, 5];
    /// Integer/pointer return register.
    pub const GPR_RET: u8 = 0;
    /// Floating return register.
    pub const FPR_RET: u8 = 0;
    /// Caller-saved (volatile) GPRs.
    pub const GPR_CALLER_SAVED: std::ops::Range<u8> = 0..9;
    /// Callee-saved GPRs (excluding fp/sp, which are managed by the
    /// prologue/epilogue).
    pub const GPR_CALLEE_SAVED: std::ops::Range<u8> = 9..14;
    /// Caller-saved (volatile) FPRs — like x64 SysV, *all* of them: no
    /// floating-point value survives a call in a register, which is why
    /// call-based (LLFI-style) instrumentation is so expensive for FP codes.
    pub const FPR_CALLER_SAVED: std::ops::Range<u8> = 0..16;
    /// Callee-saved FPRs (none, as on x64 SysV).
    pub const FPR_CALLEE_SAVED: std::ops::Range<u8> = 16..16;

    /// Is `r` clobbered by a call?
    pub fn is_caller_saved(r: Reg) -> bool {
        match r {
            Reg::G(i) => GPR_CALLER_SAVED.contains(&i),
            Reg::F(i) => FPR_CALLER_SAVED.contains(&i),
            Reg::Flags => true,
        }
    }
}

/// Integer ALU operations. All of them write FLAGS (like x64 arithmetic),
/// which doubles their FI output-operand count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed divide; `#DE` trap on zero divisor or `MIN/-1`.
    Div,
    /// Signed remainder; traps like [`AluOp::Div`].
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (amount masked to 6 bits).
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
}

/// Floating-point ALU operations (FLAGS untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (IEEE-754, no traps).
    Div,
    /// IEEE minimum.
    Min,
    /// IEEE maximum.
    Max,
}

/// Condition codes evaluated against FLAGS. Every code is false when the
/// unordered flag is set, which gives `fcmp` its ordered-comparison
/// semantics for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cc {
    /// Equal (ZF).
    E,
    /// Not equal.
    Ne,
    /// Signed / ordered less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl Cc {
    /// Evaluate against a FLAGS byte.
    pub fn eval(self, f: u8) -> bool {
        let zf = f & flags::ZF != 0;
        let lt = f & flags::LT != 0;
        let un = f & flags::UN != 0;
        if un {
            return false;
        }
        match self {
            Cc::E => zf,
            Cc::Ne => !zf,
            Cc::Lt => lt,
            Cc::Le => lt || zf,
            Cc::Gt => !lt && !zf,
            Cc::Ge => !lt,
        }
    }

    /// The code that is true exactly when `self` is false (on ordered input).
    pub fn negate(self) -> Cc {
        match self {
            Cc::E => Cc::Ne,
            Cc::Ne => Cc::E,
            Cc::Lt => Cc::Ge,
            Cc::Le => Cc::Gt,
            Cc::Gt => Cc::Le,
            Cc::Ge => Cc::Lt,
        }
    }
}

/// Conversions between register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CvtKind {
    /// Signed integer (GPR) to f64 (FPR).
    SiToF,
    /// f64 (FPR) to signed integer (GPR), truncating.
    FToSi,
    /// Raw bit move GPR -> FPR.
    BitsToF,
    /// Raw bit move FPR -> GPR.
    FToBits,
}

/// A memory addressing mode: `[base + index*scale + disp]`, every component
/// optional. Instruction selection folds IR `getelementptr` chains into
/// this, which is precisely the address arithmetic IR-level FI cannot see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Base register (GPR), or `None` for absolute addressing.
    pub base: Option<u8>,
    /// Optional scaled index: `(gpr, scale)`.
    pub index: Option<(u8, u8)>,
    /// Constant byte displacement.
    pub disp: i64,
}

impl Mem {
    /// Absolute address.
    pub fn abs(disp: i64) -> Mem {
        Mem { base: None, index: None, disp }
    }

    /// `[base + disp]`.
    pub fn base_disp(base: u8, disp: i64) -> Mem {
        Mem { base: Some(base), index: None, disp }
    }

    /// Assembly rendering.
    pub fn asm(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(b) = self.base {
            parts.push(Reg::G(b).name());
        }
        if let Some((i, s)) = self.index {
            parts.push(format!("{}*{}", Reg::G(i).name(), s));
        }
        if self.disp != 0 || parts.is_empty() {
            parts.push(format!("{}", self.disp));
        }
        format!("[{}]", parts.join(" + "))
    }
}

/// Runtime (library) calls. `PrintStr`'s operand and the FI hooks' static
/// site data ride in the instruction immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtFunc {
    /// Print `r0` as a 64-bit integer.
    PrintI64,
    /// Print `f0`.
    PrintF64,
    /// Print string literal `imm`.
    PrintStr,
    /// `f0 = sqrt(f0)`.
    Sqrt,
    /// `f0 = fabs(f0)`.
    Fabs,
    /// `f0 = exp(f0)`.
    Exp,
    /// `f0 = log(f0)`.
    Log,
    /// `f0 = sin(f0)`.
    Sin,
    /// `f0 = cos(f0)`.
    Cos,
    /// `f0 = floor(f0)`.
    Floor,
    /// `f0 = pow(f0, f1)`.
    Pow,
    /// `f0 = fmin(f0, f1)`.
    Fmin,
    /// `f0 = fmax(f0, f1)`.
    Fmax,
    /// REFINE FI library: `r0 = selInstr(site=imm)` (1 = inject now).
    FiSelInstr,
    /// REFINE FI library: `r0 = setupFI(nops/sizes packed in imm)`;
    /// returns `op | bit << 8`.
    FiSetupFi,
    /// LLFI runtime: `r0 = injectFault(site, r0, bits)`; site and the value
    /// width in bits are packed in the immediate (`site | bits << 48`).
    LlfiInjectI,
    /// LLFI runtime: `f0 = injectFault(site, f0, bits)`.
    LlfiInjectF,
}

impl RtFunc {
    /// The register holding the call's result, if any.
    pub fn result_reg(self) -> Option<Reg> {
        match self {
            RtFunc::PrintI64 | RtFunc::PrintF64 | RtFunc::PrintStr => None,
            RtFunc::FiSelInstr | RtFunc::FiSetupFi | RtFunc::LlfiInjectI => Some(Reg::G(0)),
            _ => Some(Reg::F(0)),
        }
    }

    /// True for the fault-injection control library entry points. These are
    /// modelled as register-preserving assembly stubs (only the result
    /// register is written), while ordinary runtime calls follow the full
    /// C ABI and clobber caller-saved registers.
    pub fn is_fi_hook(self) -> bool {
        matches!(
            self,
            RtFunc::FiSelInstr | RtFunc::FiSetupFi | RtFunc::LlfiInjectI | RtFunc::LlfiInjectF
        )
    }

    /// Extra cycle cost of servicing the call (on top of the call itself).
    pub fn cycles(self) -> u64 {
        match self {
            RtFunc::PrintI64 | RtFunc::PrintF64 | RtFunc::PrintStr => 40,
            RtFunc::Sqrt | RtFunc::Fabs | RtFunc::Fmin | RtFunc::Fmax | RtFunc::Floor => 8,
            RtFunc::Exp | RtFunc::Log | RtFunc::Sin | RtFunc::Cos | RtFunc::Pow => 25,
            // The REFINE library's selInstr is a counter increment + compare.
            RtFunc::FiSelInstr => 3,
            RtFunc::FiSetupFi => 8,
            // LLFI's injectFault is a full compiled C function with six
            // arguments, its own prologue/epilogue, a TLS dynamic-instruction
            // counter, fault-configuration checks and trace bookkeeping (see
            // the paper's Listing 2a) — runtime-call costs here stand for the
            // *callee's* execution, and this one is tens of instructions,
            // unlike REFINE's hand-written selInstr stub.
            RtFunc::LlfiInjectI | RtFunc::LlfiInjectF => 90,
        }
    }

    /// Symbolic name for disassembly.
    pub fn name(self) -> &'static str {
        match self {
            RtFunc::PrintI64 => "print_i64",
            RtFunc::PrintF64 => "print_f64",
            RtFunc::PrintStr => "print_str",
            RtFunc::Sqrt => "sqrt",
            RtFunc::Fabs => "fabs",
            RtFunc::Exp => "exp",
            RtFunc::Log => "log",
            RtFunc::Sin => "sin",
            RtFunc::Cos => "cos",
            RtFunc::Floor => "floor",
            RtFunc::Pow => "pow",
            RtFunc::Fmin => "fmin",
            RtFunc::Fmax => "fmax",
            RtFunc::FiSelInstr => "selInstr",
            RtFunc::FiSetupFi => "setupFI",
            RtFunc::LlfiInjectI => "injectFaultI",
            RtFunc::LlfiInjectF => "injectFaultF",
        }
    }
}

/// One machine instruction (final, physical-register form). `target` fields
/// are instruction indices into the text section.
///
/// Operand fields follow the standard naming convention (`rd`/`fd` =
/// destination register, `ra`/`rb`/`fa`/`fb` = sources, `imm` = immediate,
/// `mem` = addressing mode) and are not documented individually.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MInstr {
    /// `rd = ra` (GPR move; FLAGS untouched, like x64 `mov`).
    MovRR { rd: u8, ra: u8 },
    /// `rd = imm`.
    MovRI { rd: u8, imm: i64 },
    /// `fd = fa`.
    FMovRR { fd: u8, fa: u8 },
    /// `fd = bits(imm)`.
    FMovRI { fd: u8, imm: u64 },
    /// `rd = ra <op> rb`, FLAGS updated.
    Alu { op: AluOp, rd: u8, ra: u8, rb: u8 },
    /// `rd = ra <op> imm`, FLAGS updated.
    AluI { op: AluOp, rd: u8, ra: u8, imm: i64 },
    /// Compare `ra` with `rb` (FLAGS only).
    Cmp { ra: u8, rb: u8 },
    /// Compare `ra` with `imm` (FLAGS only).
    CmpI { ra: u8, imm: i64 },
    /// `rd = cc(FLAGS) ? 1 : 0` (FLAGS preserved).
    SetCc { cc: Cc, rd: u8 },
    /// `fd = fa <op> fb`.
    FAlu { op: FAluOp, fd: u8, fa: u8, fb: u8 },
    /// Ordered compare of `fa` and `fb` into FLAGS (UN set on NaN).
    FCmp { fa: u8, fb: u8 },
    /// Conversion between register files.
    Cvt { kind: CvtKind, dst: u8, src: u8 },
    /// GPR load: `rd = mem64[addr]`.
    Ld { rd: u8, mem: Mem },
    /// GPR store: `mem64[addr] = rs`.
    St { rs: u8, mem: Mem },
    /// FPR load.
    FLd { fd: u8, mem: Mem },
    /// FPR store.
    FSt { fs: u8, mem: Mem },
    /// Push GPR (sp -= 8; mem[sp] = rs).
    Push { rs: u8 },
    /// Pop GPR (rd = mem[sp]; sp += 8).
    Pop { rd: u8 },
    /// Unconditional jump to instruction index.
    Jmp { target: u32 },
    /// Conditional jump.
    Jcc { cc: Cc, target: u32 },
    /// Direct call: pushes the return instruction index, jumps.
    Call { target: u32 },
    /// Return: pops the return index into the PC; traps on a bad address.
    Ret,
    /// Runtime (library) call.
    CallRt { func: RtFunc, imm: u64 },
    /// `rd = FLAGS` (zero-extended), like `lahf`.
    RdFlags { rd: u8 },
    /// `FLAGS = rd & 0xf`, like `sahf`.
    WrFlags { rs: u8 },
    /// Flip bits of a FPR with a mask (REFINE's FI block for FPR operands;
    /// x64 would use `xorpd`).
    FXorI { fd: u8, imm: u64 },
    /// Stop the machine with exit code in `r0`.
    Halt,
    /// No operation (alignment/padding).
    Nop,
    /// `rd = effective address of mem` (no memory access, FLAGS untouched),
    /// like x64 `lea`. Used for frame addresses and folded pointer math.
    Lea { rd: u8, mem: Mem },
}

impl MInstr {
    /// Base cycle cost of the instruction (runtime calls add
    /// [`RtFunc::cycles`]).
    pub fn cycles(&self) -> u64 {
        match self {
            MInstr::MovRR { .. }
            | MInstr::MovRI { .. }
            | MInstr::FMovRR { .. }
            | MInstr::FMovRI { .. }
            | MInstr::SetCc { .. }
            | MInstr::Cmp { .. }
            | MInstr::CmpI { .. }
            | MInstr::FCmp { .. }
            | MInstr::Cvt { .. }
            | MInstr::RdFlags { .. }
            | MInstr::WrFlags { .. }
            | MInstr::FXorI { .. }
            | MInstr::Jmp { .. }
            | MInstr::Jcc { .. }
            | MInstr::Halt
            | MInstr::Lea { .. }
            | MInstr::Nop => 1,
            MInstr::Alu { op, .. } | MInstr::AluI { op, .. } => match op {
                AluOp::Mul => 3,
                AluOp::Div | AluOp::Rem => 20,
                _ => 1,
            },
            MInstr::FAlu { op, .. } => match op {
                FAluOp::Div => 20,
                _ => 2,
            },
            MInstr::Ld { .. } | MInstr::St { .. } | MInstr::FLd { .. } | MInstr::FSt { .. } => 2,
            MInstr::Push { .. } | MInstr::Pop { .. } => 2,
            MInstr::Call { .. } | MInstr::Ret => 2,
            MInstr::CallRt { func, .. } => 2 + func.cycles(),
        }
    }

    /// True for instructions that touch the stack implicitly (the paper's
    /// `stack` instruction class for `-fi-instrs`).
    pub fn is_stack_class(&self) -> bool {
        match self {
            MInstr::Push { .. } | MInstr::Pop { .. } => true,
            MInstr::Alu { rd, .. } | MInstr::AluI { rd, .. } => *rd == SP || *rd == FP,
            MInstr::MovRR { rd, .. } | MInstr::MovRI { rd, .. } => *rd == SP || *rd == FP,
            MInstr::Lea { rd, .. } => *rd == SP || *rd == FP,
            _ => false,
        }
    }

    /// True for explicit memory traffic (the `mem` class).
    pub fn is_mem_class(&self) -> bool {
        matches!(
            self,
            MInstr::Ld { .. } | MInstr::St { .. } | MInstr::FLd { .. } | MInstr::FSt { .. }
        )
    }

    /// True for arithmetic (the `arithm` class).
    pub fn is_arith_class(&self) -> bool {
        matches!(
            self,
            MInstr::Alu { .. }
                | MInstr::AluI { .. }
                | MInstr::FAlu { .. }
                | MInstr::Cmp { .. }
                | MInstr::CmpI { .. }
                | MInstr::FCmp { .. }
                | MInstr::Cvt { .. }
                | MInstr::SetCc { .. }
        ) && !self.is_stack_class()
    }

    /// The bare opcode mnemonic (the first token of [`MInstr::asm`]),
    /// used to label injection sites in per-trial trace records.
    pub fn mnemonic(&self) -> String {
        let asm = self.asm();
        asm.split_whitespace().next().unwrap_or("?").to_string()
    }

    /// Short mnemonic + operands for disassembly listings.
    pub fn asm(&self) -> String {
        fn g(i: u8) -> String {
            Reg::G(i).name()
        }
        fn f(i: u8) -> String {
            Reg::F(i).name()
        }
        match self {
            MInstr::MovRR { rd, ra } => format!("mov {}, {}", g(*rd), g(*ra)),
            MInstr::MovRI { rd, imm } => format!("mov {}, {}", g(*rd), imm),
            MInstr::FMovRR { fd, fa } => format!("fmov {}, {}", f(*fd), f(*fa)),
            MInstr::FMovRI { fd, imm } => {
                format!("fmov {}, {:?}", f(*fd), f64::from_bits(*imm))
            }
            MInstr::Alu { op, rd, ra, rb } => {
                format!("{:?} {}, {}, {}", op, g(*rd), g(*ra), g(*rb)).to_lowercase()
            }
            MInstr::AluI { op, rd, ra, imm } => {
                format!("{:?} {}, {}, {}", op, g(*rd), g(*ra), imm).to_lowercase()
            }
            MInstr::Cmp { ra, rb } => format!("cmp {}, {}", g(*ra), g(*rb)),
            MInstr::CmpI { ra, imm } => format!("cmp {}, {}", g(*ra), imm),
            MInstr::SetCc { cc, rd } => format!("set{:?} {}", cc, g(*rd)).to_lowercase(),
            MInstr::FAlu { op, fd, fa, fb } => {
                format!("f{:?} {}, {}, {}", op, f(*fd), f(*fa), f(*fb)).to_lowercase()
            }
            MInstr::FCmp { fa, fb } => format!("fcmp {}, {}", f(*fa), f(*fb)),
            MInstr::Cvt { kind, dst, src } => match kind {
                CvtKind::SiToF => format!("cvtsi2sd {}, {}", f(*dst), g(*src)),
                CvtKind::FToSi => format!("cvttsd2si {}, {}", g(*dst), f(*src)),
                CvtKind::BitsToF => format!("movq {}, {}", f(*dst), g(*src)),
                CvtKind::FToBits => format!("movq {}, {}", g(*dst), f(*src)),
            },
            MInstr::Ld { rd, mem } => format!("mov {}, qword ptr {}", g(*rd), mem.asm()),
            MInstr::St { rs, mem } => format!("mov qword ptr {}, {}", mem.asm(), g(*rs)),
            MInstr::FLd { fd, mem } => format!("movsd {}, qword ptr {}", f(*fd), mem.asm()),
            MInstr::FSt { fs, mem } => format!("movsd qword ptr {}, {}", mem.asm(), f(*fs)),
            MInstr::Push { rs } => format!("push {}", g(*rs)),
            MInstr::Pop { rd } => format!("pop {}", g(*rd)),
            MInstr::Jmp { target } => format!("jmp .L{target}"),
            MInstr::Jcc { cc, target } => format!("j{:?} .L{target}", cc).to_lowercase(),
            MInstr::Call { target } => format!("call .L{target}"),
            MInstr::Ret => "ret".into(),
            MInstr::CallRt { func, .. } => format!("call _{}", func.name()),
            MInstr::RdFlags { rd } => format!("rdflags {}", g(*rd)),
            MInstr::WrFlags { rs } => format!("wrflags {}", g(*rs)),
            MInstr::FXorI { fd, imm } => format!("xorpd {}, {:#x}", f(*fd), imm),
            MInstr::Halt => "halt".into(),
            MInstr::Nop => "nop".into(),
            MInstr::Lea { rd, mem } => format!("lea {}, {}", g(*rd), mem.asm()),
        }
    }
}

/// The FI target population predicate shared by REFINE's backend pass, the
/// PINFI probe, and both profilers: the output operands (registers written)
/// of one machine instruction, with their bit widths.
///
/// Keeping this in one place is what guarantees — by construction — that
/// REFINE and PINFI sample the *same* dynamic instruction population, the
/// property behind the paper's Table 5 (REFINE is never significantly
/// different from PINFI).
pub fn fi_outputs(i: &MInstr) -> Vec<(Reg, u32)> {
    let mut out = Vec::with_capacity(2);
    match i {
        MInstr::MovRR { rd, .. } | MInstr::MovRI { rd, .. } => out.push((Reg::G(*rd), 64)),
        MInstr::FMovRR { fd, .. } | MInstr::FMovRI { fd, .. } => out.push((Reg::F(*fd), 64)),
        MInstr::Alu { rd, .. } | MInstr::AluI { rd, .. } => {
            out.push((Reg::G(*rd), 64));
            out.push((Reg::Flags, FLAGS_BITS));
        }
        MInstr::Cmp { .. } | MInstr::CmpI { .. } | MInstr::FCmp { .. } => {
            out.push((Reg::Flags, FLAGS_BITS));
        }
        MInstr::SetCc { rd, .. } => out.push((Reg::G(*rd), 64)),
        MInstr::FAlu { fd, .. } => out.push((Reg::F(*fd), 64)),
        MInstr::Cvt { kind, dst, .. } => match kind {
            CvtKind::SiToF | CvtKind::BitsToF => out.push((Reg::F(*dst), 64)),
            CvtKind::FToSi | CvtKind::FToBits => out.push((Reg::G(*dst), 64)),
        },
        MInstr::Ld { rd, .. } => out.push((Reg::G(*rd), 64)),
        MInstr::FLd { fd, .. } => out.push((Reg::F(*fd), 64)),
        // Stores write no register: not FI targets under a destination-
        // register fault model (same choice as PINFI).
        MInstr::St { .. } | MInstr::FSt { .. } => {}
        MInstr::Push { .. } => out.push((Reg::G(SP), 64)),
        MInstr::Pop { rd } => {
            out.push((Reg::G(*rd), 64));
            out.push((Reg::G(SP), 64));
        }
        // Control transfers are not targets under the destination-register
        // fault model (PINFI likewise only instruments instructions that
        // write destination registers) — and compiler-side instrumentation
        // cannot insert code "after" a ret. Excluding them here keeps the
        // REFINE and PINFI populations identical by construction.
        MInstr::Call { .. } | MInstr::Ret => {}
        MInstr::CallRt { func, .. } => {
            if let Some(r) = func.result_reg() {
                // The FI control library itself is never a fault target.
                if !func.is_fi_hook() {
                    out.push((r, 64));
                }
            }
        }
        MInstr::RdFlags { rd } => out.push((Reg::G(*rd), 64)),
        MInstr::WrFlags { .. } => out.push((Reg::Flags, FLAGS_BITS)),
        MInstr::FXorI { fd, .. } => out.push((Reg::F(*fd), 64)),
        MInstr::Jmp { .. } | MInstr::Jcc { .. } | MInstr::Halt | MInstr::Nop => {}
        MInstr::Lea { rd, .. } => out.push((Reg::G(*rd), 64)),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_eval_ordered() {
        let eq = flags::ZF;
        let lt = flags::LT;
        let gt = 0u8;
        assert!(Cc::E.eval(eq) && !Cc::E.eval(lt) && !Cc::E.eval(gt));
        assert!(Cc::Lt.eval(lt) && !Cc::Lt.eval(eq));
        assert!(Cc::Le.eval(lt) && Cc::Le.eval(eq) && !Cc::Le.eval(gt));
        assert!(Cc::Gt.eval(gt) && !Cc::Gt.eval(eq));
        assert!(Cc::Ge.eval(gt) && Cc::Ge.eval(eq) && !Cc::Ge.eval(lt));
        assert!(Cc::Ne.eval(lt) && !Cc::Ne.eval(eq));
    }

    #[test]
    fn cc_unordered_always_false() {
        let un = flags::UN;
        for cc in [Cc::E, Cc::Ne, Cc::Lt, Cc::Le, Cc::Gt, Cc::Ge] {
            assert!(!cc.eval(un), "{cc:?} must be false on unordered");
        }
    }

    #[test]
    fn cc_negation() {
        for cc in [Cc::E, Cc::Ne, Cc::Lt, Cc::Le, Cc::Gt, Cc::Ge] {
            for f in [flags::ZF, flags::LT, 0u8] {
                assert_ne!(cc.eval(f), cc.negate().eval(f), "{cc:?} on {f:#x}");
            }
        }
    }

    #[test]
    fn alu_has_two_fi_outputs() {
        let i = MInstr::Alu { op: AluOp::Add, rd: 3, ra: 1, rb: 2 };
        let outs = fi_outputs(&i);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0], (Reg::G(3), 64));
        assert_eq!(outs[1], (Reg::Flags, FLAGS_BITS));
    }

    #[test]
    fn stores_and_branches_are_not_targets() {
        assert!(fi_outputs(&MInstr::St { rs: 1, mem: Mem::abs(0) }).is_empty());
        assert!(fi_outputs(&MInstr::Jmp { target: 0 }).is_empty());
        assert!(fi_outputs(&MInstr::Jcc { cc: Cc::E, target: 0 }).is_empty());
    }

    #[test]
    fn fi_hooks_are_not_targets() {
        let i = MInstr::CallRt { func: RtFunc::FiSelInstr, imm: 0 };
        assert!(fi_outputs(&i).is_empty());
        let j = MInstr::CallRt { func: RtFunc::Sqrt, imm: 0 };
        assert_eq!(fi_outputs(&j), vec![(Reg::F(0), 64)]);
    }

    #[test]
    fn instruction_classes() {
        assert!(MInstr::Push { rs: 1 }.is_stack_class());
        assert!(MInstr::AluI { op: AluOp::Sub, rd: SP, ra: SP, imm: 32 }.is_stack_class());
        assert!(MInstr::Ld { rd: 0, mem: Mem::abs(8) }.is_mem_class());
        assert!(MInstr::FAlu { op: FAluOp::Mul, fd: 0, fa: 1, fb: 2 }.is_arith_class());
        assert!(!MInstr::AluI { op: AluOp::Sub, rd: SP, ra: SP, imm: 32 }.is_arith_class());
    }

    #[test]
    fn cycle_costs_ordered_sensibly() {
        let add = MInstr::Alu { op: AluOp::Add, rd: 0, ra: 0, rb: 1 }.cycles();
        let div = MInstr::Alu { op: AluOp::Div, rd: 0, ra: 0, rb: 1 }.cycles();
        let ld = MInstr::Ld { rd: 0, mem: Mem::abs(0) }.cycles();
        assert!(add < ld && ld < div);
    }

    #[test]
    fn mem_asm_rendering() {
        assert_eq!(Mem::abs(64).asm(), "[64]");
        assert_eq!(Mem::base_disp(FP, -8).asm(), "[fp + -8]");
        let m = Mem { base: Some(1), index: Some((2, 8)), disp: 16 };
        assert_eq!(m.asm(), "[r1 + r2*8 + 16]");
    }
}
