//! The fault-injection control library interface.
//!
//! This is the Rust rendering of the paper's "user-provided library" (§4.2.4):
//! two entry points, `selInstr` and `setupFI`, called from instrumented code,
//! plus the LLFI-style `injectFault` used by the IR-level baseline. Concrete
//! implementations (profiling counters, single-bit-flip injectors) live in
//! `refine-core` and `refine-llfi`; the machine only dispatches.

/// Runtime control of fault injection, invoked by instrumented binaries.
pub trait FiRuntime {
    /// REFINE PreFI hook: called after each instrumented instruction
    /// executes; return `true` to trigger fault injection at this dynamic
    /// instruction.
    fn sel_instr(&mut self, site: u64) -> bool;

    /// REFINE SetupFI hook: given the instrumented instruction's output
    /// operand count and their bit sizes, choose `(operand, bit)` to flip.
    fn setup_fi(&mut self, nops: u32, sizes: &[u32]) -> (u32, u32);

    /// LLFI hook: possibly flip a bit of `value` (an IR result of width
    /// `bits`), counting this dynamic IR instruction. Returns the value to
    /// substitute.
    fn llfi_inject(&mut self, site: u64, value: u64, bits: u32) -> u64;

    /// Number of FI population events this runtime has counted so far.
    /// Checkpointed profiling stamps snapshots with this value; runtimes
    /// that keep no counter report 0.
    fn fi_count(&self) -> u64 {
        0
    }

    /// Has this runtime injected its fault yet? Drives the fired-fault
    /// handoff of [`crate::Machine::run_exact_until_fired`]; runtimes that
    /// never fire report `false`.
    fn fired(&self) -> bool {
        false
    }
}

/// The counting-only runtime of the checkpoint fast path: semantically
/// identical to the profiling library (count every event, never fire), but
/// a concrete type so [`crate::Machine::run_quiescent_calls`]
/// monomorphizes the hook dispatch away.
#[derive(Debug, Default, Clone, Copy)]
pub struct QuiescentRt {
    /// FI population events counted so far.
    pub count: u64,
}

impl QuiescentRt {
    /// A quiescent runtime resuming from a checkpoint's event count.
    pub fn starting_at(count: u64) -> Self {
        QuiescentRt { count }
    }
}

impl FiRuntime for QuiescentRt {
    fn sel_instr(&mut self, _site: u64) -> bool {
        self.count += 1;
        false
    }

    fn setup_fi(&mut self, _nops: u32, _sizes: &[u32]) -> (u32, u32) {
        // Unreachable in practice: instrumentation only calls setupFI when
        // selInstr returned true.
        (0, 0)
    }

    fn llfi_inject(&mut self, _site: u64, value: u64, _bits: u32) -> u64 {
        self.count += 1;
        value
    }

    fn fi_count(&self) -> u64 {
        self.count
    }
}

/// A no-op runtime for running uninstrumented binaries.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFi;

impl FiRuntime for NoFi {
    fn sel_instr(&mut self, _site: u64) -> bool {
        false
    }

    fn setup_fi(&mut self, _nops: u32, _sizes: &[u32]) -> (u32, u32) {
        (0, 0)
    }

    fn llfi_inject(&mut self, _site: u64, value: u64, _bits: u32) -> u64 {
        value
    }
}

/// Packing helpers for the `setupFI` immediate: REFINE's backend pass knows
/// the operand count and bit sizes statically, so it encodes them into the
/// `CallRt` immediate — `nops | size0 << 8 | size1 << 16 | ...`.
pub mod pack {
    /// Pack up to 4 operand sizes with the count.
    pub fn setup_imm(sizes: &[u32]) -> u64 {
        assert!(sizes.len() <= 4, "at most 4 FI operands per instruction");
        let mut imm = sizes.len() as u64;
        for (i, s) in sizes.iter().enumerate() {
            assert!(*s <= 64);
            imm |= (*s as u64) << (8 * (i + 1));
        }
        imm
    }

    /// Unpack `(nops, sizes)` from a `setupFI` immediate.
    pub fn setup_unpack(imm: u64) -> (u32, [u32; 4]) {
        let nops = (imm & 0xff) as u32;
        let mut sizes = [0u32; 4];
        for (i, s) in sizes.iter_mut().enumerate() {
            *s = ((imm >> (8 * (i + 1))) & 0xff) as u32;
        }
        (nops, sizes)
    }

    /// Pack an LLFI site id and value width.
    pub fn llfi_imm(site: u64, bits: u32) -> u64 {
        assert!(site < (1 << 48));
        site | (bits as u64) << 48
    }

    /// Unpack an LLFI immediate to `(site, bits)`.
    pub fn llfi_unpack(imm: u64) -> (u64, u32) {
        (imm & ((1 << 48) - 1), (imm >> 48) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofi_never_triggers() {
        let mut rt = NoFi;
        assert!(!rt.sel_instr(0));
        assert_eq!(rt.llfi_inject(1, 42, 64), 42);
    }

    #[test]
    fn setup_imm_roundtrip() {
        let imm = pack::setup_imm(&[64, 4]);
        let (n, sizes) = pack::setup_unpack(imm);
        assert_eq!(n, 2);
        assert_eq!(&sizes[..2], &[64, 4]);
    }

    #[test]
    fn llfi_imm_roundtrip() {
        let imm = pack::llfi_imm(123_456, 64);
        assert_eq!(pack::llfi_unpack(imm), (123_456, 64));
        let imm = pack::llfi_imm(7, 1);
        assert_eq!(pack::llfi_unpack(imm), (7, 1));
    }
}
