//! The M64 execution engine.

use crate::binary::Binary;
use crate::checkpoint::{
    apply_pages, diff_pages, Checkpoint, CheckpointBuilder, CheckpointConfig, CheckpointStore,
    Predecoded, PAGE_WORDS,
};
use crate::digest::{BaselineHashes, ConvHasher, StateDigest};
use crate::isa::{fi_outputs, flags, AluOp, CvtKind, FAluOp, MInstr, Mem, Reg, RtFunc, SP};
use crate::probe::{Probe, ProbeAction};
use crate::rt::{pack, FiRuntime, NoFi, QuiescentRt};

/// Byte address where the data segment (globals) is mapped. Matches the IR
/// interpreter's layout so pointer arithmetic behaves identically.
pub const GLOBAL_BASE: u64 = 0x0001_0000;
/// Byte address one past the top of the stack; `sp` starts here and grows
/// down.
pub const STACK_TOP: u64 = 0x8000_0000;

/// Hardware trap causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Access to an unmapped address.
    Segfault(u64),
    /// Access that is not 8-byte aligned.
    Misaligned(u64),
    /// Integer divide fault (`#DE`).
    DivFault,
    /// Control transfer outside the text section (corrupted return address).
    BadPc(u64),
    /// Undecodable instruction word (`#UD`), reachable only via opcode
    /// corruption.
    IllegalInstr,
}

impl Trap {
    /// Short stable cause label for trap-cause breakdowns (telemetry,
    /// trace records).
    pub fn name(&self) -> &'static str {
        match self {
            Trap::Segfault(_) => "segfault",
            Trap::Misaligned(_) => "misaligned",
            Trap::DivFault => "div-fault",
            Trap::BadPc(_) => "bad-pc",
            Trap::IllegalInstr => "illegal-instr",
        }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Segfault(a) => write!(f, "segfault at {a:#x}"),
            Trap::Misaligned(a) => write!(f, "misaligned access at {a:#x}"),
            Trap::DivFault => write!(f, "integer divide fault"),
            Trap::BadPc(a) => write!(f, "bad program counter {a:#x}"),
            Trap::IllegalInstr => write!(f, "illegal instruction"),
        }
    }
}

/// One recorded output action (mirror of the IR interpreter's event type).
#[derive(Debug, Clone, PartialEq)]
pub enum OutEvent {
    /// `print_i64`.
    I64(i64),
    /// `print_f64`.
    F64(f64),
    /// `print_str`.
    Str(String),
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// `halt` executed; exit code attached.
    Exit(i64),
    /// Hardware trap.
    Trap(Trap),
    /// Cycle budget exhausted.
    Timeout,
}

/// The golden run's terminal facts, borrowed by the convergence loop so a
/// converged trial can splice the remainder instead of executing it.
#[derive(Debug, Clone, Copy)]
pub struct GoldenEnd<'a> {
    /// The golden run's exit code (convergence is only attempted for runs
    /// that exited cleanly).
    pub exit_code: i64,
    /// The golden run's complete output stream.
    pub output: &'a [OutEvent],
    /// The golden run's final cycle count (including any per-fetch probe
    /// overhead the profiling run paid).
    pub cycles: u64,
    /// The golden run's final retired-instruction count.
    pub retired: u64,
    /// Per-fetch probe overhead the *profiling* run paid that a detached
    /// trial does not (PINFI's instrumentation tax); subtracted from the
    /// spliced suffix cycles so trial timing matches native execution.
    pub probe_overhead: u64,
}

/// What the convergence loop did for one trial.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvStats {
    /// Did the trial converge with the golden run (outcome spliced)?
    pub converged: bool,
    /// Post-injection instructions actually executed under convergence
    /// checking.
    pub checked_instrs: u64,
    /// Instructions *not* executed because the golden suffix was spliced.
    pub saved_instrs: u64,
}

/// A completed machine run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final outcome.
    pub outcome: RunOutcome,
    /// Output events in emission order.
    pub output: Vec<OutEvent>,
    /// Simulated cycles consumed (the paper's "execution time").
    pub cycles: u64,
    /// Dynamic instruction count.
    pub instrs_retired: u64,
}

/// A read-only snapshot of architectural state handed to a [`Tracer`]
/// after each retired instruction.
#[derive(Debug, Clone, Copy)]
pub struct ArchState<'a> {
    /// Program counter of the *retired* instruction.
    pub pc: u32,
    /// General-purpose register file.
    pub regs: &'a [u64; 16],
    /// Floating-point register file (raw bits).
    pub fregs: &'a [u64; 16],
    /// FLAGS register.
    pub flags: u8,
    /// Dynamic instruction index (0-based).
    pub retired: u64,
}

/// Observes architectural state after every retired instruction — the hook
/// error-propagation analysis is built on (golden and faulty runs are
/// traced and diffed).
pub trait Tracer {
    /// Called after each instruction retires (and after any probe-requested
    /// injection was applied).
    fn after_step(&mut self, st: ArchState<'_>);
}

/// Run parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Cycle budget; exceeding it yields [`RunOutcome::Timeout`]. The
    /// campaign sets this to 10x the profiled execution per the paper.
    pub max_cycles: u64,
    /// Stack size in 8-byte words.
    pub stack_words: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { max_cycles: 500_000_000, stack_words: 1 << 16 }
    }
}

/// The machine state during one run.
///
/// Fields are `pub(crate)` so the superblock engine
/// ([`crate::superblock`]) can implement its fused dispatch loops as
/// sibling inherent impls without accessor overhead.
pub struct Machine<'a> {
    pub(crate) binary: &'a Binary,
    pub(crate) regs: [u64; 16],
    pub(crate) fregs: [u64; 16],
    pub(crate) flags: u8,
    pub(crate) pc: u32,
    pub(crate) data: Vec<u64>,
    pub(crate) stack: Vec<u64>,
    pub(crate) stack_base: u64,
    pub(crate) output: Vec<OutEvent>,
    pub(crate) cycles: u64,
    pub(crate) instrs_retired: u64,
    /// Incremental convergence hasher; `Some` only while a convergence
    /// loop's tracked region is active.
    pub(crate) conv: Option<Box<ConvHasher>>,
}

impl<'a> Machine<'a> {
    /// Initialize machine state for `binary`.
    pub fn new(binary: &'a Binary, cfg: &RunConfig) -> Self {
        let stack_base = STACK_TOP - (cfg.stack_words as u64) * 8;
        let mut m = Machine {
            binary,
            regs: [0; 16],
            fregs: [0; 16],
            flags: 0,
            pc: binary.entry,
            data: binary.data.clone(),
            stack: vec![0; cfg.stack_words],
            stack_base,
            output: Vec::new(),
            cycles: 0,
            instrs_retired: 0,
            conv: None,
        };
        m.regs[SP as usize] = STACK_TOP;
        m
    }

    /// Run to completion with a fault-injection runtime and an optional
    /// binary-instrumentation probe.
    pub fn run(
        binary: &'a Binary,
        cfg: &RunConfig,
        rt: &mut dyn FiRuntime,
        probe: Option<&mut dyn Probe>,
    ) -> RunResult {
        Self::run_traced(binary, cfg, rt, probe, None)
    }

    /// Like [`Machine::run`], additionally streaming post-retirement
    /// architectural state to `tracer`.
    pub fn run_traced(
        binary: &'a Binary,
        cfg: &RunConfig,
        rt: &mut dyn FiRuntime,
        probe: Option<&mut dyn Probe>,
        tracer: Option<&mut dyn Tracer>,
    ) -> RunResult {
        let mut m = Machine::new(binary, cfg);
        let outcome = m
            .exec_loop(cfg.max_cycles, rt, probe, tracer, None, false)
            .expect("exec_loop completes unless until_fired");
        m.into_result(outcome)
    }

    /// Like [`Machine::run`], additionally capturing full-state snapshots
    /// every `ckpt.interval` retired instructions, stamped with the current
    /// FI-event count (from the probe when one is attached, else from the
    /// runtime's [`FiRuntime::fi_count`]).
    ///
    /// Only meaningful for *quiescent* runs (profiling: nothing ever
    /// fires), whose state at every point is by construction identical to
    /// the pre-injection prefix of every trial.
    pub fn run_checkpointed(
        binary: &'a Binary,
        cfg: &RunConfig,
        rt: &mut dyn FiRuntime,
        probe: Option<&mut dyn Probe>,
        ckpt: &CheckpointConfig,
    ) -> (RunResult, CheckpointStore) {
        let baseline = BaselineHashes::new(&binary.data, cfg.stack_words, ckpt.exempt_data_words);
        let mut builder = CheckpointBuilder::new(ckpt, baseline);
        let mut m = Machine::new(binary, cfg);
        let outcome = m
            .exec_loop(cfg.max_cycles, rt, probe, None, Some(&mut builder), false)
            .expect("exec_loop completes unless until_fired");
        (m.into_result(outcome), builder.finish(cfg.stack_words))
    }

    /// Reconstruct the machine exactly as it was when `ck` was captured
    /// from a profiling run of `binary` (same binary, same
    /// `cfg.stack_words`).
    pub fn resume(binary: &'a Binary, cfg: &RunConfig, ck: &Checkpoint) -> Self {
        let mut m = Machine::new(binary, cfg);
        m.regs = ck.regs;
        m.fregs = ck.fregs;
        m.flags = ck.flags;
        m.pc = ck.pc;
        m.cycles = ck.cycles;
        m.instrs_retired = ck.retired;
        m.output = ck.output.clone();
        apply_pages(&ck.data_pages, &mut m.data);
        apply_pages(&ck.stack_pages, &mut m.stack);
        m
    }

    /// Capture the current architectural state as a [`Checkpoint`] stamped
    /// with `fi_count` (the FI-event counter value at this point).
    pub fn snapshot(&self, fi_count: u64) -> Checkpoint {
        Checkpoint {
            regs: self.regs,
            fregs: self.fregs,
            flags: self.flags,
            pc: self.pc,
            cycles: self.cycles,
            retired: self.instrs_retired,
            fi_count,
            output: self.output.clone(),
            data_pages: diff_pages(&self.data, Some(&self.binary.data)),
            stack_pages: diff_pages(&self.stack, None),
            digest: StateDigest::ZERO, // stamped by CheckpointBuilder::push
        }
    }

    /// Run this machine to completion with the exact interpreter loop
    /// (virtual runtime dispatch, probe bookkeeping) — the continuation
    /// after a checkpoint restore and quiescent fast-forward.
    pub fn finish_run(
        mut self,
        max_cycles: u64,
        rt: &mut dyn FiRuntime,
        probe: Option<&mut dyn Probe>,
    ) -> RunResult {
        let outcome = self
            .exec_loop(max_cycles, rt, probe, None, None, false)
            .expect("exec_loop completes unless until_fired");
        self.into_result(outcome)
    }

    /// Run the exact interpreter loop only until the fault *fires* (the
    /// runtime or probe reports [`FiRuntime::fired`]/[`Probe::fired`]
    /// after an instruction retires). Returns `Some(outcome)` if the run
    /// ended first (the fault never fired — deterministically impossible
    /// when the caller fast-forwarded to just below the target, but handled
    /// for robustness), `None` once fired: the caller continues with a
    /// convergence loop ([`Machine::run_converging_calls`] /
    /// [`Machine::run_converging_probed`]) or [`Machine::finish_run`].
    pub fn run_exact_until_fired(
        &mut self,
        max_cycles: u64,
        rt: &mut dyn FiRuntime,
        probe: Option<&mut dyn Probe>,
    ) -> Option<RunOutcome> {
        self.exec_loop(max_cycles, rt, probe, None, None, true)
    }

    /// Package a finished (or fast-path-terminated) machine into a
    /// [`RunResult`].
    pub fn into_result(self, outcome: RunOutcome) -> RunResult {
        RunResult {
            outcome,
            output: self.output,
            cycles: self.cycles,
            instrs_retired: self.instrs_retired,
        }
    }

    /// The exact interpreter loop shared by every entry point: probe
    /// consultation, virtual runtime dispatch, post-retirement injection,
    /// tracing, and (for checkpointed profiling runs) snapshot capture.
    ///
    /// With `until_fired` set, the loop additionally stops (returning
    /// `None`) right after the instruction on which the runtime or probe
    /// fired its fault; otherwise it always runs to completion and returns
    /// `Some(outcome)`.
    fn exec_loop(
        &mut self,
        max_cycles: u64,
        rt: &mut dyn FiRuntime,
        mut probe: Option<&mut dyn Probe>,
        mut tracer: Option<&mut dyn Tracer>,
        mut builder: Option<&mut CheckpointBuilder>,
        until_fired: bool,
    ) -> Option<RunOutcome> {
        // When a probe is attached it owns the FI-event counter (PINFI);
        // otherwise the runtime does. If an attached probe detaches, the
        // counter source is gone and snapshotting stops.
        let probe_counts = probe.is_some();
        let outcome = loop {
            if self.cycles >= max_cycles {
                break RunOutcome::Timeout;
            }
            let Some(&fetched) = self.binary.text.get(self.pc as usize) else {
                break RunOutcome::Trap(Trap::BadPc(self.pc as u64));
            };
            let pc = self.pc;
            let mut instr = fetched;
            // --- DBI probe (PIN analogue).
            let mut inject: Option<(usize, u32)> = None;
            let mut inject_mask: Option<(usize, u64)> = None;
            let mut probe_fired = false;
            if let Some(p) = probe.as_deref_mut() {
                self.cycles += p.overhead_cycles();
                let mut detach = false;
                match p.before(self.pc, &instr, self.instrs_retired) {
                    ProbeAction::Continue => {}
                    ProbeAction::Detach => detach = true,
                    ProbeAction::InjectAfter { op, bit, detach: d } => {
                        inject = Some((op, bit));
                        detach = d;
                    }
                    ProbeAction::Substitute { instr: sub, detach: d } => {
                        instr = sub;
                        detach = d;
                    }
                    ProbeAction::IllegalInstr => {
                        break RunOutcome::Trap(Trap::IllegalInstr);
                    }
                    ProbeAction::InjectMaskAfter { op, mask, detach: d } => {
                        inject_mask = Some((op, mask));
                        detach = d;
                    }
                }
                if until_fired {
                    probe_fired = p.fired();
                }
                if detach {
                    probe = None;
                }
            }
            // --- Execute.
            self.cycles += instr.cycles();
            match self.step(&instr, rt) {
                Ok(Step::Continue) => {}
                Ok(Step::Halt(code)) => break RunOutcome::Exit(code),
                Err(t) => break RunOutcome::Trap(t),
            }
            self.instrs_retired += 1;
            // --- Post-retirement injection requested by the probe.
            if let Some((op, bit)) = inject {
                let outs = fi_outputs(&instr);
                if let Some(&(reg, bits)) = outs.get(op) {
                    self.flip(reg, bit % bits);
                }
            }
            if let Some((op, mask)) = inject_mask {
                let outs = fi_outputs(&instr);
                if let Some(&(reg, _)) = outs.get(op) {
                    self.xor_mask(reg, mask);
                }
            }
            if let Some(t) = tracer.as_deref_mut() {
                t.after_step(ArchState {
                    pc,
                    regs: &self.regs,
                    fregs: &self.fregs,
                    flags: self.flags,
                    retired: self.instrs_retired - 1,
                });
            }
            if let Some(b) = builder.as_deref_mut() {
                if b.due(self.instrs_retired) {
                    let fi_count = match (&probe, probe_counts) {
                        (Some(p), _) => Some(p.fi_count()),
                        (None, false) => Some(rt.fi_count()),
                        (None, true) => None, // counter detached with the probe
                    };
                    if let Some(fc) = fi_count {
                        b.push(self.snapshot(fc));
                    }
                }
            }
            // --- Fired-fault handoff to the convergence loop. The firing
            // instruction (and its post-retirement injection) has fully
            // executed by this point.
            if until_fired && (probe_fired || rt.fired()) {
                return None;
            }
        };
        Some(outcome)
    }

    /// The quiescent fast path for call-hook tools (REFINE, LLFI): run
    /// from the current state with a concrete counting-only runtime and the
    /// predecoded stream `pre`, until `rt` has counted `stop` FI events —
    /// no probe, no tracer, no virtual dispatch.
    ///
    /// Returns `Some(outcome)` when the run *ends* inside the quiescent
    /// region (the event count never reached `stop`); `None` when the
    /// boundary was reached and the caller must continue with the exact
    /// loop ([`Machine::finish_run`]) under the real injector.
    pub fn run_quiescent_calls(
        &mut self,
        pre: &Predecoded,
        rt: &mut QuiescentRt,
        stop: u64,
        max_cycles: u64,
    ) -> Option<RunOutcome> {
        debug_assert_eq!(pre.len(), self.binary.text.len());
        while rt.count < stop {
            if self.cycles >= max_cycles {
                return Some(RunOutcome::Timeout);
            }
            let Some(e) = pre.entry(self.pc) else {
                return Some(RunOutcome::Trap(Trap::BadPc(self.pc as u64)));
            };
            self.cycles += e.cost;
            match self.step(&e.instr, rt) {
                Ok(Step::Continue) => self.instrs_retired += 1,
                Ok(Step::Halt(code)) => return Some(RunOutcome::Exit(code)),
                Err(t) => return Some(RunOutcome::Trap(t)),
            }
        }
        None
    }

    /// The quiescent fast path for the probed tool (PINFI): mirror the
    /// exact loop's attached-probe accounting (`overhead` cycles per
    /// instruction, FI-target counting *before* execution) without the
    /// probe virtual call, until `count` reaches `stop`. Return contract as
    /// [`Machine::run_quiescent_calls`].
    pub fn run_quiescent_probed(
        &mut self,
        pre: &Predecoded,
        overhead: u64,
        count: &mut u64,
        stop: u64,
        max_cycles: u64,
    ) -> Option<RunOutcome> {
        debug_assert_eq!(pre.len(), self.binary.text.len());
        let mut rt = NoFi;
        while *count < stop {
            if self.cycles >= max_cycles {
                return Some(RunOutcome::Timeout);
            }
            let Some(e) = pre.entry(self.pc) else {
                return Some(RunOutcome::Trap(Trap::BadPc(self.pc as u64)));
            };
            self.cycles += overhead + e.cost;
            if e.is_target {
                *count += 1;
            }
            match self.step(&e.instr, &mut rt) {
                Ok(Step::Continue) => self.instrs_retired += 1,
                Ok(Step::Halt(code)) => return Some(RunOutcome::Exit(code)),
                Err(t) => return Some(RunOutcome::Trap(t)),
            }
        }
        None
    }

    /// Post-injection convergence loop for call-hook tools (REFINE, LLFI):
    /// continue from the just-fired state under a counting-only runtime,
    /// comparing the incremental state digest against each golden snapshot
    /// when the trial reaches the snapshot's `(fi_count, pc)` position; on
    /// match, splice the golden suffix and return its outcome. `rt.count`
    /// must hold the FI-event count *after* the fault fired (identical to
    /// what the profiling run had counted at the same point on
    /// convergence).
    #[allow(clippy::too_many_arguments)]
    pub fn run_converging_calls(
        &mut self,
        pre: &Predecoded,
        rt: &mut QuiescentRt,
        store: &CheckpointStore,
        golden: GoldenEnd<'_>,
        max_cycles: u64,
        stats: &mut ConvStats,
    ) -> RunOutcome {
        self.converge_core::<QuiescentRt, false>(pre, rt, &mut 0, store, golden, max_cycles, stats)
    }

    /// Post-injection convergence loop for the probed tool (PINFI). The
    /// trial runs *detached* (no probe overhead), but `count` keeps
    /// tallying FI targets at fetch exactly as the attached profiling run
    /// did, so digest FI counters are comparable. `count` must hold the
    /// injector's event count at fire time (== its target).
    #[allow(clippy::too_many_arguments)]
    pub fn run_converging_probed(
        &mut self,
        pre: &Predecoded,
        count: &mut u64,
        store: &CheckpointStore,
        golden: GoldenEnd<'_>,
        max_cycles: u64,
        stats: &mut ConvStats,
    ) -> RunOutcome {
        let mut rt = NoFi;
        self.converge_core::<NoFi, true>(pre, &mut rt, count, store, golden, max_cycles, stats)
    }

    /// Shared monomorphized convergence loop. `PROBED` selects the PINFI
    /// FI-counter discipline (count targets at fetch via `count`) over the
    /// call-hook one (`rt.fi_count()`). Execution accounting is identical
    /// to the exact loop with no probe attached, so a non-converging trial
    /// finishes bit-identically to [`Machine::finish_run`].
    ///
    /// Snapshots are matched by `(fi_count, pc)`, not retired count: for
    /// the call-hook tools the taken injection branch retires instructions
    /// the quiescent golden run never executed, so post-fire the trial's
    /// retired counter is permanently skewed against golden's. The FI-event
    /// counter is injection-invariant (the extra branch instructions are
    /// runtime-call plumbing, not FI events), so a trial whose state
    /// re-converges passes through every later golden snapshot at exactly
    /// the snapshot's FI count and pc — where the full-state digest decides
    /// — while the splice adds golden's *suffix deltas* onto the trial's
    /// own counters, absorbing the skew without measuring it.
    #[allow(clippy::too_many_arguments)]
    fn converge_core<R: FiRuntime + ?Sized, const PROBED: bool>(
        &mut self,
        pre: &Predecoded,
        rt: &mut R,
        count: &mut u64,
        store: &CheckpointStore,
        golden: GoldenEnd<'_>,
        max_cycles: u64,
        stats: &mut ConvStats,
    ) -> RunOutcome {
        debug_assert_eq!(pre.len(), self.binary.text.len());
        let entry_retired = self.instrs_retired;
        let fi_entry = if PROBED { *count } else { rt.fi_count() };
        // First candidate: the earliest golden snapshot whose FI-event
        // window the trial has not passed yet (fi_count is monotone along
        // the run under both count disciplines).
        let mut cursor = store.checkpoints.partition_point(|c| c.fi_count < fi_entry);
        let mut inited = false;
        let outcome = 'run: loop {
            // Skip snapshots whose FI-event window has already passed
            // without a state match (the while handles adjacent snapshots
            // with equal counts, which interval thinning can produce).
            let fi = if PROBED { *count } else { rt.fi_count() };
            while store.checkpoints.get(cursor).is_some_and(|c| c.fi_count < fi) {
                cursor += 1;
            }
            if let Some(ck) = store.checkpoints.get(cursor) {
                if ck.fi_count == fi && ck.pc == self.pc {
                    if !inited {
                        // One full scan seeds the hasher; later checks pay
                        // only for pages written since.
                        self.conv = Some(Box::new(ConvHasher::scan(
                            &store.baseline,
                            &self.data,
                            &self.binary.data,
                            &self.stack,
                            &self.output,
                        )));
                        inited = true;
                    }
                    let digest = self.conv_refresh(fi);
                    if digest == ck.digest {
                        // Converged: the remainder is deterministic and
                        // equal to the golden run's from this snapshot on.
                        // Add golden's suffix deltas onto the trial's own
                        // counters (absorbing any injection-branch skew)
                        // and correct for probe overhead the profiling run
                        // paid but a detached post-fire trial does not
                        // (the +1 fetch is the final non-retiring Halt).
                        // Only splice when the spliced timing could not
                        // have hit the cycle budget mid-suffix (cycles are
                        // monotone, so final < budget implies no interior
                        // timeout); otherwise keep executing — correct
                        // either way.
                        let suffix_retired = golden.retired - ck.retired;
                        let suffix_fetches = suffix_retired + 1;
                        let suffix_cycles = (golden.cycles - ck.cycles)
                            - golden.probe_overhead * suffix_fetches;
                        let final_cycles = self.cycles + suffix_cycles;
                        if final_cycles < max_cycles {
                            stats.converged = true;
                            stats.checked_instrs = self.instrs_retired - entry_retired;
                            stats.saved_instrs = suffix_retired;
                            self.cycles = final_cycles;
                            self.instrs_retired += suffix_retired;
                            self.output.clear();
                            self.output.extend_from_slice(golden.output);
                            break 'run RunOutcome::Exit(golden.exit_code);
                        }
                    }
                }
            }
            // One instruction: mirrors the exact loop's accounting (timeout
            // before fetch, predecoded cost, FI-target tally for PROBED),
            // with page write tracking once the hasher is live.
            if self.cycles >= max_cycles {
                break 'run RunOutcome::Timeout;
            }
            let Some(e) = pre.entry(self.pc) else {
                break 'run RunOutcome::Trap(Trap::BadPc(self.pc as u64));
            };
            self.cycles += e.cost;
            if PROBED && e.is_target {
                *count += 1;
            }
            let stepped = if inited {
                self.step_t::<R, true>(&e.instr, rt)
            } else {
                self.step_t::<R, false>(&e.instr, rt)
            };
            match stepped {
                Ok(Step::Continue) => self.instrs_retired += 1,
                Ok(Step::Halt(code)) => break 'run RunOutcome::Exit(code),
                Err(t) => break 'run RunOutcome::Trap(t),
            }
        };
        self.conv = None;
        if !stats.converged {
            stats.checked_instrs = self.instrs_retired - entry_retired;
        }
        outcome
    }

    /// Refresh the active convergence hasher against current memory and
    /// output and produce the boundary digest.
    pub(crate) fn conv_refresh(&mut self, fi_count: u64) -> StateDigest {
        let mut c = self.conv.take().expect("convergence hasher active");
        c.refresh(&self.data, &self.stack, &self.output);
        let d = c.digest(&self.regs, &self.fregs, self.flags, self.pc, fi_count);
        self.conv = Some(c);
        d
    }

    /// XOR a full mask into an architectural register (multi-bit faults).
    pub fn xor_mask(&mut self, reg: Reg, mask: u64) {
        match reg {
            Reg::G(i) => self.regs[i as usize] ^= mask,
            Reg::F(i) => self.fregs[i as usize] ^= mask,
            Reg::Flags => self.flags ^= (mask & 0xf) as u8,
        }
    }

    /// Flip one bit of an architectural register.
    pub fn flip(&mut self, reg: Reg, bit: u32) {
        match reg {
            Reg::G(i) => self.regs[i as usize] ^= 1 << (bit & 63),
            Reg::F(i) => self.fregs[i as usize] ^= 1 << (bit & 63),
            Reg::Flags => self.flags ^= 1 << (bit % crate::isa::FLAGS_BITS),
        }
    }

    pub(crate) fn mem_read(&self, addr: u64) -> Result<u64, Trap> {
        if !addr.is_multiple_of(8) {
            return Err(Trap::Misaligned(addr));
        }
        if addr >= GLOBAL_BASE {
            let w = (addr - GLOBAL_BASE) / 8;
            if (w as usize) < self.data.len() {
                return Ok(self.data[w as usize]);
            }
        }
        if addr >= self.stack_base && addr < STACK_TOP {
            return Ok(self.stack[((addr - self.stack_base) / 8) as usize]);
        }
        Err(Trap::Segfault(addr))
    }

    /// Memory write, optionally marking the written page in the active
    /// convergence hasher. `TRACK` is const so the untracked paths compile
    /// to exactly the pre-convergence store.
    pub(crate) fn mem_write_t<const TRACK: bool>(&mut self, addr: u64, val: u64) -> Result<(), Trap> {
        if !addr.is_multiple_of(8) {
            return Err(Trap::Misaligned(addr));
        }
        if addr >= GLOBAL_BASE {
            let w = (addr - GLOBAL_BASE) / 8;
            if (w as usize) < self.data.len() {
                self.data[w as usize] = val;
                if TRACK {
                    if let Some(c) = self.conv.as_mut() {
                        c.mark_data((w as usize / PAGE_WORDS) as u32);
                    }
                }
                return Ok(());
            }
        }
        if addr >= self.stack_base && addr < STACK_TOP {
            let w = ((addr - self.stack_base) / 8) as usize;
            self.stack[w] = val;
            if TRACK {
                if let Some(c) = self.conv.as_mut() {
                    c.mark_stack((w / PAGE_WORDS) as u32);
                }
            }
            return Ok(());
        }
        Err(Trap::Segfault(addr))
    }

    fn eff_addr(&self, mem: &Mem) -> u64 {
        let mut a = mem.disp as u64;
        if let Some(b) = mem.base {
            a = a.wrapping_add(self.regs[b as usize]);
        }
        if let Some((i, s)) = mem.index {
            a = a.wrapping_add(self.regs[i as usize].wrapping_mul(s as u64));
        }
        a
    }

    fn set_int_flags(&mut self, res: i64, of: bool) {
        let mut f = 0u8;
        if res == 0 {
            f |= flags::ZF;
        }
        if res < 0 {
            f |= flags::LT;
        }
        if of {
            f |= flags::OF;
        }
        self.flags = f;
    }

    pub(crate) fn f(&self, i: u8) -> f64 {
        f64::from_bits(self.fregs[i as usize])
    }

    pub(crate) fn set_f(&mut self, i: u8, v: f64) {
        self.fregs[i as usize] = v.to_bits();
    }

    pub(crate) fn alu(&mut self, op: AluOp, a: i64, b: i64) -> Result<i64, Trap> {
        let (res, of) = match op {
            AluOp::Add => a.overflowing_add(b),
            AluOp::Sub => a.overflowing_sub(b),
            AluOp::Mul => a.overflowing_mul(b),
            AluOp::Div => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    return Err(Trap::DivFault);
                }
                (a / b, false)
            }
            AluOp::Rem => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    return Err(Trap::DivFault);
                }
                (a % b, false)
            }
            AluOp::And => (a & b, false),
            AluOp::Or => (a | b, false),
            AluOp::Xor => (a ^ b, false),
            AluOp::Shl => (a.wrapping_shl((b & 63) as u32), false),
            AluOp::LShr => (((a as u64).wrapping_shr((b & 63) as u32)) as i64, false),
            AluOp::AShr => (a.wrapping_shr((b & 63) as u32), false),
        };
        self.set_int_flags(res, of);
        Ok(res)
    }

    pub(crate) fn push_t<const TRACK: bool>(&mut self, val: u64) -> Result<(), Trap> {
        let sp = self.regs[SP as usize].wrapping_sub(8);
        self.regs[SP as usize] = sp;
        self.mem_write_t::<TRACK>(sp, val)
    }

    pub(crate) fn pop(&mut self) -> Result<u64, Trap> {
        let sp = self.regs[SP as usize];
        let v = self.mem_read(sp)?;
        self.regs[SP as usize] = sp.wrapping_add(8);
        Ok(v)
    }

    pub(crate) fn step<R: FiRuntime + ?Sized>(
        &mut self,
        instr: &MInstr,
        rt: &mut R,
    ) -> Result<Step, Trap> {
        self.step_t::<R, false>(instr, rt)
    }

    /// One-instruction dispatch; `TRACK` threads page write tracking to the
    /// store paths for the convergence loop (false compiles to the exact
    /// pre-existing interpreter step).
    pub(crate) fn step_t<R: FiRuntime + ?Sized, const TRACK: bool>(
        &mut self,
        instr: &MInstr,
        rt: &mut R,
    ) -> Result<Step, Trap> {
        let mut next = self.pc + 1;
        match *instr {
            MInstr::Nop => {}
            MInstr::MovRR { rd, ra } => self.regs[rd as usize] = self.regs[ra as usize],
            MInstr::MovRI { rd, imm } => self.regs[rd as usize] = imm as u64,
            MInstr::FMovRR { fd, fa } => self.fregs[fd as usize] = self.fregs[fa as usize],
            MInstr::FMovRI { fd, imm } => self.fregs[fd as usize] = imm,
            MInstr::Alu { op, rd, ra, rb } => {
                let r = self.alu(op, self.regs[ra as usize] as i64, self.regs[rb as usize] as i64)?;
                self.regs[rd as usize] = r as u64;
            }
            MInstr::AluI { op, rd, ra, imm } => {
                let r = self.alu(op, self.regs[ra as usize] as i64, imm)?;
                self.regs[rd as usize] = r as u64;
            }
            MInstr::Cmp { ra, rb } => {
                let (a, b) = (self.regs[ra as usize] as i64, self.regs[rb as usize] as i64);
                self.cmp_flags(a, b);
            }
            MInstr::CmpI { ra, imm } => {
                let a = self.regs[ra as usize] as i64;
                self.cmp_flags(a, imm);
            }
            MInstr::SetCc { cc, rd } => {
                self.regs[rd as usize] = cc.eval(self.flags) as u64;
            }
            MInstr::FAlu { op, fd, fa, fb } => {
                let (a, b) = (self.f(fa), self.f(fb));
                let r = match op {
                    FAluOp::Add => a + b,
                    FAluOp::Sub => a - b,
                    FAluOp::Mul => a * b,
                    FAluOp::Div => a / b,
                    FAluOp::Min => a.min(b),
                    FAluOp::Max => a.max(b),
                };
                self.set_f(fd, r);
            }
            MInstr::FCmp { fa, fb } => {
                let (a, b) = (self.f(fa), self.f(fb));
                self.fcmp_flags(a, b);
            }
            MInstr::Cvt { kind, dst, src } => match kind {
                CvtKind::SiToF => self.set_f(dst, self.regs[src as usize] as i64 as f64),
                CvtKind::FToSi => self.regs[dst as usize] = (self.f(src) as i64) as u64,
                CvtKind::BitsToF => self.fregs[dst as usize] = self.regs[src as usize],
                CvtKind::FToBits => self.regs[dst as usize] = self.fregs[src as usize],
            },
            MInstr::Ld { rd, mem } => {
                let a = self.eff_addr(&mem);
                self.regs[rd as usize] = self.mem_read(a)?;
            }
            MInstr::St { rs, mem } => {
                let a = self.eff_addr(&mem);
                self.mem_write_t::<TRACK>(a, self.regs[rs as usize])?;
            }
            MInstr::FLd { fd, mem } => {
                let a = self.eff_addr(&mem);
                self.fregs[fd as usize] = self.mem_read(a)?;
            }
            MInstr::FSt { fs, mem } => {
                let a = self.eff_addr(&mem);
                self.mem_write_t::<TRACK>(a, self.fregs[fs as usize])?;
            }
            MInstr::Push { rs } => self.push_t::<TRACK>(self.regs[rs as usize])?,
            MInstr::Pop { rd } => {
                let v = self.pop()?;
                self.regs[rd as usize] = v;
            }
            MInstr::Jmp { target } => next = target,
            MInstr::Jcc { cc, target } => {
                if cc.eval(self.flags) {
                    next = target;
                }
            }
            MInstr::Call { target } => {
                self.push_t::<TRACK>(next as u64)?;
                next = target;
            }
            MInstr::Ret => {
                let ra = self.pop()?;
                if ra as usize >= self.binary.text.len() {
                    return Err(Trap::BadPc(ra));
                }
                next = ra as u32;
            }
            MInstr::CallRt { func, imm } => self.call_rt(func, imm, rt),
            MInstr::RdFlags { rd } => self.regs[rd as usize] = self.flags as u64,
            MInstr::WrFlags { rs } => self.flags = (self.regs[rs as usize] & 0xf) as u8,
            MInstr::FXorI { fd, imm } => self.fregs[fd as usize] ^= imm,
            MInstr::Halt => return Ok(Step::Halt(self.regs[0] as i64)),
            MInstr::Lea { rd, mem } => self.regs[rd as usize] = self.eff_addr(&mem),
        }
        self.pc = next;
        // Unified pc-bounds rule: every control transfer *and* every
        // fallthrough must land strictly inside `text` — `pc == text.len()`
        // is a trap, matching `Ret`'s check (which additionally validates the
        // full 64-bit return address before it is truncated to a pc).
        if self.pc as usize >= self.binary.text.len() {
            return Err(Trap::BadPc(self.pc as u64));
        }
        Ok(Step::Continue)
    }

    pub(crate) fn cmp_flags(&mut self, a: i64, b: i64) {
        let mut f = 0u8;
        if a == b {
            f |= flags::ZF;
        }
        if a < b {
            f |= flags::LT;
        }
        if a.overflowing_sub(b).1 {
            f |= flags::OF;
        }
        self.flags = f;
    }

    pub(crate) fn fcmp_flags(&mut self, a: f64, b: f64) {
        let mut f = 0u8;
        if a.is_nan() || b.is_nan() {
            f |= flags::UN;
        } else {
            if a == b {
                f |= flags::ZF;
            }
            if a < b {
                f |= flags::LT;
            }
        }
        self.flags = f;
    }

    fn call_rt<R: FiRuntime + ?Sized>(&mut self, func: RtFunc, imm: u64, rt: &mut R) {
        match func {
            RtFunc::PrintI64 => self.output.push(OutEvent::I64(self.regs[0] as i64)),
            RtFunc::PrintF64 => self.output.push(OutEvent::F64(self.f(0))),
            RtFunc::PrintStr => {
                let s = self
                    .binary
                    .strings
                    .get(imm as usize)
                    .cloned()
                    .unwrap_or_default();
                self.output.push(OutEvent::Str(s));
            }
            RtFunc::Sqrt => self.set_f(0, self.f(0).sqrt()),
            RtFunc::Fabs => self.set_f(0, self.f(0).abs()),
            RtFunc::Exp => self.set_f(0, self.f(0).exp()),
            RtFunc::Log => self.set_f(0, self.f(0).ln()),
            RtFunc::Sin => self.set_f(0, self.f(0).sin()),
            RtFunc::Cos => self.set_f(0, self.f(0).cos()),
            RtFunc::Floor => self.set_f(0, self.f(0).floor()),
            RtFunc::Pow => self.set_f(0, self.f(0).powf(self.f(1))),
            RtFunc::Fmin => self.set_f(0, self.f(0).min(self.f(1))),
            RtFunc::Fmax => self.set_f(0, self.f(0).max(self.f(1))),
            RtFunc::FiSelInstr => {
                self.regs[0] = rt.sel_instr(imm) as u64;
            }
            RtFunc::FiSetupFi => {
                let (nops, sizes) = pack::setup_unpack(imm);
                let (op, bit) = rt.setup_fi(nops, &sizes[..nops as usize]);
                self.regs[0] = (op as u64) | (bit as u64) << 8;
            }
            RtFunc::LlfiInjectI => {
                let (site, bits) = pack::llfi_unpack(imm);
                self.regs[0] = rt.llfi_inject(site, self.regs[0], bits);
            }
            RtFunc::LlfiInjectF => {
                let (site, bits) = pack::llfi_unpack(imm);
                self.fregs[0] = rt.llfi_inject(site, self.fregs[0], bits);
            }
        }
    }
}

pub(crate) enum Step {
    Continue,
    Halt(i64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::Symbol;
    use crate::isa::Cc;
    use crate::rt::NoFi;

    fn bin(text: Vec<MInstr>) -> Binary {
        let end = text.len() as u32;
        Binary {
            text,
            data: vec![0; 8],
            symbols: vec![Symbol { name: "main".into(), entry: 0, end }],
            strings: vec!["hello".into()],
            entry: 0,
        }
    }

    fn run(b: &Binary) -> RunResult {
        Machine::run(b, &RunConfig::default(), &mut NoFi, None)
    }

    /// The shared-image contract the campaign engine relies on: a `Binary`
    /// crosses threads freely behind an `Arc`.
    #[test]
    fn binary_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Binary>();
        assert_send_sync::<std::sync::Arc<Binary>>();
    }

    /// Per-run state isolation: concurrent runs from one shared image are
    /// bit-identical to serial runs, even when runs mutate their private
    /// data segment — no trial can leak state into another.
    #[test]
    fn concurrent_runs_from_shared_image_match_serial() {
        // Each run increments global word 1 and returns its final value;
        // with a fresh data segment per run, every execution exits with 100.
        let image = std::sync::Arc::new(bin(vec![
            MInstr::MovRI { rd: 1, imm: GLOBAL_BASE as i64 },
            MInstr::MovRI { rd: 0, imm: 0 },
            // L2:
            MInstr::Ld { rd: 2, mem: Mem::base_disp(1, 8) },
            MInstr::AluI { op: AluOp::Add, rd: 2, ra: 2, imm: 1 },
            MInstr::St { rs: 2, mem: Mem::base_disp(1, 8) },
            MInstr::AluI { op: AluOp::Add, rd: 0, ra: 0, imm: 1 },
            MInstr::CmpI { ra: 0, imm: 100 },
            MInstr::Jcc { cc: Cc::Lt, target: 2 },
            MInstr::Ld { rd: 0, mem: Mem::base_disp(1, 8) },
            MInstr::Halt,
        ]));
        let serial = Machine::run(&image, &RunConfig::default(), &mut NoFi, None);
        assert_eq!(serial.outcome, RunOutcome::Exit(100));
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let image = std::sync::Arc::clone(&image);
                    scope.spawn(move || {
                        (0..8)
                            .map(|_| {
                                Machine::run(&image, &RunConfig::default(), &mut NoFi, None)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for w in workers {
                for r in w.join().unwrap() {
                    assert_eq!(r.outcome, serial.outcome);
                    assert_eq!(r.cycles, serial.cycles);
                    assert_eq!(r.instrs_retired, serial.instrs_retired);
                }
            }
        });
        // The shared image itself is untouched.
        assert_eq!(image.data[1], 0);
    }

    #[test]
    fn halt_reports_exit_code() {
        let b = bin(vec![MInstr::MovRI { rd: 0, imm: 42 }, MInstr::Halt]);
        let r = run(&b);
        assert_eq!(r.outcome, RunOutcome::Exit(42));
        assert_eq!(r.instrs_retired, 1); // halt not counted as retired work
    }

    #[test]
    fn arithmetic_and_flags() {
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 5 },
            MInstr::MovRI { rd: 2, imm: 5 },
            MInstr::Alu { op: AluOp::Sub, rd: 3, ra: 1, rb: 2 },
            MInstr::SetCc { cc: Cc::E, rd: 0 },
            MInstr::Halt,
        ]);
        assert_eq!(run(&b).outcome, RunOutcome::Exit(1));
    }

    #[test]
    fn loop_with_branches() {
        // r0 = sum(1..=10) via cmp/jcc
        let b = bin(vec![
            MInstr::MovRI { rd: 0, imm: 0 },
            MInstr::MovRI { rd: 1, imm: 1 },
            // L2:
            MInstr::CmpI { ra: 1, imm: 10 },
            MInstr::Jcc { cc: Cc::Gt, target: 6 },
            MInstr::Alu { op: AluOp::Add, rd: 0, ra: 0, rb: 1 },
            MInstr::AluI { op: AluOp::Add, rd: 1, ra: 1, imm: 1 },
            MInstr::Jmp { target: 2 },
            MInstr::Halt,
        ]);
        // note: Jcc target 6 is the AluI? recompute: indices 0..7; target of
        // exit jcc must be 7 (halt) and loop jmp to 2.
        let mut b = b;
        b.text[3] = MInstr::Jcc { cc: Cc::Gt, target: 7 };
        b.text[6] = MInstr::Jmp { target: 2 };
        assert_eq!(run(&b).outcome, RunOutcome::Exit(55));
    }

    #[test]
    fn memory_and_globals() {
        let mut b = bin(vec![
            MInstr::MovRI { rd: 1, imm: GLOBAL_BASE as i64 },
            MInstr::Ld { rd: 0, mem: Mem::base_disp(1, 8) },
            MInstr::Halt,
        ]);
        b.data[1] = 99;
        assert_eq!(run(&b).outcome, RunOutcome::Exit(99));
    }

    #[test]
    fn scaled_index_addressing() {
        let mut b = bin(vec![
            MInstr::MovRI { rd: 1, imm: GLOBAL_BASE as i64 },
            MInstr::MovRI { rd: 2, imm: 3 },
            MInstr::Ld { rd: 0, mem: Mem { base: Some(1), index: Some((2, 8)), disp: 0 } },
            MInstr::Halt,
        ]);
        b.data[3] = 77;
        assert_eq!(run(&b).outcome, RunOutcome::Exit(77));
    }

    #[test]
    fn push_pop_and_call_ret() {
        let b = bin(vec![
            MInstr::Call { target: 3 },
            MInstr::MovRR { rd: 0, ra: 1 },
            MInstr::Halt,
            // callee:
            MInstr::MovRI { rd: 1, imm: 123 },
            MInstr::Ret,
        ]);
        assert_eq!(run(&b).outcome, RunOutcome::Exit(123));
    }

    #[test]
    fn segfault_on_wild_pointer() {
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 0x100 },
            MInstr::Ld { rd: 0, mem: Mem::base_disp(1, 0) },
            MInstr::Halt,
        ]);
        assert_eq!(run(&b).outcome, RunOutcome::Trap(Trap::Segfault(0x100)));
    }

    #[test]
    fn misaligned_access_traps() {
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: GLOBAL_BASE as i64 + 4 },
            MInstr::Ld { rd: 0, mem: Mem::base_disp(1, 0) },
            MInstr::Halt,
        ]);
        assert!(matches!(run(&b).outcome, RunOutcome::Trap(Trap::Misaligned(_))));
    }

    #[test]
    fn div_fault() {
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 1 },
            MInstr::MovRI { rd: 2, imm: 0 },
            MInstr::Alu { op: AluOp::Div, rd: 0, ra: 1, rb: 2 },
            MInstr::Halt,
        ]);
        assert_eq!(run(&b).outcome, RunOutcome::Trap(Trap::DivFault));
    }

    #[test]
    fn corrupted_return_address_traps() {
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 0xdead_0000 },
            MInstr::Push { rs: 1 },
            MInstr::Ret,
        ]);
        assert_eq!(run(&b).outcome, RunOutcome::Trap(Trap::BadPc(0xdead_0000)));
    }

    #[test]
    fn ret_to_one_past_end_traps() {
        // ra == text.len() is out of bounds: the pc rule is strict (`>=`).
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 3 },
            MInstr::Push { rs: 1 },
            MInstr::Ret,
        ]);
        assert_eq!(run(&b).outcome, RunOutcome::Trap(Trap::BadPc(3)));
    }

    #[test]
    fn fallthrough_past_end_traps() {
        // Falling through the last instruction lands on pc == text.len(),
        // which traps under the same strict rule as control transfers.
        let b = bin(vec![MInstr::MovRI { rd: 0, imm: 7 }, MInstr::Nop]);
        assert_eq!(run(&b).outcome, RunOutcome::Trap(Trap::BadPc(2)));
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let b = bin(vec![MInstr::Jmp { target: 0 }]);
        let r = Machine::run(&b, &RunConfig { max_cycles: 1000, stack_words: 64 }, &mut NoFi, None);
        assert_eq!(r.outcome, RunOutcome::Timeout);
    }

    #[test]
    fn float_pipeline() {
        let b = bin(vec![
            MInstr::FMovRI { fd: 1, imm: 2.0f64.to_bits() },
            MInstr::FMovRI { fd: 2, imm: 8.0f64.to_bits() },
            MInstr::FAlu { op: FAluOp::Mul, fd: 0, fa: 1, fb: 2 },
            MInstr::CallRt { func: RtFunc::Sqrt, imm: 0 },
            MInstr::Cvt { kind: CvtKind::FToSi, dst: 0, src: 0 },
            MInstr::Halt,
        ]);
        assert_eq!(run(&b).outcome, RunOutcome::Exit(4));
    }

    #[test]
    fn fcmp_nan_unordered() {
        let b = bin(vec![
            MInstr::FMovRI { fd: 1, imm: f64::NAN.to_bits() },
            MInstr::FMovRI { fd: 2, imm: 1.0f64.to_bits() },
            MInstr::FCmp { fa: 1, fb: 2 },
            MInstr::SetCc { cc: Cc::Gt, rd: 0 },
            MInstr::Halt,
        ]);
        assert_eq!(run(&b).outcome, RunOutcome::Exit(0));
    }

    #[test]
    fn output_events_recorded() {
        let b = bin(vec![
            MInstr::CallRt { func: RtFunc::PrintStr, imm: 0 },
            MInstr::MovRI { rd: 0, imm: 5 },
            MInstr::CallRt { func: RtFunc::PrintI64, imm: 0 },
            MInstr::MovRI { rd: 0, imm: 0 },
            MInstr::Halt,
        ]);
        let r = run(&b);
        assert_eq!(
            r.output,
            vec![OutEvent::Str("hello".into()), OutEvent::I64(5)]
        );
    }

    #[test]
    fn flip_changes_register_bit() {
        let b = bin(vec![MInstr::Halt]);
        let mut m = Machine::new(&b, &RunConfig::default());
        m.regs[3] = 0b100;
        m.flip(Reg::G(3), 2);
        assert_eq!(m.regs[3], 0);
        m.flip(Reg::Flags, 1);
        assert_eq!(m.flags, 0b10);
        m.flip(Reg::F(1), 63);
        assert_eq!(f64::from_bits(m.fregs[1]), -0.0);
    }

    /// Probe injection: flip the destination of a mov right after it
    /// retires, and observe the changed exit code.
    #[test]
    fn probe_injects_after_instruction() {
        struct OneShot;
        impl Probe for OneShot {
            fn before(&mut self, _pc: u32, instr: &MInstr, _n: u64) -> ProbeAction {
                if matches!(instr, MInstr::MovRI { rd: 0, .. }) {
                    ProbeAction::InjectAfter { op: 0, bit: 1, detach: true }
                } else {
                    ProbeAction::Continue
                }
            }
        }
        let b = bin(vec![MInstr::MovRI { rd: 0, imm: 0 }, MInstr::Halt]);
        let r = Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut OneShot));
        assert_eq!(r.outcome, RunOutcome::Exit(2));
    }

    /// Probe overhead counts cycles while attached and stops after detach.
    #[test]
    fn probe_overhead_and_detach() {
        struct DetachAt(u64);
        impl Probe for DetachAt {
            fn before(&mut self, _pc: u32, _i: &MInstr, n: u64) -> ProbeAction {
                if n >= self.0 {
                    ProbeAction::Detach
                } else {
                    ProbeAction::Continue
                }
            }
            fn overhead_cycles(&self) -> u64 {
                100
            }
        }
        let text = vec![
            MInstr::MovRI { rd: 1, imm: 1 },
            MInstr::MovRI { rd: 1, imm: 2 },
            MInstr::MovRI { rd: 1, imm: 3 },
            MInstr::MovRI { rd: 0, imm: 0 },
            MInstr::Halt,
        ];
        let b = bin(text);
        let attached = Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut DetachAt(u64::MAX)));
        let early = Machine::run(&b, &RunConfig::default(), &mut NoFi, Some(&mut DetachAt(1)));
        let native = Machine::run(&b, &RunConfig::default(), &mut NoFi, None);
        assert!(attached.cycles > early.cycles);
        assert!(early.cycles > native.cycles);
    }
}
