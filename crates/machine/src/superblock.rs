//! Superblock-fused direct-threaded execution engine.
//!
//! The exact interpreter ([`Machine::step_t`](crate::machine::Machine)) pays
//! a 31-arm `match` decode, branchy `Option<base>/Option<index>` effective
//! addresses, and per-instruction cycle/retired/pc bookkeeping for every
//! executed instruction. This module predecodes the text section once into a
//! flat µop array whose operand offsets are fully resolved (the memory-shape
//! `Option`s are burned into the function pointer via const generics), fuses
//! straight-line runs into *superblocks*, and dispatches each block through
//! direct-threaded fn-pointer calls with one cycles/retired/pc update per
//! block.
//!
//! Fusion boundaries: a superblock ends at any control transfer (`Jmp`,
//! `Jcc`, `Call`, `Ret`), at `CallRt` (FI runtime hooks and output events
//! must see exact per-call dispatch), at `Halt`, and at the last instruction
//! of the text section (so the strict fallthrough pc-bounds trap is always
//! raised by the exact step). Instructions that can trap mid-block (memory,
//! divide, push/pop) *are* fused: [`Machine::exec_fused`] materializes the
//! exact architectural state at the trapping µop — same cycles (cost of the
//! trapping instruction included, as the exact loop adds cost before
//! stepping), same retired count (trapping instruction not retired), and
//! `pc` left on the trapping instruction.
//!
//! The three fused loops ([`Machine::run_sb_calls`],
//! [`Machine::run_sb_probed`], [`Machine::run_sb_converging_calls`] /
//! [`Machine::run_sb_converging_probed`]) mirror their exact counterparts'
//! accounting bit-for-bit and fall back to single exact steps whenever a
//! block could cross a semantic boundary the exact loop observes
//! per-instruction: the FI-event stop count, the cycle budget, or a golden
//! snapshot's `(fi_count, pc)` match point.

use crate::binary::Binary;
use crate::checkpoint::{CheckpointStore, Predecoded};
use crate::digest::ConvHasher;
use crate::isa::{AluOp, Cc, CvtKind, FAluOp, MInstr, Mem};
use crate::machine::{ConvStats, GoldenEnd, Machine, RunOutcome, Step, Trap};
use crate::rt::{FiRuntime, NoFi, QuiescentRt};

/// A µop handler: executes one fused instruction's data side effects.
/// Never touches `pc`, `cycles` or `instrs_retired` — the block dispatcher
/// accounts for those in bulk.
type UopFn = fn(&mut Machine<'_>, &Uop) -> Result<(), Trap>;

/// One predecoded instruction with fully resolved operand offsets. The
/// field meaning is per-handler; for memory ops `a`/`b`/`c` are base
/// register / index register / scale, `d` the data register, and `imm` the
/// displacement.
#[derive(Debug, Clone, Copy)]
struct Uop {
    exec: UopFn,
    a: u8,
    b: u8,
    c: u8,
    d: u8,
    imm: u64,
}

/// Dispatch counters for the superblock engine, reported through
/// `TrialFastStats` and the telemetry registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct SbStats {
    /// Fused block dispatches (including blocks cut short by a trap).
    pub dispatches: u64,
    /// Instructions retired through fused dispatch.
    pub fused_instrs: u64,
    /// Instructions retired through exact single-step fallback inside the
    /// superblock loops.
    pub stepped_instrs: u64,
}

impl SbStats {
    /// Total instructions retired under superblock loops (fused + stepped).
    pub fn total_instrs(&self) -> u64 {
        self.fused_instrs + self.stepped_instrs
    }
}

/// The predecoded, superblock-fused form of one binary's text section.
///
/// Built once per prepared artifact (like [`Predecoded`], which it embeds
/// for the exact-step fallback) and shared read-only across trial threads.
#[derive(Debug)]
pub struct SuperblockProgram {
    /// One µop per text instruction; terminator slots hold a placeholder
    /// that is never dispatched (their `fused_len` is 0).
    uops: Vec<Uop>,
    /// `fused_len[pc]` = number of µops in the superblock headed at `pc`
    /// (0 when `pc` starts no block and must be stepped exactly).
    fused_len: Vec<u32>,
    /// Suffix-sum cycle costs: cost of µops `pc..=k` is
    /// `fused_cost[pc] - fused_cost[k + 1]`, and `fused_cost[pc]` alone is
    /// the full block cost when `pc` heads a block.
    fused_cost: Vec<u64>,
    /// Suffix-sum FI-target counts (PINFI accounting), same indexing
    /// identities as `fused_cost`.
    fused_targets: Vec<u64>,
    /// The plain predecoded stream for exact-step fallback, so superblock
    /// callers don't also need a separate [`Predecoded`].
    pre: Predecoded,
}

impl SuperblockProgram {
    /// Predecode and fuse `binary`'s text section.
    pub fn new(binary: &Binary) -> Self {
        let n = binary.text.len();
        let pre = Predecoded::new(binary);
        let uops: Vec<Uop> = binary.text.iter().map(lower).collect();
        let mut fused_len = vec![0u32; n];
        let mut fused_cost = vec![0u64; n];
        let mut fused_targets = vec![0u64; n];
        // Reverse scan: an instruction is fusible when it is not a
        // terminator and is not the last instruction (the final fallthrough
        // must trap through the exact step's strict pc-bounds rule).
        for pc in (0..n).rev() {
            if is_terminator(&binary.text[pc]) || pc + 1 >= n {
                continue;
            }
            let e = pre.entry(pc as u32).expect("pc in range");
            fused_len[pc] = 1 + fused_len[pc + 1];
            fused_cost[pc] = e.cost + fused_cost[pc + 1];
            fused_targets[pc] = u64::from(e.is_target) + fused_targets[pc + 1];
        }
        SuperblockProgram { uops, fused_len, fused_cost, fused_targets, pre }
    }

    /// The embedded exact-step predecoded stream.
    pub fn pre(&self) -> &Predecoded {
        &self.pre
    }

    /// Number of predecoded instructions (== text length).
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the text section is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Number of superblock heads (distinct fused blocks a run can enter).
    pub fn block_count(&self) -> usize {
        (0..self.uops.len())
            .filter(|&pc| self.fused_len[pc] > 0 && (pc == 0 || self.fused_len[pc - 1] == 0))
            .count()
    }
}

fn is_terminator(i: &MInstr) -> bool {
    matches!(
        i,
        MInstr::Jmp { .. }
            | MInstr::Jcc { .. }
            | MInstr::Call { .. }
            | MInstr::Ret
            | MInstr::CallRt { .. }
            | MInstr::Halt
    )
}

impl Machine<'_> {
    /// Execute the superblock headed at `pc` (`n = fused_len[pc] > 0`
    /// guaranteed by the caller). On success `pc` lands on the block's
    /// (non-fused) end instruction; on a trap the architectural state is
    /// exactly what the per-instruction loop would have left.
    #[inline]
    fn exec_fused(
        &mut self,
        sb: &SuperblockProgram,
        pc: usize,
        n: u32,
        stats: &mut SbStats,
    ) -> Result<(), Trap> {
        let end = pc + n as usize;
        for (i, u) in sb.uops[pc..end].iter().enumerate() {
            if let Err(t) = (u.exec)(self, u) {
                let k = pc + i;
                // The exact loop adds the trapping instruction's cost
                // before stepping but does not retire it, and leaves pc on
                // the trapping instruction.
                self.cycles += sb.fused_cost[pc] - sb.fused_cost[k + 1];
                self.instrs_retired += i as u64;
                self.pc = k as u32;
                stats.dispatches += 1;
                stats.fused_instrs += i as u64;
                return Err(t);
            }
        }
        self.cycles += sb.fused_cost[pc];
        self.instrs_retired += u64::from(n);
        self.pc = end as u32;
        stats.dispatches += 1;
        stats.fused_instrs += u64::from(n);
        Ok(())
    }

    /// Superblock variant of [`Machine::run_quiescent_calls`]: identical
    /// return contract and accounting, with straight-line runs dispatched
    /// fused. Generic over the runtime so post-fire run-to-end can reuse it
    /// with the live injector (`stop = u64::MAX`).
    pub fn run_sb_calls<R: FiRuntime + ?Sized>(
        &mut self,
        sb: &SuperblockProgram,
        rt: &mut R,
        stop: u64,
        max_cycles: u64,
        stats: &mut SbStats,
    ) -> Option<RunOutcome> {
        debug_assert_eq!(sb.len(), self.binary.text.len());
        while rt.fi_count() < stop {
            if self.cycles >= max_cycles {
                return Some(RunOutcome::Timeout);
            }
            let pc = self.pc as usize;
            let n = sb.fused_len.get(pc).copied().unwrap_or(0);
            // Strict `<`: block-final cycles below budget implies no
            // interior per-instruction timeout check could have fired
            // (cycle costs are positive, so prefixes are strictly
            // smaller). `CallRt` never fuses, so the FI count is constant
            // across a block and the loop-top stop check stays exact.
            if n > 0 && self.cycles + sb.fused_cost[pc] < max_cycles {
                match self.exec_fused(sb, pc, n, stats) {
                    Ok(()) => continue,
                    Err(t) => return Some(RunOutcome::Trap(t)),
                }
            }
            let Some(e) = sb.pre.entry(self.pc) else {
                return Some(RunOutcome::Trap(Trap::BadPc(self.pc as u64)));
            };
            self.cycles += e.cost;
            match self.step(&e.instr, rt) {
                Ok(Step::Continue) => {
                    self.instrs_retired += 1;
                    stats.stepped_instrs += 1;
                }
                Ok(Step::Halt(code)) => return Some(RunOutcome::Exit(code)),
                Err(t) => return Some(RunOutcome::Trap(t)),
            }
        }
        None
    }

    /// Superblock variant of [`Machine::run_quiescent_probed`]: identical
    /// return contract and attached-probe accounting (`overhead` cycles and
    /// FI-target tally per fetched instruction, both charged even for the
    /// trapping instruction).
    pub fn run_sb_probed(
        &mut self,
        sb: &SuperblockProgram,
        overhead: u64,
        count: &mut u64,
        stop: u64,
        max_cycles: u64,
        stats: &mut SbStats,
    ) -> Option<RunOutcome> {
        debug_assert_eq!(sb.len(), self.binary.text.len());
        let mut rt = NoFi;
        while *count < stop {
            if self.cycles >= max_cycles {
                return Some(RunOutcome::Timeout);
            }
            let pc = self.pc as usize;
            let n = sb.fused_len.get(pc).copied().unwrap_or(0);
            // Strict `<` on the target count: if the block could reach
            // `stop` at or before its end, fall back to exact stepping so
            // the boundary instruction is the last one executed — exactly
            // as the per-instruction loop stops.
            if n > 0
                && *count + sb.fused_targets[pc] < stop
                && self.cycles + sb.fused_cost[pc] + u64::from(n) * overhead < max_cycles
            {
                match self.exec_fused(sb, pc, n, stats) {
                    Ok(()) => {
                        self.cycles += u64::from(n) * overhead;
                        *count += sb.fused_targets[pc];
                        continue;
                    }
                    Err(t) => {
                        let fetched = (self.pc as usize - pc) as u64 + 1;
                        self.cycles += fetched * overhead;
                        *count +=
                            sb.fused_targets[pc] - sb.fused_targets[self.pc as usize + 1];
                        return Some(RunOutcome::Trap(t));
                    }
                }
            }
            let Some(e) = sb.pre.entry(self.pc) else {
                return Some(RunOutcome::Trap(Trap::BadPc(self.pc as u64)));
            };
            self.cycles += overhead + e.cost;
            if e.is_target {
                *count += 1;
            }
            match self.step(&e.instr, &mut rt) {
                Ok(Step::Continue) => {
                    self.instrs_retired += 1;
                    stats.stepped_instrs += 1;
                }
                Ok(Step::Halt(code)) => return Some(RunOutcome::Exit(code)),
                Err(t) => return Some(RunOutcome::Trap(t)),
            }
        }
        None
    }

    /// Superblock variant of [`Machine::run_converging_calls`]: same
    /// snapshot-matching and splice semantics, with fused dispatch between
    /// match points.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sb_converging_calls(
        &mut self,
        sb: &SuperblockProgram,
        rt: &mut QuiescentRt,
        store: &CheckpointStore,
        golden: GoldenEnd<'_>,
        max_cycles: u64,
        stats: &mut ConvStats,
        sb_stats: &mut SbStats,
    ) -> RunOutcome {
        self.sb_converge_core::<QuiescentRt, false>(
            sb, rt, &mut 0, store, golden, max_cycles, stats, sb_stats,
        )
    }

    /// Superblock variant of [`Machine::run_converging_probed`]: detached
    /// execution with fetch-time FI-target tallying, fused between snapshot
    /// match points.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sb_converging_probed(
        &mut self,
        sb: &SuperblockProgram,
        count: &mut u64,
        store: &CheckpointStore,
        golden: GoldenEnd<'_>,
        max_cycles: u64,
        stats: &mut ConvStats,
        sb_stats: &mut SbStats,
    ) -> RunOutcome {
        let mut rt = NoFi;
        self.sb_converge_core::<NoFi, true>(
            sb, &mut rt, count, store, golden, max_cycles, stats, sb_stats,
        )
    }

    /// Shared fused convergence loop; see [`Machine`]'s exact
    /// `converge_core` for the snapshot-matching discipline it replicates.
    /// A block is fused only when no golden snapshot `(fi_count, pc)` match
    /// point can fall strictly inside it:
    ///
    /// * call-hook tools: the FI count is constant across a block (no
    ///   `CallRt`), so only the current cursor snapshot could match, and
    ///   only at a pc strictly inside the block — excluded explicitly;
    /// * probed tool: the count advances at fetches inside the block, so
    ///   fuse only when the cursor snapshot's window starts strictly after
    ///   the whole block's final count.
    #[allow(clippy::too_many_arguments)]
    fn sb_converge_core<R: FiRuntime + ?Sized, const PROBED: bool>(
        &mut self,
        sb: &SuperblockProgram,
        rt: &mut R,
        count: &mut u64,
        store: &CheckpointStore,
        golden: GoldenEnd<'_>,
        max_cycles: u64,
        stats: &mut ConvStats,
        sb_stats: &mut SbStats,
    ) -> RunOutcome {
        debug_assert_eq!(sb.len(), self.binary.text.len());
        let entry_retired = self.instrs_retired;
        let fi_entry = if PROBED { *count } else { rt.fi_count() };
        let mut cursor = store.checkpoints.partition_point(|c| c.fi_count < fi_entry);
        let mut inited = false;
        let outcome = 'run: loop {
            let fi = if PROBED { *count } else { rt.fi_count() };
            while store.checkpoints.get(cursor).is_some_and(|c| c.fi_count < fi) {
                cursor += 1;
            }
            if let Some(ck) = store.checkpoints.get(cursor) {
                if ck.fi_count == fi && ck.pc == self.pc {
                    if !inited {
                        self.conv = Some(Box::new(ConvHasher::scan(
                            &store.baseline,
                            &self.data,
                            &self.binary.data,
                            &self.stack,
                            &self.output,
                        )));
                        inited = true;
                    }
                    let digest = self.conv_refresh(fi);
                    if digest == ck.digest {
                        let suffix_retired = golden.retired - ck.retired;
                        let suffix_fetches = suffix_retired + 1;
                        let suffix_cycles = (golden.cycles - ck.cycles)
                            - golden.probe_overhead * suffix_fetches;
                        let final_cycles = self.cycles + suffix_cycles;
                        if final_cycles < max_cycles {
                            stats.converged = true;
                            stats.checked_instrs = self.instrs_retired - entry_retired;
                            stats.saved_instrs = suffix_retired;
                            self.cycles = final_cycles;
                            self.instrs_retired += suffix_retired;
                            self.output.clear();
                            self.output.extend_from_slice(golden.output);
                            break 'run RunOutcome::Exit(golden.exit_code);
                        }
                    }
                }
            }
            if self.cycles >= max_cycles {
                break 'run RunOutcome::Timeout;
            }
            let pc = self.pc as usize;
            let n = sb.fused_len.get(pc).copied().unwrap_or(0);
            if n > 0 && self.cycles + sb.fused_cost[pc] < max_cycles {
                let fusable = match store.checkpoints.get(cursor) {
                    None => true,
                    Some(ck) => {
                        if PROBED {
                            ck.fi_count > *count + sb.fused_targets[pc]
                        } else {
                            ck.fi_count != fi
                                || (ck.pc as usize) <= pc
                                || (ck.pc as usize) >= pc + n as usize
                        }
                    }
                };
                if fusable {
                    match self.exec_fused(sb, pc, n, sb_stats) {
                        Ok(()) => {
                            if PROBED {
                                *count += sb.fused_targets[pc];
                            }
                            continue;
                        }
                        Err(t) => {
                            if PROBED {
                                *count += sb.fused_targets[pc]
                                    - sb.fused_targets[self.pc as usize + 1];
                            }
                            break 'run RunOutcome::Trap(t);
                        }
                    }
                }
            }
            let Some(e) = sb.pre.entry(self.pc) else {
                break 'run RunOutcome::Trap(Trap::BadPc(self.pc as u64));
            };
            self.cycles += e.cost;
            if PROBED && e.is_target {
                *count += 1;
            }
            // TRACK=true is a no-op until the hasher is live, so a single
            // monomorphization covers both phases without semantic drift.
            match self.step_t::<R, true>(&e.instr, rt) {
                Ok(Step::Continue) => {
                    self.instrs_retired += 1;
                    sb_stats.stepped_instrs += 1;
                }
                Ok(Step::Halt(code)) => break 'run RunOutcome::Exit(code),
                Err(t) => break 'run RunOutcome::Trap(t),
            }
        };
        self.conv = None;
        if !stats.converged {
            stats.checked_instrs = self.instrs_retired - entry_retired;
        }
        outcome
    }
}

// --- µop handlers -----------------------------------------------------------
//
// Each handler mirrors one `step_t` arm's data side effects exactly. Stores
// always use `mem_write_t::<true>` / `push_t::<true>`: page tracking is a
// no-op while no convergence hasher is live, and required when one is.

fn u_nop(_m: &mut Machine<'_>, _u: &Uop) -> Result<(), Trap> {
    Ok(())
}

fn u_term(_m: &mut Machine<'_>, _u: &Uop) -> Result<(), Trap> {
    unreachable!("terminator µop is never dispatched fused")
}

fn u_mov_rr(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.regs[u.a as usize] = m.regs[u.b as usize];
    Ok(())
}

fn u_mov_ri(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.regs[u.a as usize] = u.imm;
    Ok(())
}

fn u_fmov_rr(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.fregs[u.a as usize] = m.fregs[u.b as usize];
    Ok(())
}

fn u_fmov_ri(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.fregs[u.a as usize] = u.imm;
    Ok(())
}

const ALU_OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::LShr,
    AluOp::AShr,
];

fn u_alu_rr<const OP: usize>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let r = m.alu(
        ALU_OPS[OP],
        m.regs[u.b as usize] as i64,
        m.regs[u.c as usize] as i64,
    )?;
    m.regs[u.a as usize] = r as u64;
    Ok(())
}

fn u_alu_ri<const OP: usize>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let r = m.alu(ALU_OPS[OP], m.regs[u.b as usize] as i64, u.imm as i64)?;
    m.regs[u.a as usize] = r as u64;
    Ok(())
}

fn alu_rr_fn(op: AluOp) -> UopFn {
    match op {
        AluOp::Add => u_alu_rr::<0>,
        AluOp::Sub => u_alu_rr::<1>,
        AluOp::Mul => u_alu_rr::<2>,
        AluOp::Div => u_alu_rr::<3>,
        AluOp::Rem => u_alu_rr::<4>,
        AluOp::And => u_alu_rr::<5>,
        AluOp::Or => u_alu_rr::<6>,
        AluOp::Xor => u_alu_rr::<7>,
        AluOp::Shl => u_alu_rr::<8>,
        AluOp::LShr => u_alu_rr::<9>,
        AluOp::AShr => u_alu_rr::<10>,
    }
}

fn alu_ri_fn(op: AluOp) -> UopFn {
    match op {
        AluOp::Add => u_alu_ri::<0>,
        AluOp::Sub => u_alu_ri::<1>,
        AluOp::Mul => u_alu_ri::<2>,
        AluOp::Div => u_alu_ri::<3>,
        AluOp::Rem => u_alu_ri::<4>,
        AluOp::And => u_alu_ri::<5>,
        AluOp::Or => u_alu_ri::<6>,
        AluOp::Xor => u_alu_ri::<7>,
        AluOp::Shl => u_alu_ri::<8>,
        AluOp::LShr => u_alu_ri::<9>,
        AluOp::AShr => u_alu_ri::<10>,
    }
}

fn u_cmp(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.cmp_flags(m.regs[u.a as usize] as i64, m.regs[u.b as usize] as i64);
    Ok(())
}

fn u_cmp_i(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.cmp_flags(m.regs[u.a as usize] as i64, u.imm as i64);
    Ok(())
}

const CCS: [Cc; 6] = [Cc::E, Cc::Ne, Cc::Lt, Cc::Le, Cc::Gt, Cc::Ge];

fn u_setcc<const C: usize>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.regs[u.a as usize] = CCS[C].eval(m.flags) as u64;
    Ok(())
}

fn setcc_fn(cc: Cc) -> UopFn {
    match cc {
        Cc::E => u_setcc::<0>,
        Cc::Ne => u_setcc::<1>,
        Cc::Lt => u_setcc::<2>,
        Cc::Le => u_setcc::<3>,
        Cc::Gt => u_setcc::<4>,
        Cc::Ge => u_setcc::<5>,
    }
}

fn u_falu<const OP: usize>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let (a, b) = (m.f(u.b), m.f(u.c));
    let r = match OP {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a / b,
        4 => a.min(b),
        _ => a.max(b),
    };
    m.set_f(u.a, r);
    Ok(())
}

fn falu_fn(op: FAluOp) -> UopFn {
    match op {
        FAluOp::Add => u_falu::<0>,
        FAluOp::Sub => u_falu::<1>,
        FAluOp::Mul => u_falu::<2>,
        FAluOp::Div => u_falu::<3>,
        FAluOp::Min => u_falu::<4>,
        FAluOp::Max => u_falu::<5>,
    }
}

fn u_fcmp(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let (a, b) = (m.f(u.a), m.f(u.b));
    m.fcmp_flags(a, b);
    Ok(())
}

fn u_cvt<const K: usize>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    match K {
        0 => {
            let v = m.regs[u.b as usize] as i64 as f64;
            m.set_f(u.a, v);
        }
        1 => m.regs[u.a as usize] = (m.f(u.b) as i64) as u64,
        2 => m.fregs[u.a as usize] = m.regs[u.b as usize],
        _ => m.regs[u.a as usize] = m.fregs[u.b as usize],
    }
    Ok(())
}

fn cvt_fn(kind: CvtKind) -> UopFn {
    match kind {
        CvtKind::SiToF => u_cvt::<0>,
        CvtKind::FToSi => u_cvt::<1>,
        CvtKind::BitsToF => u_cvt::<2>,
        CvtKind::FToBits => u_cvt::<3>,
    }
}

/// Effective address with the memory shape burned in as const generics, so
/// the fused path has no `Option` branches.
#[inline(always)]
fn uop_addr<const BASE: bool, const INDEX: bool>(m: &Machine<'_>, u: &Uop) -> u64 {
    let mut a = u.imm;
    if BASE {
        a = a.wrapping_add(m.regs[u.a as usize]);
    }
    if INDEX {
        a = a.wrapping_add(m.regs[u.b as usize].wrapping_mul(u.c as u64));
    }
    a
}

fn u_ld<const BASE: bool, const INDEX: bool>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let a = uop_addr::<BASE, INDEX>(m, u);
    m.regs[u.d as usize] = m.mem_read(a)?;
    Ok(())
}

fn u_st<const BASE: bool, const INDEX: bool>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let a = uop_addr::<BASE, INDEX>(m, u);
    m.mem_write_t::<true>(a, m.regs[u.d as usize])
}

fn u_fld<const BASE: bool, const INDEX: bool>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let a = uop_addr::<BASE, INDEX>(m, u);
    m.fregs[u.d as usize] = m.mem_read(a)?;
    Ok(())
}

fn u_fst<const BASE: bool, const INDEX: bool>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let a = uop_addr::<BASE, INDEX>(m, u);
    m.mem_write_t::<true>(a, m.fregs[u.d as usize])
}

fn u_lea<const BASE: bool, const INDEX: bool>(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.regs[u.d as usize] = uop_addr::<BASE, INDEX>(m, u);
    Ok(())
}

fn u_push(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.push_t::<true>(m.regs[u.a as usize])
}

fn u_pop(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    let v = m.pop()?;
    m.regs[u.a as usize] = v;
    Ok(())
}

fn u_rdflags(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.regs[u.a as usize] = m.flags as u64;
    Ok(())
}

fn u_wrflags(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.flags = (m.regs[u.a as usize] & 0xf) as u8;
    Ok(())
}

fn u_fxori(m: &mut Machine<'_>, u: &Uop) -> Result<(), Trap> {
    m.fregs[u.a as usize] ^= u.imm;
    Ok(())
}

/// Select the memory-shape instantiation of a base/index const-generic
/// handler for `$mem` and build its µop (a = base, b = index, c = scale,
/// d = data register, imm = displacement).
macro_rules! mem_uop {
    ($f:ident, $mem:expr, $data:expr) => {{
        let mem: &Mem = $mem;
        let exec: UopFn = match (mem.base.is_some(), mem.index.is_some()) {
            (false, false) => $f::<false, false>,
            (true, false) => $f::<true, false>,
            (false, true) => $f::<false, true>,
            (true, true) => $f::<true, true>,
        };
        let (ix, scale) = mem.index.unwrap_or((0, 0));
        Uop {
            exec,
            a: mem.base.unwrap_or(0),
            b: ix,
            c: scale,
            d: $data,
            imm: mem.disp as u64,
        }
    }};
}

fn simple(exec: UopFn, a: u8, b: u8, c: u8, imm: u64) -> Uop {
    Uop { exec, a, b, c, d: 0, imm }
}

/// Lower one instruction to its µop. Terminators get a placeholder that is
/// never dispatched (their `fused_len` is always 0).
fn lower(instr: &MInstr) -> Uop {
    match *instr {
        MInstr::Nop => simple(u_nop, 0, 0, 0, 0),
        MInstr::MovRR { rd, ra } => simple(u_mov_rr, rd, ra, 0, 0),
        MInstr::MovRI { rd, imm } => simple(u_mov_ri, rd, 0, 0, imm as u64),
        MInstr::FMovRR { fd, fa } => simple(u_fmov_rr, fd, fa, 0, 0),
        MInstr::FMovRI { fd, imm } => simple(u_fmov_ri, fd, 0, 0, imm),
        MInstr::Alu { op, rd, ra, rb } => simple(alu_rr_fn(op), rd, ra, rb, 0),
        MInstr::AluI { op, rd, ra, imm } => simple(alu_ri_fn(op), rd, ra, 0, imm as u64),
        MInstr::Cmp { ra, rb } => simple(u_cmp, ra, rb, 0, 0),
        MInstr::CmpI { ra, imm } => simple(u_cmp_i, ra, 0, 0, imm as u64),
        MInstr::SetCc { cc, rd } => simple(setcc_fn(cc), rd, 0, 0, 0),
        MInstr::FAlu { op, fd, fa, fb } => simple(falu_fn(op), fd, fa, fb, 0),
        MInstr::FCmp { fa, fb } => simple(u_fcmp, fa, fb, 0, 0),
        MInstr::Cvt { kind, dst, src } => simple(cvt_fn(kind), dst, src, 0, 0),
        MInstr::Ld { rd, ref mem } => mem_uop!(u_ld, mem, rd),
        MInstr::St { rs, ref mem } => mem_uop!(u_st, mem, rs),
        MInstr::FLd { fd, ref mem } => mem_uop!(u_fld, mem, fd),
        MInstr::FSt { fs, ref mem } => mem_uop!(u_fst, mem, fs),
        MInstr::Push { rs } => simple(u_push, rs, 0, 0, 0),
        MInstr::Pop { rd } => simple(u_pop, rd, 0, 0, 0),
        MInstr::RdFlags { rd } => simple(u_rdflags, rd, 0, 0, 0),
        MInstr::WrFlags { rs } => simple(u_wrflags, rs, 0, 0, 0),
        MInstr::FXorI { fd, imm } => simple(u_fxori, fd, 0, 0, imm),
        MInstr::Lea { rd, ref mem } => mem_uop!(u_lea, mem, rd),
        MInstr::Jmp { .. }
        | MInstr::Jcc { .. }
        | MInstr::Call { .. }
        | MInstr::Ret
        | MInstr::CallRt { .. }
        | MInstr::Halt => simple(u_term, 0, 0, 0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{Binary, Symbol};
    use crate::machine::RunConfig;

    fn bin(text: Vec<MInstr>) -> Binary {
        let end = text.len() as u32;
        Binary {
            text,
            data: vec![0; 8],
            symbols: vec![Symbol { name: "main".into(), entry: 0, end }],
            strings: vec!["hello".into()],
            entry: 0,
        }
    }

    /// Drive a full run through `run_sb_calls` with a NoFi runtime (stop
    /// never reached) and return (outcome, cycles, retired).
    fn run_sb(b: &Binary) -> (RunOutcome, u64, u64, SbStats) {
        let sb = SuperblockProgram::new(b);
        let cfg = RunConfig::default();
        let mut m = Machine::new(b, &cfg);
        let mut stats = SbStats::default();
        let out = m
            .run_sb_calls(&sb, &mut NoFi, u64::MAX, cfg.max_cycles, &mut stats)
            .expect("bounded run terminates");
        (out, m.cycles, m.instrs_retired, stats)
    }

    fn run_exact(b: &Binary) -> (RunOutcome, u64, u64) {
        let r = Machine::run(b, &RunConfig::default(), &mut NoFi, None);
        (r.outcome, r.cycles, r.instrs_retired)
    }

    #[test]
    fn straight_line_block_matches_exact() {
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 6 },
            MInstr::MovRI { rd: 2, imm: 7 },
            MInstr::Alu { op: AluOp::Mul, rd: 0, ra: 1, rb: 2 },
            MInstr::AluI { op: AluOp::Sub, rd: 0, ra: 0, imm: 42 },
            MInstr::Halt,
        ]);
        let (out, cycles, retired, stats) = run_sb(&b);
        assert_eq!((out, cycles, retired), run_exact(&b));
        assert_eq!(out, RunOutcome::Exit(0));
        assert_eq!(stats.dispatches, 1);
        assert_eq!(stats.fused_instrs, 4);
        // Halt ends the run without retiring, exactly like the exact loop.
        assert_eq!(stats.stepped_instrs, 0);
    }

    #[test]
    fn mid_block_trap_materializes_exact_state() {
        // Block: two movs, a div-by-zero (traps), then a mov that must not
        // execute.
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 1 },
            MInstr::MovRI { rd: 2, imm: 0 },
            MInstr::Alu { op: AluOp::Div, rd: 0, ra: 1, rb: 2 },
            MInstr::MovRI { rd: 3, imm: 9 },
            MInstr::Halt,
        ]);
        let (out, cycles, retired, _) = run_sb(&b);
        let (eo, ec, er) = run_exact(&b);
        assert_eq!(out, RunOutcome::Trap(Trap::DivFault));
        assert_eq!((out, cycles, retired), (eo, ec, er));
    }

    #[test]
    fn loops_and_branches_match_exact() {
        // Sum 1..=10 with a backward branch: alternating fused bodies and
        // exact-stepped terminators.
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 0 },  // acc
            MInstr::MovRI { rd: 2, imm: 10 }, // i
            MInstr::Alu { op: AluOp::Add, rd: 1, ra: 1, rb: 2 }, // loop head
            MInstr::AluI { op: AluOp::Sub, rd: 2, ra: 2, imm: 1 },
            MInstr::CmpI { ra: 2, imm: 0 },
            MInstr::Jcc { cc: Cc::Gt, target: 2 },
            MInstr::Alu { op: AluOp::Sub, rd: 0, ra: 1, rb: 0 },
            MInstr::AluI { op: AluOp::Sub, rd: 0, ra: 0, imm: 55 },
            MInstr::Halt,
        ]);
        let (out, cycles, retired, stats) = run_sb(&b);
        assert_eq!((out, cycles, retired), run_exact(&b));
        assert_eq!(out, RunOutcome::Exit(0));
        assert!(stats.dispatches >= 10);
        assert!(stats.fused_instrs > stats.stepped_instrs);
    }

    #[test]
    fn memory_shapes_resolve_without_options() {
        // abs, base+disp, and base+index*scale addressing in one block.
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 0x0001_0000 }, // GLOBAL_BASE
            MInstr::MovRI { rd: 2, imm: 2 },
            MInstr::MovRI { rd: 3, imm: 77 },
            MInstr::St { rs: 3, mem: Mem { base: Some(1), index: Some((2, 8)), disp: 0 } },
            MInstr::Ld { rd: 4, mem: Mem { base: None, index: None, disp: 0x0001_0010 } },
            MInstr::Alu { op: AluOp::Sub, rd: 0, ra: 4, rb: 3 },
            MInstr::Halt,
        ]);
        let (out, cycles, retired, _) = run_sb(&b);
        assert_eq!((out, cycles, retired), run_exact(&b));
        assert_eq!(out, RunOutcome::Exit(0));
    }

    #[test]
    fn last_instruction_is_never_fused() {
        let b = bin(vec![MInstr::MovRI { rd: 0, imm: 1 }, MInstr::Nop]);
        let sb = SuperblockProgram::new(&b);
        assert_eq!(sb.fused_len[1], 0);
        let (out, cycles, retired, _) = run_sb(&b);
        assert_eq!((out, cycles, retired), run_exact(&b));
        assert_eq!(out, RunOutcome::Trap(Trap::BadPc(2)));
    }

    #[test]
    fn block_metadata_identities_hold() {
        let b = bin(vec![
            MInstr::MovRI { rd: 1, imm: 1 },
            MInstr::MovRI { rd: 2, imm: 2 },
            MInstr::Jmp { target: 0 },
            MInstr::Halt,
        ]);
        let sb = SuperblockProgram::new(&b);
        assert_eq!(sb.fused_len, vec![2, 1, 0, 0]);
        assert_eq!(sb.fused_cost[0], 2); // two 1-cycle movs
        assert_eq!(sb.block_count(), 1);
        assert_eq!(sb.len(), 4);
    }
}
