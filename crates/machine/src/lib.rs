#![warn(missing_docs)]

//! `refine-machine` — the simulated target machine of the REFINE
//! reproduction ("M64").
//!
//! This crate plays the role the Intel Xeon E5-2670 plays in the paper: the
//! place where architectural state actually lives, where single-bit upsets
//! have machine-level consequences (wild pointers, corrupted stack pointers,
//! flipped condition flags) and where execution time is accounted.
//!
//! The machine is a 64-bit register machine with an x64-flavoured ABI:
//!
//! * 16 general-purpose registers (`r15` = stack pointer, `r14` = frame
//!   pointer), 16 floating-point registers, and a 4-bit FLAGS register
//!   written by integer ALU operations and comparisons — so most arithmetic
//!   instructions have *two* output operands, exactly the property REFINE's
//!   `setupFI(nOps, size[nOps])` interface exists for;
//! * a fixed-width (16-byte) binary instruction encoding with
//!   encode/decode round-tripping ([`encode`]), so binary-level tooling has
//!   real bytes to work on;
//! * segment-checked memory (globals + downward-growing stack), with traps
//!   for unmapped or misaligned accesses, divide faults, bad program
//!   counters and stack overflow;
//! * a per-instruction cycle cost model used for the paper's
//!   "experimentation time" comparison (Figure 5);
//! * a dynamic-binary-instrumentation [`probe`] interface (the PIN analogue)
//!   with per-instruction overhead and a `detach` operation;
//! * a runtime-call interface ([`rt`]) used for I/O, libm, and the fault
//!   injection control library of REFINE/LLFI.

pub mod binary;
pub mod checkpoint;
pub mod digest;
pub mod encode;
pub mod isa;
pub mod machine;
pub mod probe;
pub mod rt;
pub mod superblock;

pub use binary::{Binary, Symbol};
pub use checkpoint::{Checkpoint, CheckpointConfig, CheckpointStore, Predecoded};
pub use digest::{BaselineHashes, ConvHasher, StateDigest};
pub use isa::{fi_outputs, AluOp, Cc, CvtKind, FAluOp, MInstr, Mem, Reg, RtFunc, FLAGS_BITS};
pub use machine::{
    ArchState, ConvStats, GoldenEnd, Machine, OutEvent, RunConfig, RunOutcome, RunResult, Tracer,
    Trap,
};
pub use probe::{Probe, ProbeAction};
pub use rt::{FiRuntime, NoFi, QuiescentRt};
pub use superblock::{SbStats, SuperblockProgram};
