//! The linked program artifact: text, data, symbols, strings.

use crate::encode::{decode, encode, DecodeError};
use crate::isa::MInstr;

/// A symbol-table entry: function name and its entry instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Function name (retains the source-level name: this is the property
    /// that lets compiler-based FI correlate faults with code structure).
    pub name: String,
    /// First instruction index of the function in the text section.
    pub entry: u32,
    /// One-past-the-end instruction index.
    pub end: u32,
}

/// A complete linked binary for the M64 machine.
///
/// # Shared-image contract
///
/// A `Binary` is an **immutable compiled image**: [`crate::Machine::run`]
/// only ever borrows it, copying the mutable segments (`data` becomes the
/// run's private data segment, the stack is allocated fresh) into per-run
/// [`crate::ArchState`]. Campaign engines therefore share one
/// `Arc<Binary>` across every worker thread and every trial — thousands of
/// concurrent fault-injection runs read the same image with no
/// synchronization, and no trial can observe another trial's corruption.
#[derive(Debug, Clone, Default)]
pub struct Binary {
    /// Decoded text section.
    pub text: Vec<MInstr>,
    /// Initial contents of the data segment (8-byte words).
    pub data: Vec<u64>,
    /// Function symbol table.
    pub symbols: Vec<Symbol>,
    /// Interned string literals referenced by `print_str`.
    pub strings: Vec<String>,
    /// Entry instruction index (start of `main`'s startup shim).
    pub entry: u32,
}

impl Binary {
    /// Serialize the text section to raw instruction words (the byte-level
    /// artifact a binary FI tool would patch).
    pub fn encode_text(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.text.len() * 2);
        for i in &self.text {
            let (w0, w1) = encode(i);
            words.push(w0);
            words.push(w1);
        }
        words
    }

    /// Rebuild a text section from raw words.
    pub fn decode_text(words: &[u64]) -> Result<Vec<MInstr>, DecodeError> {
        if !words.len().is_multiple_of(2) {
            return Err(DecodeError("odd word count".into()));
        }
        words
            .chunks_exact(2)
            .map(|c| decode(c[0], c[1]))
            .collect()
    }

    /// The function symbol containing instruction index `pc`, if any.
    pub fn symbol_at(&self, pc: u32) -> Option<&Symbol> {
        self.symbols.iter().find(|s| pc >= s.entry && pc < s.end)
    }

    /// Disassemble a function by name (used for the paper's listings).
    pub fn disasm(&self, func: &str) -> Option<String> {
        let sym = self.symbols.iter().find(|s| s.name == func)?;
        let mut out = format!("_{}:\n", sym.name);
        for idx in sym.entry..sym.end {
            out.push_str(&format!(
                "  .L{idx}: {}\n",
                self.text[idx as usize].asm()
            ));
        }
        Some(out)
    }

    /// Static instruction count (text section length).
    pub fn text_len(&self) -> usize {
        self.text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Mem};

    fn tiny() -> Binary {
        Binary {
            text: vec![
                MInstr::MovRI { rd: 0, imm: 7 },
                MInstr::AluI { op: AluOp::Add, rd: 0, ra: 0, imm: 1 },
                MInstr::Halt,
                MInstr::Ld { rd: 1, mem: Mem::abs(0x10000) },
                MInstr::Ret,
            ],
            data: vec![42],
            symbols: vec![
                Symbol { name: "main".into(), entry: 0, end: 3 },
                Symbol { name: "helper".into(), entry: 3, end: 5 },
            ],
            strings: vec!["hi".into()],
            entry: 0,
        }
    }

    #[test]
    fn text_roundtrip() {
        let b = tiny();
        let words = b.encode_text();
        assert_eq!(words.len(), b.text.len() * 2);
        let back = Binary::decode_text(&words).unwrap();
        assert_eq!(back, b.text);
    }

    #[test]
    fn symbol_lookup() {
        let b = tiny();
        assert_eq!(b.symbol_at(1).unwrap().name, "main");
        assert_eq!(b.symbol_at(4).unwrap().name, "helper");
        assert!(b.symbol_at(99).is_none());
    }

    #[test]
    fn disasm_contains_mnemonics() {
        let b = tiny();
        let d = b.disasm("main").unwrap();
        assert!(d.contains("_main:"));
        assert!(d.contains("mov r0, 7"));
        assert!(d.contains("halt"));
        assert!(b.disasm("nope").is_none());
    }
}
