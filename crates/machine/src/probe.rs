//! Dynamic binary instrumentation: the PIN analogue.
//!
//! A [`Probe`] registered with the machine is consulted before every
//! executed instruction and may request a single-bit flip of one of the
//! instruction's *output* registers after it retires — this is exactly how
//! PINFI operates. Each consulted instruction costs
//! [`Probe::overhead_cycles`] extra cycles (PIN's JIT + analysis-routine
//! overhead); after [`ProbeAction::Detach`] the program runs at native
//! speed, modelling the authors' detach optimization (§5.2).

use crate::isa::MInstr;

/// What the probe wants done for the instruction about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeAction {
    /// Execute normally; keep probing.
    Continue,
    /// Execute the instruction, then flip bit `bit` of its `op`-th output
    /// operand (as listed by [`crate::isa::fi_outputs`]); optionally detach.
    InjectAfter {
        /// Index into the instruction's output-operand list.
        op: usize,
        /// Bit to flip within that operand.
        bit: u32,
        /// Remove instrumentation afterwards.
        detach: bool,
    },
    /// Remove instrumentation; run natively from here on.
    Detach,
    /// Execute `instr` in place of the fetched instruction (opcode
    /// corruption that still decodes); optionally detach afterwards.
    Substitute {
        /// The instruction to execute instead.
        instr: MInstr,
        /// Remove instrumentation afterwards.
        detach: bool,
    },
    /// The fetched instruction's encoding was corrupted into an
    /// undecodable word: raise an illegal-instruction trap (`#UD`).
    IllegalInstr,
    /// Execute the instruction, then XOR output operand `op` with `mask`
    /// (multi-bit spatial upsets); optionally detach.
    InjectMaskAfter {
        /// Index into the instruction's output-operand list.
        op: usize,
        /// Bit mask to XOR into the operand.
        mask: u64,
        /// Remove instrumentation afterwards.
        detach: bool,
    },
}

/// A dynamic instrumentation client.
pub trait Probe {
    /// Called before each instruction while attached. `retired` is the
    /// number of instructions executed so far.
    fn before(&mut self, pc: u32, instr: &MInstr, retired: u64) -> ProbeAction;

    /// Per-instruction overhead in cycles while attached.
    fn overhead_cycles(&self) -> u64 {
        10
    }

    /// Number of FI population events this probe has counted so far.
    /// Checkpointed profiling stamps snapshots with this value; probes
    /// that keep no counter report 0.
    fn fi_count(&self) -> u64 {
        0
    }

    /// Has this probe injected its fault yet? Drives the fired-fault
    /// handoff of [`crate::Machine::run_exact_until_fired`]; probes that
    /// never inject report `false`.
    fn fired(&self) -> bool {
        false
    }
}

/// A probe that merely counts instructions matching a predicate — the
/// profiling phase of a binary-level FI campaign.
pub struct CountingProbe<F: FnMut(&MInstr) -> bool> {
    /// Number of matching dynamic instructions seen.
    pub count: u64,
    pred: F,
}

impl<F: FnMut(&MInstr) -> bool> CountingProbe<F> {
    /// New counting probe with the given match predicate.
    pub fn new(pred: F) -> Self {
        CountingProbe { count: 0, pred }
    }
}

impl<F: FnMut(&MInstr) -> bool> Probe for CountingProbe<F> {
    fn before(&mut self, _pc: u32, instr: &MInstr, _retired: u64) -> ProbeAction {
        if (self.pred)(instr) {
            self.count += 1;
        }
        ProbeAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, MInstr};

    #[test]
    fn counting_probe_counts_matches() {
        let mut p = CountingProbe::new(|i| matches!(i, MInstr::Alu { .. }));
        let alu = MInstr::Alu { op: AluOp::Add, rd: 0, ra: 0, rb: 1 };
        let nop = MInstr::Nop;
        assert_eq!(p.before(0, &alu, 0), ProbeAction::Continue);
        assert_eq!(p.before(1, &nop, 1), ProbeAction::Continue);
        assert_eq!(p.before(2, &alu, 2), ProbeAction::Continue);
        assert_eq!(p.count, 2);
    }
}
