//! Fixed-width binary encoding of M64 instructions.
//!
//! Every instruction is two 64-bit words: a packed opcode/register word and
//! an immediate word. The encoding exists so that the "binary" the linker
//! produces is a real byte artifact a binary-level tool can decode, and so
//! the encode/decode round trip can be property-tested.

use crate::isa::{AluOp, Cc, CvtKind, FAluOp, MInstr, Mem, RtFunc};

/// Errors decoding an instruction word pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

const NO_REG: u8 = 0xFF;

fn alu_u8(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::LShr => 9,
        AluOp::AShr => 10,
    }
}

fn u8_alu(v: u8) -> Result<AluOp, DecodeError> {
    Ok(match v {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Shl,
        9 => AluOp::LShr,
        10 => AluOp::AShr,
        _ => return Err(DecodeError(format!("bad alu op {v}"))),
    })
}

fn falu_u8(op: FAluOp) -> u8 {
    match op {
        FAluOp::Add => 0,
        FAluOp::Sub => 1,
        FAluOp::Mul => 2,
        FAluOp::Div => 3,
        FAluOp::Min => 4,
        FAluOp::Max => 5,
    }
}

fn u8_falu(v: u8) -> Result<FAluOp, DecodeError> {
    Ok(match v {
        0 => FAluOp::Add,
        1 => FAluOp::Sub,
        2 => FAluOp::Mul,
        3 => FAluOp::Div,
        4 => FAluOp::Min,
        5 => FAluOp::Max,
        _ => return Err(DecodeError(format!("bad falu op {v}"))),
    })
}

fn cc_u8(cc: Cc) -> u8 {
    match cc {
        Cc::E => 0,
        Cc::Ne => 1,
        Cc::Lt => 2,
        Cc::Le => 3,
        Cc::Gt => 4,
        Cc::Ge => 5,
    }
}

fn u8_cc(v: u8) -> Result<Cc, DecodeError> {
    Ok(match v {
        0 => Cc::E,
        1 => Cc::Ne,
        2 => Cc::Lt,
        3 => Cc::Le,
        4 => Cc::Gt,
        5 => Cc::Ge,
        _ => return Err(DecodeError(format!("bad cc {v}"))),
    })
}

fn cvt_u8(k: CvtKind) -> u8 {
    match k {
        CvtKind::SiToF => 0,
        CvtKind::FToSi => 1,
        CvtKind::BitsToF => 2,
        CvtKind::FToBits => 3,
    }
}

fn u8_cvt(v: u8) -> Result<CvtKind, DecodeError> {
    Ok(match v {
        0 => CvtKind::SiToF,
        1 => CvtKind::FToSi,
        2 => CvtKind::BitsToF,
        3 => CvtKind::FToBits,
        _ => return Err(DecodeError(format!("bad cvt {v}"))),
    })
}

fn rt_u8(f: RtFunc) -> u8 {
    match f {
        RtFunc::PrintI64 => 0,
        RtFunc::PrintF64 => 1,
        RtFunc::PrintStr => 2,
        RtFunc::Sqrt => 3,
        RtFunc::Fabs => 4,
        RtFunc::Exp => 5,
        RtFunc::Log => 6,
        RtFunc::Sin => 7,
        RtFunc::Cos => 8,
        RtFunc::Floor => 9,
        RtFunc::Pow => 10,
        RtFunc::Fmin => 11,
        RtFunc::Fmax => 12,
        RtFunc::FiSelInstr => 13,
        RtFunc::FiSetupFi => 14,
        RtFunc::LlfiInjectI => 15,
        RtFunc::LlfiInjectF => 16,
    }
}

fn u8_rt(v: u8) -> Result<RtFunc, DecodeError> {
    Ok(match v {
        0 => RtFunc::PrintI64,
        1 => RtFunc::PrintF64,
        2 => RtFunc::PrintStr,
        3 => RtFunc::Sqrt,
        4 => RtFunc::Fabs,
        5 => RtFunc::Exp,
        6 => RtFunc::Log,
        7 => RtFunc::Sin,
        8 => RtFunc::Cos,
        9 => RtFunc::Floor,
        10 => RtFunc::Pow,
        11 => RtFunc::Fmin,
        12 => RtFunc::Fmax,
        13 => RtFunc::FiSelInstr,
        14 => RtFunc::FiSetupFi,
        15 => RtFunc::LlfiInjectI,
        16 => RtFunc::LlfiInjectF,
        _ => return Err(DecodeError(format!("bad rtfunc {v}"))),
    })
}

fn pack(op: u16, b: [u8; 6]) -> u64 {
    (op as u64)
        | (b[0] as u64) << 16
        | (b[1] as u64) << 24
        | (b[2] as u64) << 32
        | (b[3] as u64) << 40
        | (b[4] as u64) << 48
        | (b[5] as u64) << 56
}

fn unpack(w: u64) -> (u16, [u8; 6]) {
    (
        w as u16,
        [
            (w >> 16) as u8,
            (w >> 24) as u8,
            (w >> 32) as u8,
            (w >> 40) as u8,
            (w >> 48) as u8,
            (w >> 56) as u8,
        ],
    )
}

fn mem_bytes(m: &Mem) -> [u8; 3] {
    [
        m.base.unwrap_or(NO_REG),
        m.index.map(|(r, _)| r).unwrap_or(NO_REG),
        m.index.map(|(_, s)| s).unwrap_or(0),
    ]
}

/// Encode one instruction to its two-word form.
pub fn encode(i: &MInstr) -> (u64, u64) {
    match i {
        MInstr::Nop => (pack(0, [0; 6]), 0),
        MInstr::MovRR { rd, ra } => (pack(1, [*rd, *ra, 0, 0, 0, 0]), 0),
        MInstr::MovRI { rd, imm } => (pack(2, [*rd, 0, 0, 0, 0, 0]), *imm as u64),
        MInstr::FMovRR { fd, fa } => (pack(3, [*fd, *fa, 0, 0, 0, 0]), 0),
        MInstr::FMovRI { fd, imm } => (pack(4, [*fd, 0, 0, 0, 0, 0]), *imm),
        MInstr::Alu { op, rd, ra, rb } => (pack(5, [alu_u8(*op), *rd, *ra, *rb, 0, 0]), 0),
        MInstr::AluI { op, rd, ra, imm } => {
            (pack(6, [alu_u8(*op), *rd, *ra, 0, 0, 0]), *imm as u64)
        }
        MInstr::Cmp { ra, rb } => (pack(7, [*ra, *rb, 0, 0, 0, 0]), 0),
        MInstr::CmpI { ra, imm } => (pack(8, [*ra, 0, 0, 0, 0, 0]), *imm as u64),
        MInstr::SetCc { cc, rd } => (pack(9, [cc_u8(*cc), *rd, 0, 0, 0, 0]), 0),
        MInstr::FAlu { op, fd, fa, fb } => (pack(10, [falu_u8(*op), *fd, *fa, *fb, 0, 0]), 0),
        MInstr::FCmp { fa, fb } => (pack(11, [*fa, *fb, 0, 0, 0, 0]), 0),
        MInstr::Cvt { kind, dst, src } => (pack(12, [cvt_u8(*kind), *dst, *src, 0, 0, 0]), 0),
        MInstr::Ld { rd, mem } => {
            let mb = mem_bytes(mem);
            (pack(13, [*rd, mb[0], mb[1], mb[2], 0, 0]), mem.disp as u64)
        }
        MInstr::St { rs, mem } => {
            let mb = mem_bytes(mem);
            (pack(14, [*rs, mb[0], mb[1], mb[2], 0, 0]), mem.disp as u64)
        }
        MInstr::FLd { fd, mem } => {
            let mb = mem_bytes(mem);
            (pack(15, [*fd, mb[0], mb[1], mb[2], 0, 0]), mem.disp as u64)
        }
        MInstr::FSt { fs, mem } => {
            let mb = mem_bytes(mem);
            (pack(16, [*fs, mb[0], mb[1], mb[2], 0, 0]), mem.disp as u64)
        }
        MInstr::Push { rs } => (pack(17, [*rs, 0, 0, 0, 0, 0]), 0),
        MInstr::Pop { rd } => (pack(18, [*rd, 0, 0, 0, 0, 0]), 0),
        MInstr::Jmp { target } => (pack(19, [0; 6]), *target as u64),
        MInstr::Jcc { cc, target } => (pack(20, [cc_u8(*cc), 0, 0, 0, 0, 0]), *target as u64),
        MInstr::Call { target } => (pack(21, [0; 6]), *target as u64),
        MInstr::Ret => (pack(22, [0; 6]), 0),
        MInstr::CallRt { func, imm } => (pack(23, [rt_u8(*func), 0, 0, 0, 0, 0]), *imm),
        MInstr::RdFlags { rd } => (pack(24, [*rd, 0, 0, 0, 0, 0]), 0),
        MInstr::WrFlags { rs } => (pack(25, [*rs, 0, 0, 0, 0, 0]), 0),
        MInstr::FXorI { fd, imm } => (pack(26, [*fd, 0, 0, 0, 0, 0]), *imm),
        MInstr::Halt => (pack(27, [0; 6]), 0),
        MInstr::Lea { rd, mem } => {
            let mb = mem_bytes(mem);
            (pack(28, [*rd, mb[0], mb[1], mb[2], 0, 0]), mem.disp as u64)
        }
    }
}

/// Validate a register field (the register files have 16 entries; any
/// other value is an invalid encoding, like a bad ModRM on x64).
fn reg(v: u8) -> Result<u8, DecodeError> {
    if v < 16 {
        Ok(v)
    } else {
        Err(DecodeError(format!("bad register field {v}")))
    }
}

/// Validate a memory operand's fields.
fn mem_checked(b0: u8, b1: u8, b2: u8, disp: i64) -> Result<Mem, DecodeError> {
    let base = if b0 == NO_REG { None } else { Some(reg(b0)?) };
    let index = if b1 == NO_REG {
        if b2 != 0 {
            return Err(DecodeError("scale without index".into()));
        }
        None
    } else {
        if !matches!(b2, 1 | 2 | 4 | 8) {
            return Err(DecodeError(format!("bad scale {b2}")));
        }
        Some((reg(b1)?, b2))
    };
    Ok(Mem { base, index, disp })
}

/// Decode a two-word instruction.
pub fn decode(w0: u64, w1: u64) -> Result<MInstr, DecodeError> {
    let (op, b) = unpack(w0);
    Ok(match op {
        0 => MInstr::Nop,
        1 => MInstr::MovRR { rd: reg(b[0])?, ra: reg(b[1])? },
        2 => MInstr::MovRI { rd: reg(b[0])?, imm: w1 as i64 },
        3 => MInstr::FMovRR { fd: reg(b[0])?, fa: reg(b[1])? },
        4 => MInstr::FMovRI { fd: reg(b[0])?, imm: w1 },
        5 => MInstr::Alu { op: u8_alu(b[0])?, rd: reg(b[1])?, ra: reg(b[2])?, rb: reg(b[3])? },
        6 => MInstr::AluI { op: u8_alu(b[0])?, rd: reg(b[1])?, ra: reg(b[2])?, imm: w1 as i64 },
        7 => MInstr::Cmp { ra: reg(b[0])?, rb: reg(b[1])? },
        8 => MInstr::CmpI { ra: reg(b[0])?, imm: w1 as i64 },
        9 => MInstr::SetCc { cc: u8_cc(b[0])?, rd: reg(b[1])? },
        10 => MInstr::FAlu { op: u8_falu(b[0])?, fd: reg(b[1])?, fa: reg(b[2])?, fb: reg(b[3])? },
        11 => MInstr::FCmp { fa: reg(b[0])?, fb: reg(b[1])? },
        12 => MInstr::Cvt { kind: u8_cvt(b[0])?, dst: reg(b[1])?, src: reg(b[2])? },
        13 => MInstr::Ld { rd: reg(b[0])?, mem: mem_checked(b[1], b[2], b[3], w1 as i64)? },
        14 => MInstr::St { rs: reg(b[0])?, mem: mem_checked(b[1], b[2], b[3], w1 as i64)? },
        15 => MInstr::FLd { fd: reg(b[0])?, mem: mem_checked(b[1], b[2], b[3], w1 as i64)? },
        16 => MInstr::FSt { fs: reg(b[0])?, mem: mem_checked(b[1], b[2], b[3], w1 as i64)? },
        17 => MInstr::Push { rs: reg(b[0])? },
        18 => MInstr::Pop { rd: reg(b[0])? },
        19 => MInstr::Jmp { target: w1 as u32 },
        20 => MInstr::Jcc { cc: u8_cc(b[0])?, target: w1 as u32 },
        21 => MInstr::Call { target: w1 as u32 },
        22 => MInstr::Ret,
        23 => MInstr::CallRt { func: u8_rt(b[0])?, imm: w1 },
        24 => MInstr::RdFlags { rd: reg(b[0])? },
        25 => MInstr::WrFlags { rs: reg(b[0])? },
        26 => MInstr::FXorI { fd: reg(b[0])?, imm: w1 },
        27 => MInstr::Halt,
        28 => MInstr::Lea { rd: reg(b[0])?, mem: mem_checked(b[1], b[2], b[3], w1 as i64)? },
        other => return Err(DecodeError(format!("bad opcode {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_instrs() -> Vec<MInstr> {
        vec![
            MInstr::Nop,
            MInstr::MovRR { rd: 3, ra: 7 },
            MInstr::MovRI { rd: 0, imm: -12345 },
            MInstr::FMovRI { fd: 9, imm: 1.5f64.to_bits() },
            MInstr::Alu { op: AluOp::Xor, rd: 1, ra: 2, rb: 3 },
            MInstr::AluI { op: AluOp::Shl, rd: 4, ra: 4, imm: 3 },
            MInstr::Cmp { ra: 5, rb: 6 },
            MInstr::CmpI { ra: 5, imm: i64::MIN },
            MInstr::SetCc { cc: Cc::Le, rd: 2 },
            MInstr::FAlu { op: FAluOp::Max, fd: 0, fa: 1, fb: 2 },
            MInstr::FCmp { fa: 3, fb: 4 },
            MInstr::Cvt { kind: CvtKind::FToSi, dst: 1, src: 2 },
            MInstr::Ld { rd: 2, mem: Mem { base: Some(14), index: Some((3, 8)), disp: -64 } },
            MInstr::St { rs: 2, mem: Mem::abs(0x10000) },
            MInstr::FLd { fd: 5, mem: Mem::base_disp(1, 24) },
            MInstr::FSt { fs: 5, mem: Mem::base_disp(15, -8) },
            MInstr::Push { rs: 14 },
            MInstr::Pop { rd: 14 },
            MInstr::Jmp { target: 42 },
            MInstr::Jcc { cc: Cc::Gt, target: 7 },
            MInstr::Call { target: 100 },
            MInstr::Ret,
            MInstr::CallRt { func: RtFunc::FiSelInstr, imm: 0xabcdef },
            MInstr::RdFlags { rd: 8 },
            MInstr::WrFlags { rs: 8 },
            MInstr::FXorI { fd: 7, imm: 1 << 63 },
            MInstr::Halt,
            MInstr::Lea { rd: 4, mem: Mem { base: Some(14), index: Some((2, 8)), disp: -48 } },
        ]
    }

    #[test]
    fn roundtrip_all_shapes() {
        for i in sample_instrs() {
            let (w0, w1) = encode(&i);
            assert_eq!(decode(w0, w1).unwrap(), i, "roundtrip failed for {i:?}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(decode(9999, 0).is_err());
        assert!(decode(pack(5, [200, 0, 0, 0, 0, 0]), 0).is_err()); // bad alu sub-op
    }

    proptest! {
        /// Immediates of any value round-trip exactly.
        #[test]
        fn prop_roundtrip_imm(imm in any::<i64>(), rd in 0u8..16, ra in 0u8..16) {
            let i = MInstr::AluI { op: AluOp::Add, rd, ra, imm };
            let (w0, w1) = encode(&i);
            prop_assert_eq!(decode(w0, w1).unwrap(), i);
        }

        /// Memory operands with arbitrary components round-trip.
        #[test]
        fn prop_roundtrip_mem(
            rd in 0u8..16,
            base in proptest::option::of(0u8..16),
            index in proptest::option::of((0u8..16, prop_oneof![Just(1u8), Just(8u8)])),
            disp in any::<i32>(),
        ) {
            let mem = Mem { base, index, disp: disp as i64 };
            let i = MInstr::Ld { rd, mem };
            let (w0, w1) = encode(&i);
            prop_assert_eq!(decode(w0, w1).unwrap(), i);
        }
    }
}
