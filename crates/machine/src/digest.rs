//! Incremental state digests for post-injection golden-convergence
//! detection.
//!
//! A fault-injection trial whose full architectural state (registers,
//! flags, pc, memory, emitted output, FI-event counter) equals the golden
//! profiling run's state at the *same `(fi_count, pc)` point* has a
//! deterministic remainder identical to the golden run's — its verdict is
//! decidable without executing the suffix. This module provides the digest
//! the two sides compare:
//!
//! * the golden side stamps every [`crate::Checkpoint`] with a
//!   [`StateDigest`] computed from the snapshot's dirty pages against
//!   precomputed [`BaselineHashes`] — O(dirty pages) per interval on top of
//!   the page diff the snapshot already performs;
//! * the trial side maintains a [`ConvHasher`]: per-page hash tables seeded
//!   by one baseline scan at the first checkpoint boundary after the fault
//!   fires, then updated incrementally from the write-tracking dirty list —
//!   O(pages written since the last boundary) per comparison.
//!
//! Memory hashing is additive (an AdHash-style commutative aggregate of
//! per-page hashes, each binding its page index), which is what makes both
//! incremental maintenance and the checkpoint-side dirty-page shortcut
//! exact rather than approximate. The digest carries two independently
//! seeded 64-bit lanes; a false convergence requires a simultaneous
//! collision in both (probability ~2^-128 per comparison, vastly below the
//! fault-sampling noise floor of a 1068-trial campaign).
//!
//! A data-segment word range can be *exempted* from the digest (hashed as
//! zero on both sides): REFINE's trigger-path scratch slot is written only
//! by the fired trial's taken injection branch and is dead from every pc
//! the golden run can reach, so its stale content must not block an
//! otherwise exact state match. See
//! [`crate::CheckpointConfig::exempt_data_words`].

use crate::checkpoint::{DirtyPage, PAGE_WORDS};
use crate::machine::OutEvent;

/// Independent lane count of the digest (128 bits total).
pub const LANES: usize = 2;

/// Per-lane seeds (pi digits).
const LANE_SEED: [u64; LANES] = [0x243F_6A88_85A3_08D3, 0x1319_8A2E_0370_7344];
/// Per-lane odd multipliers (golden-ratio and xxHash primes).
const LANE_MUL: [u64; LANES] = [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F];

/// splitmix64 finalizer: diffuses every input bit across the word.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash one page's content for one lane. Page hashes enter the memory
/// aggregate by wrapping addition, so each must bind its page index (two
/// pages swapping contents must change the aggregate).
#[inline]
pub fn page_hash(lane: usize, index: u32, words: &[u64]) -> u64 {
    let m = LANE_MUL[lane];
    let mut h = LANE_SEED[lane] ^ (index as u64 + 1).wrapping_mul(m);
    for &w in words {
        h = (h ^ w).wrapping_mul(m);
        h ^= h >> 29;
    }
    mix(h)
}

/// [`page_hash`] with the words of `exempt` (a `(start word, count)` range
/// in segment word indices) substituted by zero, so digest-exempt scratch
/// slots hash identically no matter what they hold. Both the golden and the
/// trial side must apply the same exemption for digests to be comparable.
#[inline]
fn page_hash_exempt(exempt: (u32, u32), lane: usize, index: u32, words: &[u64]) -> u64 {
    let (start, len) = (exempt.0 as usize, exempt.1 as usize);
    let page_start = index as usize * PAGE_WORDS;
    let lo = start.max(page_start);
    let hi = (start + len).min(page_start + words.len());
    if len == 0 || lo >= hi {
        return page_hash(lane, index, words);
    }
    let mut buf = [0u64; PAGE_WORDS];
    buf[..words.len()].copy_from_slice(words);
    buf[lo - page_start..hi - page_start].fill(0);
    page_hash(lane, index, &buf[..words.len()])
}

/// A two-lane state digest. Equality means "architectural state, output
/// stream and FI counter are (with ~2^-128 collision probability)
/// bit-identical".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateDigest(pub [u64; LANES]);

impl StateDigest {
    /// Placeholder for snapshots whose digest has not been stamped yet
    /// (the builder overwrites it at push time).
    pub const ZERO: StateDigest = StateDigest([0; LANES]);
}

/// Sequential two-lane absorber for the output-event stream. Both the
/// golden and the trial side must absorb the identical event sequence to
/// produce equal states.
#[derive(Debug, Clone, Copy)]
pub struct OutputHasher {
    h: [u64; LANES],
}

impl Default for OutputHasher {
    fn default() -> Self {
        OutputHasher { h: LANE_SEED }
    }
}

impl OutputHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        for (h, &m) in self.h.iter_mut().zip(&LANE_MUL) {
            *h = (*h ^ w).wrapping_mul(m);
            *h ^= *h >> 29;
        }
    }

    /// Absorb one output event (tag + raw payload bits; `f64` by bit
    /// pattern, so the digest is stricter than any formatted comparison).
    pub fn absorb(&mut self, ev: &OutEvent) {
        match ev {
            OutEvent::I64(v) => {
                self.word(1);
                self.word(*v as u64);
            }
            OutEvent::F64(v) => {
                self.word(2);
                self.word(v.to_bits());
            }
            OutEvent::Str(s) => {
                self.word(3);
                self.word(s.len() as u64);
                for chunk in s.as_bytes().chunks(8) {
                    let mut buf = [0u8; 8];
                    buf[..chunk.len()].copy_from_slice(chunk);
                    self.word(u64::from_le_bytes(buf));
                }
            }
        }
    }
}

/// Combine the architectural scalars, the output stream and the memory
/// aggregate into the final digest. Shared verbatim by the golden
/// (checkpoint) and trial (incremental) sides.
#[allow(clippy::too_many_arguments)]
pub fn combine_digest(
    regs: &[u64; 16],
    fregs: &[u64; 16],
    flags: u8,
    pc: u32,
    fi_count: u64,
    out_len: usize,
    out: &OutputHasher,
    mem_agg: [u64; LANES],
) -> StateDigest {
    let mut d = [0u64; LANES];
    for l in 0..LANES {
        let m = LANE_MUL[l];
        let mut h = LANE_SEED[l];
        let mut absorb = |w: u64| {
            h = (h ^ w).wrapping_mul(m);
            h ^= h >> 29;
        };
        for &r in regs {
            absorb(r);
        }
        for &f in fregs {
            absorb(f);
        }
        absorb((flags as u64) << 32 | pc as u64);
        absorb(fi_count);
        absorb(out_len as u64);
        absorb(out.h[l]);
        absorb(mem_agg[l]);
        d[l] = mix(h);
    }
    StateDigest(d)
}

/// Precomputed per-page hashes of the baseline memory image (the binary's
/// data segment and the all-zero stack) plus their additive aggregate.
/// Built once per profiling run and shared read-only with every trial.
#[derive(Debug, Clone)]
pub struct BaselineHashes {
    /// Per-lane per-page hashes of the data-segment baseline.
    pub data: [Vec<u64>; LANES],
    /// Per-lane per-page hashes of the zeroed stack.
    pub stack: [Vec<u64>; LANES],
    /// Per-lane wrapping sum over all baseline pages (data + stack).
    pub agg: [u64; LANES],
    /// Data-segment word range `(start, count)` excluded from the digest
    /// (instrumentation scratch written only on the taken injection branch,
    /// dead from every pc the golden run can reach). `(0, 0)` = none.
    pub exempt: (u32, u32),
}

impl BaselineHashes {
    /// Hash the baseline image: `data` is the binary's data segment,
    /// `stack_words` the stack geometry of the runs to be digested, and
    /// `exempt` a data-segment word range to exclude from every digest.
    pub fn new(data: &[u64], stack_words: usize, exempt: (u32, u32)) -> BaselineHashes {
        let zeros = [0u64; PAGE_WORDS];
        let mut b = BaselineHashes {
            data: [Vec::new(), Vec::new()],
            stack: [Vec::new(), Vec::new()],
            agg: [0; LANES],
            exempt,
        };
        for l in 0..LANES {
            for (i, chunk) in data.chunks(PAGE_WORDS).enumerate() {
                let h = page_hash_exempt(exempt, l, i as u32, chunk);
                b.agg[l] = b.agg[l].wrapping_add(h);
                b.data[l].push(h);
            }
            let mut left = stack_words;
            let mut i = 0u32;
            while left > 0 {
                let n = left.min(PAGE_WORDS);
                let h = page_hash(l, i, &zeros[..n]);
                b.agg[l] = b.agg[l].wrapping_add(h);
                b.stack[l].push(h);
                left -= n;
                i += 1;
            }
        }
        b
    }

    /// Digest of a golden-run snapshot directly from its dirty-page diff:
    /// start from the baseline aggregate and swap in the hash of each page
    /// the snapshot captured — O(dirty pages).
    #[allow(clippy::too_many_arguments)]
    pub fn checkpoint_digest(
        &self,
        regs: &[u64; 16],
        fregs: &[u64; 16],
        flags: u8,
        pc: u32,
        fi_count: u64,
        output: &[OutEvent],
        data_pages: &[DirtyPage],
        stack_pages: &[DirtyPage],
    ) -> StateDigest {
        let mut agg = self.agg;
        for (l, a) in agg.iter_mut().enumerate() {
            for p in data_pages {
                let h = page_hash_exempt(self.exempt, l, p.index, &p.words);
                *a = a.wrapping_sub(self.data[l][p.index as usize]).wrapping_add(h);
            }
            for p in stack_pages {
                let h = page_hash(l, p.index, &p.words);
                *a = a.wrapping_sub(self.stack[l][p.index as usize]).wrapping_add(h);
            }
        }
        let mut out = OutputHasher::default();
        for ev in output {
            out.absorb(ev);
        }
        combine_digest(regs, fregs, flags, pc, fi_count, output.len(), &out, agg)
    }
}

/// The trial side's incremental memory/output hasher, owned by the machine
/// while its convergence loop runs. Seeded by one full baseline scan at
/// the first checkpoint boundary after the fault fired; thereafter the
/// tracked interpreter marks written pages and [`ConvHasher::refresh`]
/// rehashes only those.
#[derive(Debug)]
pub struct ConvHasher {
    data: [Vec<u64>; LANES],
    stack: [Vec<u64>; LANES],
    agg: [u64; LANES],
    exempt: (u32, u32),
    data_bits: Vec<u64>,
    stack_bits: Vec<u64>,
    data_dirty: Vec<u32>,
    stack_dirty: Vec<u32>,
    out: OutputHasher,
    out_done: usize,
}

impl ConvHasher {
    /// Build the hasher from the current machine memory by scanning it
    /// against the baseline: clean pages reuse the precomputed baseline
    /// hash (a page-sized compare), touched pages are rehashed. Also
    /// absorbs the output emitted so far.
    pub fn scan(
        base: &BaselineHashes,
        data: &[u64],
        data_baseline: &[u64],
        stack: &[u64],
        output: &[OutEvent],
    ) -> ConvHasher {
        let mut h = ConvHasher {
            data: base.data.clone(),
            stack: base.stack.clone(),
            agg: base.agg,
            exempt: base.exempt,
            data_bits: vec![0; base.data[0].len().div_ceil(64)],
            stack_bits: vec![0; base.stack[0].len().div_ceil(64)],
            data_dirty: Vec::new(),
            stack_dirty: Vec::new(),
            out: OutputHasher::default(),
            out_done: output.len(),
        };
        debug_assert_eq!(data.len(), data_baseline.len());
        for (i, chunk) in data.chunks(PAGE_WORDS).enumerate() {
            let start = i * PAGE_WORDS;
            if chunk != &data_baseline[start..start + chunk.len()] {
                h.rehash(i as u32, chunk, Seg::Data);
            }
        }
        for (i, chunk) in stack.chunks(PAGE_WORDS).enumerate() {
            if chunk.iter().any(|&w| w != 0) {
                h.rehash(i as u32, chunk, Seg::Stack);
            }
        }
        for ev in output {
            h.out.absorb(ev);
        }
        h
    }

    #[inline]
    fn rehash(&mut self, index: u32, words: &[u64], seg: Seg) {
        for l in 0..LANES {
            let slot = match seg {
                Seg::Data => &mut self.data[l][index as usize],
                Seg::Stack => &mut self.stack[l][index as usize],
            };
            let old = *slot;
            let new = match seg {
                Seg::Data => page_hash_exempt(self.exempt, l, index, words),
                Seg::Stack => page_hash(l, index, words),
            };
            *slot = new;
            self.agg[l] = self.agg[l].wrapping_sub(old).wrapping_add(new);
        }
    }

    /// Mark a data-segment page as written since the last refresh.
    #[inline]
    pub fn mark_data(&mut self, page: u32) {
        let (w, b) = (page as usize / 64, page % 64);
        if self.data_bits[w] & (1 << b) == 0 {
            self.data_bits[w] |= 1 << b;
            self.data_dirty.push(page);
        }
    }

    /// Mark a stack page as written since the last refresh.
    #[inline]
    pub fn mark_stack(&mut self, page: u32) {
        let (w, b) = (page as usize / 64, page % 64);
        if self.stack_bits[w] & (1 << b) == 0 {
            self.stack_bits[w] |= 1 << b;
            self.stack_dirty.push(page);
        }
    }

    /// Bring the page hashes and output absorber up to date with the
    /// machine's current memory and output — O(pages written + events
    /// emitted since the last refresh).
    pub fn refresh(&mut self, data: &[u64], stack: &[u64], output: &[OutEvent]) {
        let mut dirty = std::mem::take(&mut self.data_dirty);
        for &p in &dirty {
            let start = p as usize * PAGE_WORDS;
            let end = (start + PAGE_WORDS).min(data.len());
            self.rehash(p, &data[start..end], Seg::Data);
            self.data_bits[p as usize / 64] &= !(1 << (p % 64));
        }
        dirty.clear();
        self.data_dirty = dirty;
        let mut dirty = std::mem::take(&mut self.stack_dirty);
        for &p in &dirty {
            let start = p as usize * PAGE_WORDS;
            let end = (start + PAGE_WORDS).min(stack.len());
            self.rehash(p, &stack[start..end], Seg::Stack);
            self.stack_bits[p as usize / 64] &= !(1 << (p % 64));
        }
        dirty.clear();
        self.stack_dirty = dirty;
        for ev in &output[self.out_done..] {
            self.out.absorb(ev);
        }
        self.out_done = output.len();
    }

    /// Final digest over the refreshed state plus the architectural
    /// scalars. Call [`ConvHasher::refresh`] first.
    pub fn digest(
        &self,
        regs: &[u64; 16],
        fregs: &[u64; 16],
        flags: u8,
        pc: u32,
        fi_count: u64,
    ) -> StateDigest {
        combine_digest(regs, fregs, flags, pc, fi_count, self.out_done, &self.out, self.agg)
    }
}

#[derive(Clone, Copy)]
enum Seg {
    Data,
    Stack,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(
        base: &BaselineHashes,
        data: &[u64],
        data_baseline: &[u64],
        stack: &[u64],
        output: &[OutEvent],
    ) -> StateDigest {
        let h = ConvHasher::scan(base, data, data_baseline, stack, output);
        h.digest(&[0; 16], &[0; 16], 0, 0, 0)
    }

    #[test]
    fn scan_of_baseline_matches_aggregate() {
        let data: Vec<u64> = (0..300).collect();
        let base = BaselineHashes::new(&data, 200, (0, 0));
        let stack = vec![0u64; 200];
        let h = ConvHasher::scan(&base, &data, &data, &stack, &[]);
        assert_eq!(h.agg, base.agg);
    }

    #[test]
    fn incremental_refresh_equals_full_scan() {
        let baseline: Vec<u64> = (0..300).map(|i| i * 7).collect();
        let base = BaselineHashes::new(&baseline, 200, (0, 0));
        let mut data = baseline.clone();
        let mut stack = vec![0u64; 200];
        let mut h = ConvHasher::scan(&base, &data, &baseline, &stack, &[]);

        // Mutate a few words across pages, marking as the machine would.
        data[3] = 111;
        h.mark_data(3 / PAGE_WORDS as u32);
        data[130] = 222;
        h.mark_data((130 / PAGE_WORDS) as u32);
        stack[70] = 333;
        h.mark_stack((70 / PAGE_WORDS) as u32);
        let out = vec![OutEvent::I64(9), OutEvent::Str("x".into())];
        h.refresh(&data, &stack, &out);

        let want = digest_of(&base, &data, &baseline, &stack, &out);
        assert_eq!(h.digest(&[0; 16], &[0; 16], 0, 0, 0), want);
    }

    #[test]
    fn double_mark_and_revert_stay_consistent() {
        let baseline: Vec<u64> = vec![5; 2 * PAGE_WORDS];
        let base = BaselineHashes::new(&baseline, PAGE_WORDS, (0, 0));
        let mut data = baseline.clone();
        let stack = vec![0u64; PAGE_WORDS];
        let mut h = ConvHasher::scan(&base, &data, &baseline, &stack, &[]);
        // Write and write back: page hash must return to baseline.
        data[0] = 99;
        h.mark_data(0);
        h.mark_data(0); // duplicate marks must not double-count
        h.refresh(&data, &stack, &[]);
        data[0] = 5;
        h.mark_data(0);
        h.refresh(&data, &stack, &[]);
        assert_eq!(h.agg, base.agg);
    }

    #[test]
    fn checkpoint_digest_matches_trial_scan() {
        let baseline: Vec<u64> = (0..256).map(|i| i ^ 42).collect();
        let base = BaselineHashes::new(&baseline, 150, (0, 0));
        let mut data = baseline.clone();
        let mut stack = vec![0u64; 150];
        data[65] = 7;
        stack[149] = 8;
        let out = vec![OutEvent::F64(1.5)];
        let regs = [3u64; 16];
        let fregs = [4u64; 16];

        let data_pages = crate::checkpoint::diff_pages(&data, Some(&baseline));
        let stack_pages = crate::checkpoint::diff_pages(&stack, None);
        let golden = base.checkpoint_digest(
            &regs, &fregs, 2, 17, 5, &out, &data_pages, &stack_pages,
        );
        let h = ConvHasher::scan(&base, &data, &baseline, &stack, &out);
        assert_eq!(h.digest(&regs, &fregs, 2, 17, 5), golden);
    }

    #[test]
    fn digest_distinguishes_each_component() {
        let baseline: Vec<u64> = vec![0; PAGE_WORDS];
        let base = BaselineHashes::new(&baseline, PAGE_WORDS, (0, 0));
        let stack = vec![0u64; PAGE_WORDS];
        let d0 = digest_of(&base, &baseline, &baseline, &stack, &[]);

        let mut regs = [0u64; 16];
        regs[7] = 1;
        let h = ConvHasher::scan(&base, &baseline, &baseline, &stack, &[]);
        assert_ne!(h.digest(&regs, &[0; 16], 0, 0, 0), d0, "regs");
        assert_ne!(h.digest(&[0; 16], &[0; 16], 1, 0, 0), d0, "flags");
        assert_ne!(h.digest(&[0; 16], &[0; 16], 0, 1, 0), d0, "pc");
        assert_ne!(h.digest(&[0; 16], &[0; 16], 0, 0, 1), d0, "fi_count");

        let mut data = baseline.clone();
        data[9] = 1;
        assert_ne!(digest_of(&base, &data, &baseline, &stack, &[]), d0, "memory");
        let out = vec![OutEvent::I64(0)];
        assert_ne!(digest_of(&base, &baseline, &baseline, &stack, &out), d0, "output");
        // f64 payloads are compared by bit pattern: 0.0 != -0.0.
        let a = vec![OutEvent::F64(0.0)];
        let b = vec![OutEvent::F64(-0.0)];
        assert_ne!(
            digest_of(&base, &baseline, &baseline, &stack, &a),
            digest_of(&base, &baseline, &baseline, &stack, &b),
            "f64 bits"
        );
    }

    #[test]
    fn exempt_words_do_not_affect_digest() {
        let baseline: Vec<u64> = vec![0; 2 * PAGE_WORDS];
        let exempt = (PAGE_WORDS as u32 + 3, 1);
        let base = BaselineHashes::new(&baseline, PAGE_WORDS, exempt);
        let stack = vec![0u64; PAGE_WORDS];
        let d0 = digest_of(&base, &baseline, &baseline, &stack, &[]);

        // Writing the exempt word must not change the digest, on either
        // the full-scan or the incremental path.
        let mut data = baseline.clone();
        data[PAGE_WORDS + 3] = 0xDEAD_BEEF;
        assert_eq!(digest_of(&base, &data, &baseline, &stack, &[]), d0, "scan path");
        let mut h = ConvHasher::scan(&base, &baseline, &baseline, &stack, &[]);
        h.mark_data(1);
        h.refresh(&data, &stack, &[]);
        assert_eq!(h.digest(&[0; 16], &[0; 16], 0, 0, 0), d0, "incremental path");

        // ... and the golden (checkpoint) side must agree.
        let pages = crate::checkpoint::diff_pages(&data, Some(&baseline));
        let golden = base.checkpoint_digest(
            &[0; 16], &[0; 16], 0, 0, 0, &[], &pages, &[],
        );
        assert_eq!(golden, d0, "checkpoint path");

        // A neighbouring (non-exempt) word still changes it.
        let mut data = baseline.clone();
        data[PAGE_WORDS + 4] = 1;
        assert_ne!(digest_of(&base, &data, &baseline, &stack, &[]), d0);
    }

    #[test]
    fn page_hash_binds_index() {
        let words = [7u64; PAGE_WORDS];
        assert_ne!(page_hash(0, 0, &words), page_hash(0, 1, &words));
        assert_ne!(page_hash(0, 0, &words), page_hash(1, 0, &words));
    }
}
