#![warn(missing_docs)]

//! `refine-benchmarks` — MiniLang mini-kernels of the paper's 14 HPC
//! benchmark programs (Table 3).
//!
//! Each program is a deterministic, single-threaded reduction of the real
//! application's computational core: the same loop/array/call structure and
//! arithmetic mix, scaled so one run executes tens of thousands of machine
//! instructions (the campaign executes 44,856 runs, as in the paper). Each
//! prints a small set of final results — the golden output used for Silent
//! Output Corruption classification.
//!
//! | name      | kernel reproduced |
//! |-----------|-------------------|
//! | AMG2013   | two-level multigrid V-cycles, Jacobi smoother, 2-D Poisson |
//! | CoMD      | Lennard-Jones molecular dynamics, O(N²) forces, velocity Verlet |
//! | HPCCG-1.0 | conjugate gradient on a 3-D 7-point Laplacian |
//! | lulesh    | 1-D staggered-grid Lagrangian shock hydro (Sod problem) |
//! | XSBench   | unionized-energy-grid macroscopic cross-section lookups |
//! | miniFE    | structured finite-element assembly + CG solve |
//! | BT        | block-tridiagonal ADI: per-line Thomas solves in 3 dims |
//! | CG        | NPB CG: sparse matvec power iteration with shift |
//! | DC        | data-cube group-by aggregation over generated tuples |
//! | EP        | NPB EP: Marsaglia polar acceptance + Gaussian tallies |
//! | FT        | radix-2 complex FFT rows + spectral evolution |
//! | LU        | SSOR sweeps over a coupled 5-equation grid |
//! | SP        | scalar-pentadiagonal ADI sweeps |
//! | UA        | unstructured adaptive proxy: irregular gather/scatter + refinement |

pub mod programs;

use refine_ir::Module;

/// One benchmark program of the suite.
#[derive(Debug, Clone)]
pub struct BenchProgram {
    /// Paper name (Table 3).
    pub name: &'static str,
    /// What the mini-kernel reproduces.
    pub description: &'static str,
    /// The input configuration (our analogue of Table 3's input column).
    pub input: &'static str,
    /// MiniLang source.
    pub source: &'static str,
}

impl BenchProgram {
    /// Compile the program to IR.
    pub fn module(&self) -> Module {
        refine_frontend::compile_source(self.source)
            .unwrap_or_else(|e| panic!("benchmark {} failed to compile: {e}", self.name))
    }
}

/// The full suite, in the paper's presentation order.
pub fn all() -> Vec<BenchProgram> {
    vec![
        programs::amg2013(),
        programs::comd(),
        programs::hpccg(),
        programs::lulesh(),
        programs::xsbench(),
        programs::minife(),
        programs::bt(),
        programs::cg(),
        programs::dc(),
        programs::ep(),
        programs::ft(),
        programs::lu(),
        programs::sp(),
        programs::ua(),
    ]
}

/// Extra demo programs reachable by name but not part of the paper's
/// 14-app suite (so [`all`] keeps the paper's presentation exactly).
pub fn extras() -> Vec<BenchProgram> {
    vec![programs::matmul()]
}

/// Look a benchmark up by name, searching the paper suite and the extras.
pub fn by_name(name: &str) -> Option<BenchProgram> {
    all().into_iter().chain(extras()).find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_ir::interp::Interp;

    #[test]
    fn suite_has_fourteen_programs() {
        let suite = all();
        assert_eq!(suite.len(), 14);
        let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14, "names must be unique");
    }

    #[test]
    fn every_program_compiles_and_runs_clean() {
        for b in all() {
            let m = b.module();
            let r = Interp::new(&m, 80_000_000)
                .run()
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            assert_eq!(r.exit_code, 0, "{} must exit 0", b.name);
            assert!(
                r.output.len() >= 2,
                "{} must print at least a couple of results",
                b.name
            );
        }
    }

    #[test]
    fn outputs_are_deterministic() {
        for b in all() {
            let m = b.module();
            let r1 = Interp::new(&m, 80_000_000).run().unwrap();
            let r2 = Interp::new(&m, 80_000_000).run().unwrap();
            assert_eq!(r1.output, r2.output, "{} must be deterministic", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("HPCCG-1.0").is_some());
        assert!(by_name("UA").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn extras_run_clean_but_stay_out_of_the_suite() {
        for b in extras() {
            assert!(all().iter().all(|s| s.name != b.name), "{} is suite-only", b.name);
            assert!(by_name(b.name).is_some());
            let r = Interp::new(&b.module(), 80_000_000)
                .run()
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            assert_eq!(r.exit_code, 0, "{} must exit 0", b.name);
            assert!(r.output.len() >= 2);
        }
        assert_eq!(by_name("matmul").unwrap().name, "matmul");
    }
}
