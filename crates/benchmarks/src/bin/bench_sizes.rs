//! Prints per-benchmark dynamic machine-instruction and cycle counts for
//! the clean (uninstrumented) binaries — a sizing sanity check.
use refine_core::FiOptions;
use refine_ir::passes::OptLevel;
use refine_machine::{Machine, NoFi, RunConfig, RunOutcome};

fn main() {
    for b in refine_benchmarks::all() {
        let m = b.module();
        let c = refine_core::compile_with_fi(&m, OptLevel::O2, &FiOptions::default());
        let r = Machine::run(&c.binary, &RunConfig::default(), &mut NoFi, None);
        let ok = matches!(r.outcome, RunOutcome::Exit(0));
        println!(
            "{:10} exit_ok={} static={:6} dynamic={:8} cycles={:9}",
            b.name,
            ok,
            c.binary.text.len(),
            r.instrs_retired,
            r.cycles
        );
        assert!(ok, "{} failed: {:?}", b.name, r.outcome);
    }
}
