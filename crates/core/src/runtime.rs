//! The fault-injection control library (§4.2.4, §4.3, Figure 3).
//!
//! Three implementations of [`FiRuntime`]:
//!
//! * [`ProfilingRt`] — Figure 3a: `selInstr` counts dynamic target
//!   instructions and always returns false; the count is the campaign's
//!   sampling universe.
//! * [`InjectingRt`] — Figure 3b: given a uniformly drawn target dynamic
//!   instruction, triggers once, picks the output operand and bit uniformly
//!   and records a [`FaultRecord`] ("fault log") for repeatability.
//! * [`ReplayRt`] — re-applies a fault log verbatim, reproducing a specific
//!   run.
//!
//! The same implementations serve REFINE (via `selInstr`/`setupFI`) and the
//! LLFI baseline (via `injectFault`), each counting its own population.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refine_machine::FiRuntime;

/// The record REFINE writes to its fault log when an injection fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Static site id (REFINE) or IR site id (LLFI).
    pub site: u64,
    /// 1-based dynamic index of the triggering execution.
    pub dynamic_index: u64,
    /// Chosen output operand.
    pub operand: u32,
    /// Chosen bit.
    pub bit: u32,
}

/// Profiling-phase library: count and never inject.
#[derive(Debug, Default)]
pub struct ProfilingRt {
    /// Dynamic count of target-instruction executions seen.
    pub count: u64,
}

impl FiRuntime for ProfilingRt {
    fn sel_instr(&mut self, _site: u64) -> bool {
        self.count += 1;
        false
    }

    fn setup_fi(&mut self, _nops: u32, _sizes: &[u32]) -> (u32, u32) {
        unreachable!("profiling run never triggers injection")
    }

    fn llfi_inject(&mut self, _site: u64, value: u64, _bits: u32) -> u64 {
        self.count += 1;
        value
    }

    fn fi_count(&self) -> u64 {
        self.count
    }
}

/// Injection-phase library implementing the single-bit-flip fault model.
#[derive(Debug)]
pub struct InjectingRt {
    /// 1-based dynamic instruction index to inject at.
    pub target: u64,
    count: u64,
    rng: StdRng,
    pending_site: u64,
    /// The fault log entry, filled when the injection fires.
    pub log: Option<FaultRecord>,
}

impl InjectingRt {
    /// Create an injector that fires at dynamic instruction `target`
    /// (1-based), with operand/bit choices drawn from `seed`.
    pub fn new(target: u64, seed: u64) -> Self {
        InjectingRt {
            target,
            count: 0,
            rng: StdRng::seed_from_u64(seed),
            pending_site: 0,
            log: None,
        }
    }

    /// True once the fault has been injected.
    pub fn fired(&self) -> bool {
        self.log.is_some()
    }

    /// An injector resuming after a checkpoint restore: behaves exactly as
    /// [`InjectingRt::new`] would after `counted` quiescent events, because
    /// the RNG is seeded fresh from `seed` and is consumed only when the
    /// fault fires (events before `target` never touch it).
    pub fn resume(target: u64, seed: u64, counted: u64) -> Self {
        debug_assert!(counted < target, "restore point must precede the target event");
        InjectingRt { count: counted, ..InjectingRt::new(target, seed) }
    }
}

impl FiRuntime for InjectingRt {
    fn sel_instr(&mut self, site: u64) -> bool {
        self.count += 1;
        if self.count == self.target {
            self.pending_site = site;
            true
        } else {
            false
        }
    }

    fn setup_fi(&mut self, nops: u32, sizes: &[u32]) -> (u32, u32) {
        let op = self.rng.gen_range(0..nops.max(1));
        let bits = sizes.get(op as usize).copied().unwrap_or(64).max(1);
        let bit = self.rng.gen_range(0..bits);
        self.log = Some(FaultRecord {
            site: self.pending_site,
            dynamic_index: self.count,
            operand: op,
            bit,
        });
        (op, bit)
    }

    fn llfi_inject(&mut self, site: u64, value: u64, bits: u32) -> u64 {
        self.count += 1;
        if self.count != self.target {
            return value;
        }
        let bit = self.rng.gen_range(0..bits.max(1));
        self.log = Some(FaultRecord { site, dynamic_index: self.count, operand: 0, bit });
        value ^ 1u64.checked_shl(bit).unwrap_or(0)
    }

    fn fi_count(&self) -> u64 {
        self.count
    }

    fn fired(&self) -> bool {
        self.log.is_some()
    }
}

/// Replay a fault log entry exactly (repeatability, §4.3.1).
#[derive(Debug)]
pub struct ReplayRt {
    record: FaultRecord,
    count: u64,
    /// True once the replayed fault fired again.
    pub fired: bool,
}

impl ReplayRt {
    /// Replay `record`.
    pub fn new(record: FaultRecord) -> Self {
        ReplayRt { record, count: 0, fired: false }
    }
}

impl FiRuntime for ReplayRt {
    fn sel_instr(&mut self, _site: u64) -> bool {
        self.count += 1;
        self.count == self.record.dynamic_index
    }

    fn setup_fi(&mut self, _nops: u32, _sizes: &[u32]) -> (u32, u32) {
        self.fired = true;
        (self.record.operand, self.record.bit)
    }

    fn llfi_inject(&mut self, _site: u64, value: u64, _bits: u32) -> u64 {
        self.count += 1;
        if self.count == self.record.dynamic_index {
            self.fired = true;
            value ^ 1u64.checked_shl(self.record.bit).unwrap_or(0)
        } else {
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_counts_and_never_triggers() {
        let mut rt = ProfilingRt::default();
        for s in 0..100 {
            assert!(!rt.sel_instr(s % 7));
        }
        assert_eq!(rt.count, 100);
        assert_eq!(rt.llfi_inject(0, 42, 64), 42);
        assert_eq!(rt.count, 101);
    }

    #[test]
    fn injector_fires_exactly_once_at_target() {
        let mut rt = InjectingRt::new(5, 123);
        let mut fired_at = None;
        for i in 1..=10u64 {
            if rt.sel_instr(99) {
                rt.setup_fi(2, &[64, 4]);
                fired_at = Some(i);
            }
        }
        assert_eq!(fired_at, Some(5));
        let log = rt.log.unwrap();
        assert_eq!(log.dynamic_index, 5);
        assert_eq!(log.site, 99);
        assert!(log.operand < 2);
        let max = [64u32, 4][log.operand as usize];
        assert!(log.bit < max);
    }

    #[test]
    fn llfi_inject_flips_exactly_one_bit() {
        let mut rt = InjectingRt::new(3, 7);
        let v0 = rt.llfi_inject(1, 0, 64);
        let v1 = rt.llfi_inject(2, 0, 64);
        let v2 = rt.llfi_inject(3, 0, 64);
        assert_eq!(v0, 0);
        assert_eq!(v1, 0);
        assert_eq!(v2.count_ones(), 1);
        assert!(rt.fired());
    }

    #[test]
    fn llfi_respects_value_width() {
        // i1 values only ever flip bit 0.
        for seed in 0..20 {
            let mut rt = InjectingRt::new(1, seed);
            let v = rt.llfi_inject(0, 1, 1);
            assert_eq!(v, 0, "1-bit value flip must clear the value");
        }
    }

    #[test]
    fn replay_reproduces_choice() {
        let mut rt = InjectingRt::new(4, 99);
        for _ in 0..6 {
            if rt.sel_instr(11) {
                rt.setup_fi(2, &[64, 4]);
            }
        }
        let log = rt.log.unwrap();
        let mut rep = ReplayRt::new(log);
        let mut choice = None;
        for _ in 0..6 {
            if rep.sel_instr(11) {
                choice = Some(rep.setup_fi(2, &[64, 4]));
            }
        }
        assert_eq!(choice, Some((log.operand, log.bit)));
        assert!(rep.fired);
    }

    #[test]
    fn different_seeds_differ() {
        let picks: Vec<(u32, u32)> = (0..8)
            .map(|seed| {
                let mut rt = InjectingRt::new(1, seed);
                assert!(rt.sel_instr(0));
                rt.setup_fi(2, &[64, 64])
            })
            .collect();
        assert!(picks.iter().any(|p| *p != picks[0]), "seeds must vary choices");
    }
}
