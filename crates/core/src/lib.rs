#![warn(missing_docs)]

//! `refine-core` — the REFINE fault injector: a compiler *backend* FI pass
//! plus its runtime control library.
//!
//! This is the paper's primary contribution, reproduced structurally:
//!
//! * [`pass`] — a transformation over final machine basic blocks (post
//!   instruction selection, post register allocation, immediately before
//!   emission) that splits blocks around every FI-target instruction and
//!   inserts the `PreFI -> SetupFI -> FI_k -> PostFI` instrumentation
//!   blocks of §4.2.3, using a global save area for clobbered state and
//!   runtime-library calls (`selInstr`, `setupFI`) for control;
//! * [`runtime`] — the user-side FI library of §4.2.4/§4.3: a profiling
//!   implementation (dynamic instruction counting, never injects) and a
//!   single-bit-flip injecting implementation with a fault log for
//!   repeatability;
//! * [`driver`] — the compiler driver exposing the paper's Table 2 flags
//!   (`-fi`, `-fi-funcs`, `-fi-instrs`) on top of the shared
//!   optimizer/backend pipeline;
//! * [`options`] — flag parsing and the `-fi-funcs` glob matcher.

pub mod driver;
pub mod multibit;
pub mod options;
pub mod pass;
pub mod runtime;

pub use driver::{compile_with_fi, Compiled};
pub use options::{fnv1a, fnv1a_continue, CheckpointOptions, ExecEngine, FiOptions, InstrClass};
pub use pass::SiteInfo;
pub use multibit::{BurstRt, MultiBitProbe};
pub use runtime::{FaultRecord, InjectingRt, ProfilingRt, ReplayRt};
