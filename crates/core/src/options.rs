//! The compiler-flag interface of REFINE (the paper's Table 2) and the
//! `-fi-funcs` pattern matcher.

use refine_machine::{fi_outputs, MInstr};

/// The `-fi-instrs` instruction-class filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstrClass {
    /// `stack`: push/pop and sp/fp-writing instructions.
    Stack,
    /// `arithm`: integer/float ALU, compares, conversions.
    Arith,
    /// `mem`: explicit loads and stores.
    Mem,
    /// `all`: every instruction with at least one output register.
    #[default]
    All,
}

impl InstrClass {
    /// Parse a `-fi-instrs` argument.
    pub fn parse(s: &str) -> Option<InstrClass> {
        Some(match s {
            "stack" => InstrClass::Stack,
            "arithm" => InstrClass::Arith,
            "mem" => InstrClass::Mem,
            "all" => InstrClass::All,
            _ => return None,
        })
    }

    /// Is `i` an FI target under this class filter? (It must additionally
    /// have at least one output register — the fault model injects into
    /// destination registers.)
    pub fn matches(self, i: &MInstr) -> bool {
        if fi_outputs(i).is_empty() {
            return false;
        }
        match self {
            InstrClass::Stack => i.is_stack_class(),
            InstrClass::Arith => i.is_arith_class(),
            InstrClass::Mem => i.is_mem_class(),
            InstrClass::All => true,
        }
    }
}

/// The REFINE flag set (`-mllvm -fi=true -mllvm -fi-funcs=* -fi-instrs=all`
/// in the paper's workflow).
#[derive(Debug, Clone)]
pub struct FiOptions {
    /// `-fi`: master enable.
    pub fi: bool,
    /// `-fi-funcs`: comma-separated function names or `*` globs.
    pub fi_funcs: String,
    /// `-fi-instrs`: instruction-class filter.
    pub fi_instrs: InstrClass,
}

impl Default for FiOptions {
    fn default() -> Self {
        FiOptions { fi: false, fi_funcs: "*".into(), fi_instrs: InstrClass::All }
    }
}

impl FiOptions {
    /// The configuration used throughout the paper's evaluation:
    /// `-fi=true -fi-funcs=* -fi-instrs=all`.
    pub fn all() -> Self {
        FiOptions { fi: true, ..Default::default() }
    }

    /// Parse a flag string like
    /// `-fi=true -fi-funcs=compute_*,main -fi-instrs=arithm`.
    pub fn parse_flags(s: &str) -> Result<FiOptions, String> {
        let mut o = FiOptions::default();
        for tok in s.split_whitespace() {
            let tok = tok.trim_start_matches("-mllvm").trim();
            if tok.is_empty() {
                continue;
            }
            let Some((k, v)) = tok.trim_start_matches('-').split_once('=') else {
                return Err(format!("malformed flag `{tok}`"));
            };
            match k {
                "fi" => {
                    o.fi = match v {
                        "true" => true,
                        "false" => false,
                        _ => return Err(format!("bad -fi value `{v}`")),
                    }
                }
                "fi-funcs" => o.fi_funcs = v.to_string(),
                "fi-instrs" => {
                    o.fi_instrs = InstrClass::parse(v)
                        .ok_or_else(|| format!("bad -fi-instrs value `{v}`"))?
                }
                other => return Err(format!("unknown flag `-{other}`")),
            }
        }
        Ok(o)
    }

    /// Does the `-fi-funcs` filter select function `name`?
    pub fn func_selected(&self, name: &str) -> bool {
        self.fi_funcs.split(',').any(|pat| glob_match(pat.trim(), name))
    }

    /// Stable fingerprint of this flag set, used to key the campaign
    /// engine's instrumented-artifact cache: two option values with the
    /// same fingerprint instrument a module identically.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(if self.fi { b"fi=true" } else { b"fi=false" });
        h = fnv1a_continue(h, self.fi_funcs.as_bytes());
        let class: &[u8] = match self.fi_instrs {
            InstrClass::Stack => b"stack",
            InstrClass::Arith => b"arithm",
            InstrClass::Mem => b"mem",
            InstrClass::All => b"all",
        };
        fnv1a_continue(h, class)
    }
}

/// Golden-run checkpointing knobs for trial fast-forward.
///
/// Deliberately *not* part of any instrumentation fingerprint: checkpoints
/// never change observable trial behavior (outcomes, fault logs, cycles,
/// output are bit-identical with checkpointing on or off), only per-trial
/// wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Capture checkpoints during profiling and fast-forward trials from
    /// them (`--no-checkpoint` clears this).
    pub enabled: bool,
    /// Initial snapshot interval in retired instructions
    /// (`--checkpoint-interval`; must be nonzero).
    pub interval: u64,
    /// Snapshot count cap; reaching it thins to every other snapshot and
    /// doubles the interval.
    pub max_checkpoints: usize,
    /// Detect post-injection golden convergence at checkpoint boundaries
    /// and splice the golden outcome (`--no-convergence` clears this).
    /// Requires `enabled`; ignored without checkpoints.
    pub convergence: bool,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        let d = refine_machine::CheckpointConfig::default();
        CheckpointOptions {
            enabled: true,
            interval: d.interval,
            max_checkpoints: d.max_checkpoints,
            convergence: true,
        }
    }
}

impl CheckpointOptions {
    /// Checkpointing off — the escape hatch and the differential baseline.
    /// Convergence detection is off too (it rides on checkpoints).
    pub fn disabled() -> Self {
        CheckpointOptions { enabled: false, convergence: false, ..Self::default() }
    }

    /// The machine-layer capture configuration. The digest-exempt scratch
    /// range is a property of the instrumented binary, not of the campaign
    /// options — callers overlay [`crate::Compiled::digest_exempt_words`]
    /// on the returned config.
    pub fn machine_config(&self) -> refine_machine::CheckpointConfig {
        refine_machine::CheckpointConfig {
            interval: self.interval,
            max_checkpoints: self.max_checkpoints,
            exempt_data_words: (0, 0),
        }
    }
}

/// Which trial execution engine the machine interpreter uses.
///
/// Like [`CheckpointOptions`], this is deliberately *not* part of any
/// instrumentation fingerprint or artifact-cache key: both engines are
/// bit-identical in every observable (outcomes, fault logs, cycles, retired
/// counts, output, traces) — the choice only changes wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Superblock-fused direct-threaded dispatch with exact-step fallback
    /// at FI windows and snapshot boundaries (the default).
    #[default]
    Superblock,
    /// The per-instruction exact interpreter everywhere (`--engine step`);
    /// the reference the fused engine is differentially tested against.
    Step,
}

impl ExecEngine {
    /// Parse a `--engine` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "superblock" => Some(ExecEngine::Superblock),
            "step" => Some(ExecEngine::Step),
            _ => None,
        }
    }

    /// Stable flag-value name.
    pub fn name(&self) -> &'static str {
        match self {
            ExecEngine::Superblock => "superblock",
            ExecEngine::Step => "step",
        }
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over `bytes` from the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a hash over further bytes (a `0x00` separator is mixed
/// in first so that concatenated fields cannot collide by reassociation).
pub fn fnv1a_continue(mut h: u64, bytes: &[u8]) -> u64 {
    h ^= 0x00;
    h = h.wrapping_mul(FNV_PRIME);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Minimal glob matcher: `*` matches any (possibly empty) substring.
pub fn glob_match(pat: &str, s: &str) -> bool {
    fn inner(p: &[u8], s: &[u8]) -> bool {
        match (p.first(), s.first()) {
            (None, None) => true,
            (Some(b'*'), _) => inner(&p[1..], s) || (!s.is_empty() && inner(p, &s[1..])),
            (Some(c), Some(d)) if c == d => inner(&p[1..], &s[1..]),
            _ => false,
        }
    }
    inner(pat.as_bytes(), s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_machine::{AluOp, Mem};

    #[test]
    fn fingerprints_distinguish_configurations() {
        let base = FiOptions::all();
        assert_eq!(base.fingerprint(), FiOptions::all().fingerprint());
        let by_class = FiOptions { fi_instrs: InstrClass::Stack, ..FiOptions::all() };
        let by_funcs = FiOptions { fi_funcs: "compute_*".into(), ..FiOptions::all() };
        let off = FiOptions::default();
        let prints = [
            base.fingerprint(),
            by_class.fingerprint(),
            by_funcs.fingerprint(),
            off.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in &prints[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Field-separator mixing: reassociating bytes across fields must
        // not collide.
        assert_ne!(
            fnv1a_continue(fnv1a(b"ab"), b"c"),
            fnv1a_continue(fnv1a(b"a"), b"bc")
        );
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("compute_*", "compute_residual"));
        assert!(!glob_match("compute_*", "main"));
        assert!(glob_match("*force*", "eam_force_kernel"));
        assert!(glob_match("main", "main"));
        assert!(!glob_match("main", "domain"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn parse_paper_flag_string() {
        let o = FiOptions::parse_flags("-fi=true -fi-funcs=* -fi-instrs=all").unwrap();
        assert!(o.fi);
        assert!(o.func_selected("anything"));
        assert_eq!(o.fi_instrs, InstrClass::All);
    }

    #[test]
    fn parse_selective_flags() {
        let o = FiOptions::parse_flags("-fi=true -fi-funcs=cg_*,main -fi-instrs=arithm").unwrap();
        assert!(o.func_selected("cg_solve"));
        assert!(o.func_selected("main"));
        assert!(!o.func_selected("setup"));
        assert_eq!(o.fi_instrs, InstrClass::Arith);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FiOptions::parse_flags("-fi=maybe").is_err());
        assert!(FiOptions::parse_flags("-fi-instrs=everything").is_err());
        assert!(FiOptions::parse_flags("-unknown=1").is_err());
    }

    #[test]
    fn class_filters() {
        let push = MInstr::Push { rs: 3 };
        let fadd = MInstr::FAlu { op: refine_machine::FAluOp::Add, fd: 0, fa: 1, fb: 2 };
        let ld = MInstr::Ld { rd: 1, mem: Mem::abs(0x10000) };
        let st = MInstr::St { rs: 1, mem: Mem::abs(0x10000) };
        let jmp = MInstr::Jmp { target: 0 };
        assert!(InstrClass::Stack.matches(&push));
        assert!(!InstrClass::Stack.matches(&fadd));
        assert!(InstrClass::Arith.matches(&fadd));
        assert!(InstrClass::Mem.matches(&ld));
        // Stores have no destination register: never targets.
        assert!(!InstrClass::Mem.matches(&st));
        assert!(InstrClass::All.matches(&push) && InstrClass::All.matches(&ld));
        assert!(!InstrClass::All.matches(&jmp));
        let alu = MInstr::Alu { op: AluOp::Add, rd: 2, ra: 2, rb: 3 };
        assert!(InstrClass::Arith.matches(&alu) && !InstrClass::Mem.matches(&alu));
    }
}
