//! Multi-bit fault models — an extension beyond the paper's single-bit
//! model (its related work, e.g. Adamu-Fika & Jhumka 2015, studies double
//! bit flips; REFINE's library interface makes these trivial to add, which
//! is exactly the extensibility §4.2.4 advertises).
//!
//! Two models:
//! * [`MultiBitProbe`] — at the target dynamic instruction, flip `k`
//!   distinct bits of one output operand (spatial multi-bit upset in one
//!   register). A single-bit XOR instrumentation block cannot express
//!   this, so the model rides the binary-level probe interface and its
//!   mask-injection action;
//! * [`BurstRt`] — flip one bit at each of `k` *consecutive* target
//!   instructions starting at the target (temporal burst); this one fits
//!   REFINE's `selInstr`/`setupFI` protocol directly.

use crate::runtime::FaultRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refine_machine::{fi_outputs, FiRuntime, MInstr, Probe, ProbeAction};

/// Spatial multi-bit model: `k` distinct bits of one output operand,
/// applied at the binary level (machine probe).
#[derive(Debug)]
pub struct MultiBitProbe {
    /// 1-based dynamic target among register-writing instructions.
    pub target: u64,
    /// Number of distinct bits to flip (>= 1).
    pub k: u32,
    count: u64,
    rng: StdRng,
    /// One record per flipped bit.
    pub log: Vec<FaultRecord>,
}

impl MultiBitProbe {
    /// New `k`-bit injector at dynamic target `target`.
    pub fn new(target: u64, k: u32, seed: u64) -> Self {
        assert!(k >= 1);
        MultiBitProbe {
            target,
            k,
            count: 0,
            rng: StdRng::seed_from_u64(seed),
            log: Vec::new(),
        }
    }

    /// True once the fault fired.
    pub fn fired(&self) -> bool {
        !self.log.is_empty()
    }
}

impl Probe for MultiBitProbe {
    fn before(&mut self, pc: u32, instr: &MInstr, _retired: u64) -> ProbeAction {
        let outs = fi_outputs(instr);
        if outs.is_empty() {
            return ProbeAction::Continue;
        }
        self.count += 1;
        if self.count != self.target {
            return ProbeAction::Continue;
        }
        let op = self.rng.gen_range(0..outs.len());
        let bits = outs[op].1.max(1);
        let mut mask = 0u64;
        let mut chosen: Vec<u32> = Vec::new();
        while chosen.len() < self.k.min(bits) as usize {
            let b = self.rng.gen_range(0..bits);
            if !chosen.contains(&b) {
                chosen.push(b);
                mask |= 1u64.checked_shl(b).unwrap_or(0);
                self.log.push(FaultRecord {
                    site: pc as u64,
                    dynamic_index: self.count,
                    operand: op as u32,
                    bit: b,
                });
            }
        }
        ProbeAction::InjectMaskAfter { op, mask, detach: true }
    }
}

/// Temporal burst model: one bit flipped at each of `k` consecutive target
/// instructions starting at `target`.
#[derive(Debug)]
pub struct BurstRt {
    /// First 1-based dynamic target.
    pub target: u64,
    /// Burst length.
    pub k: u64,
    count: u64,
    rng: StdRng,
    /// One record per flip.
    pub log: Vec<FaultRecord>,
    pending_site: u64,
}

impl BurstRt {
    /// New burst injector.
    pub fn new(target: u64, k: u64, seed: u64) -> Self {
        assert!(k >= 1);
        BurstRt { target, k, count: 0, rng: StdRng::seed_from_u64(seed), log: Vec::new(), pending_site: 0 }
    }
}

impl FiRuntime for BurstRt {
    fn sel_instr(&mut self, site: u64) -> bool {
        self.count += 1;
        let fire = self.count >= self.target && self.count < self.target + self.k;
        if fire {
            self.pending_site = site;
        }
        fire
    }

    fn setup_fi(&mut self, nops: u32, sizes: &[u32]) -> (u32, u32) {
        let op = self.rng.gen_range(0..nops.max(1));
        let bits = sizes.get(op as usize).copied().unwrap_or(64).max(1);
        let bit = self.rng.gen_range(0..bits);
        self.log.push(FaultRecord {
            site: self.pending_site,
            dynamic_index: self.count,
            operand: op,
            bit,
        });
        (op, bit)
    }

    fn llfi_inject(&mut self, site: u64, value: u64, bits: u32) -> u64 {
        self.count += 1;
        if self.count < self.target || self.count >= self.target + self.k {
            return value;
        }
        let bit = self.rng.gen_range(0..bits.max(1));
        self.log.push(FaultRecord { site, dynamic_index: self.count, operand: 0, bit });
        value ^ 1u64.checked_shl(bit).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_with_fi, FiOptions, ProfilingRt};
    use refine_ir::passes::OptLevel;
    use refine_machine::{Machine, RunConfig};

    fn instrumented() -> refine_machine::Binary {
        let m = refine_frontend::compile_source(
            "fn main() { let s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i * 3; } print_i(s); return 0; }",
        )
        .unwrap();
        compile_with_fi(&m, OptLevel::O2, &FiOptions::all()).binary
    }

    #[test]
    fn multibit_flips_k_distinct_bits() {
        // Spatial faults ride the probe interface on the *clean* binary.
        let m = refine_frontend::compile_source(
            "fn main() { let s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i * 3; } print_i(s); return 0; }",
        )
        .unwrap();
        let clean = compile_with_fi(&m, OptLevel::O2, &FiOptions::default()).binary;
        let mut p = MultiBitProbe::new(50, 3, 7);
        Machine::run(&clean, &RunConfig::default(), &mut refine_machine::NoFi, Some(&mut p));
        assert!(p.fired());
        assert_eq!(p.log.len(), 3);
        let mut bitset: Vec<u32> = p.log.iter().map(|r| r.bit).collect();
        bitset.sort_unstable();
        bitset.dedup();
        assert_eq!(bitset.len(), 3, "bits must be distinct");
        assert!(p.log.iter().all(|r| r.dynamic_index == 50));
        let ops: Vec<u32> = p.log.iter().map(|r| r.operand).collect();
        assert!(ops.iter().all(|&o| o == ops[0]), "one operand per spatial fault");
    }

    /// Larger k must (statistically) hurt more: compare benign rates over a
    /// fixed trial set for k=1 vs k=16.
    #[test]
    fn wider_spatial_faults_are_worse() {
        let m = refine_frontend::compile_source(
            "fvar v[12];\n\
             fn main() {\n\
               for (i = 0; i < 12; i = i + 1) { v[i] = float(i) + 0.5; }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 12; i = i + 1) { s = s + v[i] * v[i]; }\n\
               print_f(s);\n\
               return 0;\n\
             }",
        )
        .unwrap();
        let clean = compile_with_fi(&m, OptLevel::O2, &FiOptions::default()).binary;
        let native = Machine::run(&clean, &RunConfig::default(), &mut refine_machine::NoFi, None);
        let golden_out = native.output.clone();
        let count_benign = |k: u32| {
            let mut benign = 0;
            for t in 0..60u64 {
                let mut p = MultiBitProbe::new(1 + t * 13 % 500, k, t);
                let cfg = RunConfig { max_cycles: native.cycles * 10, stack_words: 1 << 16 };
                let r = Machine::run(&clean, &cfg, &mut refine_machine::NoFi, Some(&mut p));
                if matches!(r.outcome, refine_machine::RunOutcome::Exit(0)) && r.output == golden_out {
                    benign += 1;
                }
            }
            benign
        };
        let b1 = count_benign(1);
        let b16 = count_benign(16);
        assert!(b16 < b1, "16-bit faults ({b16} benign) must beat 1-bit ({b1} benign) less often");
    }

    #[test]
    fn burst_covers_consecutive_targets() {
        let b = instrumented();
        let mut prof = ProfilingRt::default();
        Machine::run(&b, &RunConfig::default(), &mut prof, None);
        let total = prof.count;
        let mut rt = BurstRt::new(total / 2, 4, 11);
        Machine::run(&b, &RunConfig { max_cycles: 100_000_000, stack_words: 1 << 16 }, &mut rt, None);
        // The run may crash mid-burst; every logged flip must be
        // consecutive starting at the target.
        assert!(!rt.log.is_empty());
        for (i, r) in rt.log.iter().enumerate() {
            assert_eq!(r.dynamic_index, total / 2 + i as u64);
        }
        assert!(rt.log.len() <= 4);
    }

    #[test]
    fn multibit_k1_is_single_bit() {
        let m = refine_frontend::compile_source(
            "fn main() { let s = 0; for (i = 0; i < 50; i = i + 1) { s = s + i; } print_i(s); return 0; }",
        )
        .unwrap();
        let clean = compile_with_fi(&m, OptLevel::O2, &FiOptions::default()).binary;
        let mut p = MultiBitProbe::new(10, 1, 3);
        Machine::run(&clean, &RunConfig::default(), &mut refine_machine::NoFi, Some(&mut p));
        assert_eq!(p.log.len(), 1);
    }
}
