//! The compiler driver: optimizer + backend + (optionally) the REFINE pass.
//!
//! This is the `clang -mllvm -fi=true ...` entry point of the paper's §4.4:
//! one call takes IR to an executable binary, with fault-injection
//! instrumentation woven in right before emission when requested.

use crate::options::FiOptions;
use crate::pass::{self, SiteInfo, SAVE_AREA_WORDS};
use refine_ir::passes::OptLevel;
use refine_ir::Module;
use refine_machine::Binary;

/// A compiled (and possibly FI-instrumented) program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The linked binary.
    pub binary: Binary,
    /// Instrumented sites (empty when `-fi=false`).
    pub sites: Vec<SiteInfo>,
    /// Absolute address of the instrumentation save area (meaningful only
    /// when instrumented).
    pub save_base: u64,
}

impl Compiled {
    /// Data-segment word range `(start, count)` that convergence digests
    /// must ignore: the `SAVE_R1` scratch slot is written only by the
    /// taken injection branch, so a fired trial's slot retains stale bits
    /// forever while the golden run's stays zero — it would block every
    /// digest match. The slot is dead from every pc the golden run can
    /// reach (only the trigger-path epilogue reads it, and the trigger
    /// path always writes it first; a post-fire trial never takes the
    /// trigger path again), so ignoring it cannot hide a real divergence.
    /// The `SAVE_R0`/`SAVE_FLAGS` slots are *not* exempt: both runs
    /// rewrite them at every `selInstr` prologue, and they can be live at
    /// a mid-prologue snapshot pc. `(0, 0)` when uninstrumented.
    pub fn digest_exempt_words(&self) -> (u32, u32) {
        if self.sites.is_empty() {
            return (0, 0);
        }
        let word = (self.save_base - refine_ir::interp::GLOBAL_BASE) / 8;
        (word as u32 + pass::SAVE_R1 as u32, 1)
    }
}

/// Compile `m` at `level` with the given FI options.
pub fn compile_with_fi(m: &Module, level: OptLevel, opts: &FiOptions) -> Compiled {
    use refine_telemetry::{Phase, Span};
    let mut m = m.clone();
    {
        let _s = Span::enter(Phase::Optimize);
        refine_ir::passes::optimize(&mut m, level);
    }
    let mut mm = refine_mir::lower_module(&m);
    // Reserve the global save area at the end of the data segment.
    let save_base = refine_ir::interp::GLOBAL_BASE + mm.globals.len() as u64 * 8;
    let mut sites = Vec::new();
    if opts.fi {
        let _s = Span::enter(Phase::FiRefinePass);
        mm.globals.extend(std::iter::repeat_n(0u64, SAVE_AREA_WORDS as usize));
        let mut next_site = 0;
        sites = pass::run(&mut mm.funcs, opts, save_base, &mut next_site);
    }
    Compiled { binary: refine_mir::emit(&mm), sites, save_base }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{InjectingRt, ProfilingRt, ReplayRt};
    use refine_machine::{Machine, NoFi, RunConfig, RunOutcome};

    fn demo_module() -> Module {
        refine_frontend::compile_source(
            "fvar xs[32];\n\
             fn main() {\n\
               for (i = 0; i < 32; i = i + 1) { xs[i] = float(i) * 0.5; }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 32; i = i + 1) { s = s + xs[i] * xs[i]; }\n\
               print_f(sqrt(s));\n\
               return 0;\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn uninstrumented_compile_matches_plain_backend() {
        let m = demo_module();
        let c = compile_with_fi(&m, OptLevel::O2, &FiOptions::default());
        assert!(c.sites.is_empty());
        let r = Machine::run(&c.binary, &RunConfig::default(), &mut NoFi, None);
        assert_eq!(r.outcome, RunOutcome::Exit(0));
    }

    /// Invariant 2 of DESIGN.md: instrumentation is semantics-preserving
    /// when no fault triggers.
    #[test]
    fn instrumented_profiling_run_produces_golden_output() {
        let m = demo_module();
        let plain = compile_with_fi(&m, OptLevel::O2, &FiOptions::default());
        let inst = compile_with_fi(&m, OptLevel::O2, &FiOptions::all());
        assert!(!inst.sites.is_empty());

        let golden = Machine::run(&plain.binary, &RunConfig::default(), &mut NoFi, None);
        let mut prof = ProfilingRt::default();
        let run = Machine::run(&inst.binary, &RunConfig::default(), &mut prof, None);
        assert_eq!(run.outcome, RunOutcome::Exit(0));
        assert_eq!(run.output, golden.output, "profiling output must be golden");
        assert!(prof.count > 0, "selInstr must have been called");
        // The instrumented binary is necessarily slower.
        assert!(run.cycles > golden.cycles);
    }

    /// The profiling count equals the dynamic number of FI-target
    /// instructions of the clean binary (population identity, invariant 3).
    #[test]
    fn profiling_count_matches_clean_target_population() {
        let m = demo_module();
        let plain = compile_with_fi(&m, OptLevel::O2, &FiOptions::default());
        let inst = compile_with_fi(&m, OptLevel::O2, &FiOptions::all());

        let mut counter =
            refine_machine::probe::CountingProbe::new(|i| !refine_machine::fi_outputs(i).is_empty());
        Machine::run(&plain.binary, &RunConfig::default(), &mut NoFi, Some(&mut counter));
        let mut prof = ProfilingRt::default();
        Machine::run(&inst.binary, &RunConfig::default(), &mut prof, None);
        assert_eq!(prof.count, counter.count);
    }

    /// An injected run with a mid-program target actually perturbs state,
    /// and replaying its fault log reproduces the identical outcome
    /// (invariant 4).
    #[test]
    fn injection_fires_and_replays() {
        let m = demo_module();
        let inst = compile_with_fi(&m, OptLevel::O2, &FiOptions::all());
        let mut prof = ProfilingRt::default();
        Machine::run(&inst.binary, &RunConfig::default(), &mut prof, None);
        let total = prof.count;
        assert!(total > 100);

        let mut firings = 0;
        for k in 0..10 {
            let target = 1 + (total * k / 10);
            let mut inj = InjectingRt::new(target, 42 + k);
            let r1 = Machine::run(&inst.binary, &RunConfig::default(), &mut inj, None);
            if let Some(log) = inj.log {
                firings += 1;
                let mut rep = ReplayRt::new(log);
                let r2 = Machine::run(&inst.binary, &RunConfig::default(), &mut rep, None);
                assert_eq!(r1.outcome, r2.outcome, "replay must reproduce the outcome");
                assert_eq!(r1.output, r2.output, "replay must reproduce the output");
            }
        }
        assert!(firings >= 8, "most injections must fire (crash before target is possible)");
    }

    #[test]
    fn selective_function_instrumentation() {
        let m = refine_frontend::compile_source(
            "fn helper(x) { return x * 2; }\n\
             fn main() { let s = 0; for (i = 0; i < 5; i = i + 1) { s = s + helper(i); } return s; }",
        )
        .unwrap();
        let mut opts = FiOptions::all();
        opts.fi_funcs = "helper".into();
        let c = compile_with_fi(&m, OptLevel::O2, &opts);
        assert!(!c.sites.is_empty());
        assert!(c.sites.iter().all(|s| s.func == "helper"));
        // Still runs to completion in profiling mode.
        let mut prof = ProfilingRt::default();
        let r = Machine::run(&c.binary, &RunConfig::default(), &mut prof, None);
        assert_eq!(r.outcome, RunOutcome::Exit(20));
    }
}
