//! The REFINE backend FI pass (§4.2.2–§4.2.3).
//!
//! Runs on final machine basic blocks, after all code generation and
//! register allocation, immediately before emission — so it has access to
//! the full instruction population (prologue/epilogue, spill traffic, stack
//! management) and interferes with nothing.
//!
//! For every target instruction the pass splits the containing block and
//! inserts:
//!
//! ```text
//!   ..target..  --> PreFI:     save r0 + FLAGS to the global save area,
//!                              call selInstr(site); skip if false
//!                   SetupFI:   save r1, call setupFI(nops, sizes),
//!                              decode <op, bit>, dispatch
//!                   FI_k:      flip the chosen bit of output operand k
//!                              (xor for GPRs, bit-move xor for FPRs, save-
//!                              area xor for FLAGS and for saved r0/r1)
//!                   PostFI:    restore FLAGS + registers, resume
//! ```
//!
//! The save area lives at an absolute data address, not on the stack, so
//! instrumentation stays correct even while `sp`/`fp` themselves are the
//! corrupted operands or the target sits inside a prologue.

use crate::options::{FiOptions, InstrClass};
use refine_machine::isa::abi;
use refine_machine::rt::pack;
use refine_machine::{fi_outputs, AluOp, Cc, CvtKind, MInstr, Mem, Reg, RtFunc};
use refine_mir::MFunction;

/// Static description of one instrumented site (for logs and reports).
#[derive(Debug, Clone)]
pub struct SiteInfo {
    /// Program-wide site id (the `selInstr` argument).
    pub id: u64,
    /// Containing function.
    pub func: String,
    /// Disassembly of the target instruction.
    pub asm: String,
    /// Output operands `(register, bits)` of the target.
    pub outputs: Vec<(Reg, u32)>,
}

/// Offsets (in words) of the global save area slots.
const SAVE_FLAGS: i64 = 0;
const SAVE_R0: i64 = 1;
pub(crate) const SAVE_R1: i64 = 2;
/// Number of 8-byte words the pass needs in the data segment.
pub const SAVE_AREA_WORDS: u32 = 3;

/// Instrument every selected function of `funcs` in place. `save_base` is
/// the absolute byte address of the save area; `next_site` is the first
/// free site id (threaded across functions). Returns site descriptions.
pub fn run(
    funcs: &mut [MFunction],
    opts: &FiOptions,
    save_base: u64,
    next_site: &mut u64,
) -> Vec<SiteInfo> {
    let mut sites = Vec::new();
    if !opts.fi {
        return sites;
    }
    for f in funcs.iter_mut() {
        if !opts.func_selected(&f.name) {
            continue;
        }
        instrument_function(f, opts.fi_instrs, save_base, next_site, &mut sites);
    }
    sites
}

fn save_mem(save_base: u64, slot: i64) -> Mem {
    Mem::abs(save_base as i64 + slot * 8)
}

fn instrument_function(
    f: &mut MFunction,
    class: InstrClass,
    save_base: u64,
    next_site: &mut u64,
    sites: &mut Vec<SiteInfo>,
) {
    // Worklist of blocks still to scan (continuations are appended).
    let mut work: Vec<u32> = (0..f.blocks.len() as u32).collect();
    while let Some(bi) = work.pop() {
        let insts = std::mem::take(&mut f.blocks[bi as usize].insts);
        let mut kept: Vec<MInstr> = Vec::with_capacity(insts.len());
        let mut split: Option<(usize, MInstr)> = None;
        for (idx, i) in insts.iter().enumerate() {
            kept.push(*i);
            if class.matches(i) {
                split = Some((idx, *i));
                break;
            }
        }
        let Some((idx, target)) = split else {
            f.blocks[bi as usize].insts = kept;
            continue;
        };
        let rest: Vec<MInstr> = insts[idx + 1..].to_vec();

        let outputs = fi_outputs(&target);
        let site = *next_site;
        *next_site += 1;
        sites.push(SiteInfo {
            id: site,
            func: f.name.clone(),
            asm: target.asm(),
            outputs: outputs.clone(),
        });

        // Allocate the new blocks.
        let pre = f.add_block();
        let setup = f.add_block();
        let fi_blocks: Vec<u32> = outputs.iter().map(|_| f.add_block()).collect();
        let post_trig = f.add_block();
        let post = f.add_block();
        let cont = f.add_block();

        // Close the split-off head with a jump into PreFI.
        kept.push(MInstr::Jmp { target: pre });
        f.blocks[bi as usize].insts = kept;

        // --- PreFI: save r0 + FLAGS, ask the library whether to inject.
        let r0 = abi::GPR_RET; // register 0, the library's result register
        let r1 = 1u8;
        f.blocks[pre as usize].insts = vec![
            MInstr::St { rs: r0, mem: save_mem(save_base, SAVE_R0) },
            MInstr::RdFlags { rd: r0 },
            MInstr::St { rs: r0, mem: save_mem(save_base, SAVE_FLAGS) },
            MInstr::CallRt { func: RtFunc::FiSelInstr, imm: site },
            MInstr::CmpI { ra: r0, imm: 0 },
            MInstr::Jcc { cc: Cc::Ne, target: setup },
            MInstr::Jmp { target: post },
        ];

        // --- SetupFI: save r1, ask for <op, bit>, dispatch to FI_k.
        let sizes: Vec<u32> = outputs.iter().map(|&(_, b)| b).collect();
        let mut setup_code = vec![
            MInstr::St { rs: r1, mem: save_mem(save_base, SAVE_R1) },
            MInstr::CallRt { func: RtFunc::FiSetupFi, imm: pack::setup_imm(&sizes) },
            MInstr::MovRR { rd: r1, ra: r0 },
            MInstr::AluI { op: AluOp::And, rd: r1, ra: r1, imm: 0xff },
            MInstr::AluI { op: AluOp::LShr, rd: r0, ra: r0, imm: 8 },
        ];
        for (k, &fb) in fi_blocks.iter().enumerate() {
            setup_code.push(MInstr::CmpI { ra: r1, imm: k as i64 });
            setup_code.push(MInstr::Jcc { cc: Cc::E, target: fb });
        }
        setup_code.push(MInstr::Jmp { target: post_trig });
        f.blocks[setup as usize].insts = setup_code;

        // --- FI_k: flip bit r0 of output k. Entry state: r0 = bit index,
        //     r1 = free, live r0/r1/FLAGS preserved in the save area.
        for (k, &(reg, _bits)) in outputs.iter().enumerate() {
            let mut code = vec![
                MInstr::MovRI { rd: r1, imm: 1 },
                MInstr::Alu { op: AluOp::Shl, rd: r1, ra: r1, rb: r0 },
            ];
            match reg {
                Reg::G(d) if d == r0 => {
                    code.push(MInstr::Ld { rd: r0, mem: save_mem(save_base, SAVE_R0) });
                    code.push(MInstr::Alu { op: AluOp::Xor, rd: r0, ra: r0, rb: r1 });
                    code.push(MInstr::St { rs: r0, mem: save_mem(save_base, SAVE_R0) });
                }
                Reg::G(d) if d == r1 => {
                    code.push(MInstr::Ld { rd: r0, mem: save_mem(save_base, SAVE_R1) });
                    code.push(MInstr::Alu { op: AluOp::Xor, rd: r0, ra: r0, rb: r1 });
                    code.push(MInstr::St { rs: r0, mem: save_mem(save_base, SAVE_R1) });
                }
                Reg::G(d) => {
                    code.push(MInstr::Alu { op: AluOp::Xor, rd: d, ra: d, rb: r1 });
                }
                Reg::F(fd) => {
                    code.push(MInstr::Cvt { kind: CvtKind::FToBits, dst: r0, src: fd });
                    code.push(MInstr::Alu { op: AluOp::Xor, rd: r0, ra: r0, rb: r1 });
                    code.push(MInstr::Cvt { kind: CvtKind::BitsToF, dst: fd, src: r0 });
                }
                Reg::Flags => {
                    code.push(MInstr::Ld { rd: r0, mem: save_mem(save_base, SAVE_FLAGS) });
                    code.push(MInstr::Alu { op: AluOp::Xor, rd: r0, ra: r0, rb: r1 });
                    code.push(MInstr::St { rs: r0, mem: save_mem(save_base, SAVE_FLAGS) });
                }
            }
            code.push(MInstr::Jmp { target: post_trig });
            f.blocks[fi_blocks[k] as usize].insts = code;
        }

        // --- PostFI (triggered path): restore r1 first.
        f.blocks[post_trig as usize].insts = vec![
            MInstr::Ld { rd: r1, mem: save_mem(save_base, SAVE_R1) },
            MInstr::Jmp { target: post },
        ];

        // --- PostFI: restore FLAGS and r0, resume application code.
        f.blocks[post as usize].insts = vec![
            MInstr::Ld { rd: r0, mem: save_mem(save_base, SAVE_FLAGS) },
            MInstr::WrFlags { rs: r0 },
            MInstr::Ld { rd: r0, mem: save_mem(save_base, SAVE_R0) },
            MInstr::Jmp { target: cont },
        ];

        // --- Continuation: the remainder of the original block; scan it too.
        f.blocks[cont as usize].insts = rest;
        work.push(cont);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_mir::mfunc::MBlock;

    fn one_block(insts: Vec<MInstr>) -> MFunction {
        MFunction { name: "f".into(), blocks: vec![MBlock { insts }] }
    }

    #[test]
    fn splits_blocks_at_every_site() {
        let mut f = one_block(vec![
            MInstr::MovRI { rd: 2, imm: 1 },                    // site
            MInstr::Alu { op: AluOp::Add, rd: 2, ra: 2, rb: 2 }, // site (2 outputs)
            MInstr::Jmp { target: 0 },                           // not a site
        ]);
        let mut next = 0;
        let sites = run(
            std::slice::from_mut(&mut f),
            &FiOptions::all(),
            0x10000,
            &mut next,
        );
        assert_eq!(sites.len(), 2);
        assert_eq!(next, 2);
        // MovRI has one output -> 6 extra blocks; Alu has two -> 7.
        assert_eq!(f.blocks.len(), 1 + 6 + 7);
        assert_eq!(sites[1].outputs.len(), 2);
        assert_eq!(sites[1].outputs[1].0, Reg::Flags);
    }

    #[test]
    fn respects_func_filter() {
        let mut f = one_block(vec![MInstr::MovRI { rd: 0, imm: 1 }]);
        let mut opts = FiOptions::all();
        opts.fi_funcs = "other_*".into();
        let mut next = 0;
        let sites = run(std::slice::from_mut(&mut f), &opts, 0x10000, &mut next);
        assert!(sites.is_empty());
        assert_eq!(f.blocks.len(), 1, "function untouched");
    }

    #[test]
    fn respects_class_filter() {
        let mut f = one_block(vec![
            MInstr::Push { rs: 3 },
            MInstr::FAlu { op: refine_machine::FAluOp::Add, fd: 0, fa: 0, fb: 1 },
        ]);
        let mut opts = FiOptions::all();
        opts.fi_instrs = InstrClass::Stack;
        let mut next = 0;
        let sites = run(std::slice::from_mut(&mut f), &opts, 0x10000, &mut next);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].asm.starts_with("push"));
    }

    #[test]
    fn disabled_pass_is_identity() {
        let mut f = one_block(vec![MInstr::MovRI { rd: 0, imm: 1 }]);
        let before = f.blocks.len();
        let mut next = 0;
        let sites = run(
            std::slice::from_mut(&mut f),
            &FiOptions::default(), // fi = false
            0x10000,
            &mut next,
        );
        assert!(sites.is_empty());
        assert_eq!(f.blocks.len(), before);
    }

    #[test]
    fn instrumentation_blocks_use_absolute_saves() {
        let mut f = one_block(vec![MInstr::Push { rs: 3 }]);
        let mut next = 0;
        run(std::slice::from_mut(&mut f), &FiOptions::all(), 0x20000, &mut next);
        // Every St/Ld inside instrumentation must address the save area
        // absolutely (no sp/fp base) so corrupted stack pointers cannot
        // break the instrumentation itself.
        for b in &f.blocks[1..] {
            for i in &b.insts {
                if let MInstr::St { mem, .. } | MInstr::Ld { mem, .. } = i {
                    assert!(mem.base.is_none(), "save-area access must be absolute: {i:?}");
                    assert!(mem.disp >= 0x20000);
                }
            }
        }
    }
}
