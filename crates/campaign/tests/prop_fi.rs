//! Property tests on the fault-injection machinery itself.

use proptest::prelude::*;
use refine_campaign::tools::{PreparedTool, Tool};
use refine_campaign::{classify, Outcome};
use refine_machine::{Machine, OutEvent, RunConfig};
use std::sync::OnceLock;

/// Bit-exact output comparison (plain `PartialEq` would make NaN outputs
/// incomparable even when identical).
fn bits(ev: &[OutEvent]) -> Vec<(u8, u64, String)> {
    ev.iter()
        .map(|e| match e {
            OutEvent::I64(v) => (0u8, *v as u64, String::new()),
            OutEvent::F64(v) => (1, v.to_bits(), String::new()),
            OutEvent::Str(s) => (2, 0, s.clone()),
        })
        .collect()
}

fn prepared(tool: Tool) -> &'static PreparedTool {
    static REFINE: OnceLock<PreparedTool> = OnceLock::new();
    static PINFI: OnceLock<PreparedTool> = OnceLock::new();
    static LLFI: OnceLock<PreparedTool> = OnceLock::new();
    let make = move || {
        let m = refine_frontend::compile_source(
            "fvar z[20];\n\
             fn main() {\n\
               for (i = 0; i < 20; i = i + 1) { z[i] = float(i * i) * 0.125 + 1.0; }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 20; i = i + 1) { s = s + sqrt(z[i]); }\n\
               print_f(s);\n\
               return 0;\n\
             }",
        )
        .unwrap();
        PreparedTool::prepare(&m, tool)
    };
    match tool {
        Tool::Refine => REFINE.get_or_init(make),
        Tool::Pinfi => PINFI.get_or_init(make),
        Tool::Llfi => LLFI.get_or_init(make),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every (target, seed) produces a total, deterministic classification
    /// for every tool — no panics, no divergence between repeated runs.
    #[test]
    fn prop_trials_total_and_deterministic(
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
        tool_idx in 0usize..3,
    ) {
        let tool = Tool::all()[tool_idx];
        let p = prepared(tool);
        let target = 1 + ((p.population - 1) as f64 * frac) as u64;
        let a = p.run_trial(target, seed);
        let b = p.run_trial(target, seed);
        prop_assert_eq!(&a.outcome, &b.outcome);
        prop_assert_eq!(bits(&a.output), bits(&b.output));
        let o = classify(&p.golden, &a);
        prop_assert!(matches!(o, Outcome::Crash | Outcome::Soc | Outcome::Benign));
        // Timeout rule: trial cycles can never exceed the budget by more
        // than one instruction's worth.
        prop_assert!(a.cycles <= p.timeout_cycles + 200);
    }

    /// REFINE fault logs replay to the identical outcome for arbitrary
    /// targets/seeds (repeatability, paper §4.3.1).
    #[test]
    fn prop_refine_replay_identical(frac in 0.0f64..1.0, seed in any::<u64>()) {
        let p = prepared(Tool::Refine);
        let target = 1 + ((p.population - 1) as f64 * frac) as u64;
        let cfg = RunConfig { max_cycles: p.timeout_cycles, stack_words: 1 << 16 };
        let mut rt = refine_core::InjectingRt::new(target, seed);
        let r1 = Machine::run(&p.binary, &cfg, &mut rt, None);
        if let Some(log) = rt.log {
            let mut rep = refine_core::ReplayRt::new(log);
            let r2 = Machine::run(&p.binary, &cfg, &mut rep, None);
            prop_assert_eq!(r1.outcome, r2.outcome);
            prop_assert_eq!(bits(&r1.output), bits(&r2.output));
            prop_assert_eq!(r1.cycles, r2.cycles);
        }
    }

    /// PINFI fault logs replay identically too.
    #[test]
    fn prop_pinfi_replay_identical(frac in 0.0f64..1.0, seed in any::<u64>()) {
        let p = prepared(Tool::Pinfi);
        let target = 1 + ((p.population - 1) as f64 * frac) as u64;
        let cfg = RunConfig { max_cycles: p.timeout_cycles, stack_words: 1 << 16 };
        let mut inj = refine_pinfi::PinfiInjector::new(target, seed);
        let r1 = Machine::run(&p.binary, &cfg, &mut refine_machine::NoFi, Some(&mut inj));
        if let Some(log) = inj.log {
            let mut rep = refine_pinfi::PinfiReplay::new(log);
            let r2 = Machine::run(&p.binary, &cfg, &mut refine_machine::NoFi, Some(&mut rep));
            prop_assert_eq!(r1.outcome, r2.outcome);
            prop_assert_eq!(bits(&r1.output), bits(&r2.output));
        }
    }

    /// The single-bit-flip model: flipping the same (operand, bit) twice at
    /// the same dynamic instruction restores golden behaviour (involution).
    /// Verified through replay: a replayed REFINE fault and a fresh
    /// injection at the same coordinates classify identically.
    #[test]
    fn prop_same_coordinates_same_outcome(frac in 0.0f64..1.0, seed in any::<u64>()) {
        let p = prepared(Tool::Refine);
        let target = 1 + ((p.population - 1) as f64 * frac) as u64;
        let cfg = RunConfig { max_cycles: p.timeout_cycles, stack_words: 1 << 16 };
        let mut rt = refine_core::InjectingRt::new(target, seed);
        let r1 = Machine::run(&p.binary, &cfg, &mut rt, None);
        let Some(log) = rt.log else { return Ok(()); };
        // A *different* injector seeded to reproduce the same coordinates
        // via replay must land in the same class.
        let mut rep = refine_core::ReplayRt::new(log);
        let r2 = Machine::run(&p.binary, &cfg, &mut rep, None);
        prop_assert_eq!(classify(&p.golden, &r1), classify(&p.golden, &r2));
    }
}
