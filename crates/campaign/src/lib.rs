#![warn(missing_docs)]

//! `refine-campaign` — the fault-injection campaign harness: the paper's
//! experiment workflow (§4.3, §5.3) end to end.
//!
//! * [`classify`] — outcome classification: *crash* (trap, non-zero exit,
//!   or timeout at 10x the profiled execution), *SOC* (final printed output
//!   differs from the golden output at 6 significant digits), or *benign*;
//! * [`tools`] — a uniform interface over the three injectors (LLFI,
//!   REFINE, PINFI): compile/attach, profile, run one trial;
//! * [`campaign`] — per-trial machinery (1,068 trials per program x tool
//!   by default, deterministic per-trial stream derivation);
//! * [`engine`] — the work-stealing sharded sweep engine with the
//!   instrumented-artifact cache (`--jobs N`, bit-identical at any jobs
//!   count);
//! * [`experiments`] — drivers that regenerate every table and figure of
//!   the paper's evaluation (Figure 4, Table 4, Table 5, Table 6, Figure 5,
//!   and the §5.3 sample-size computation).

pub mod campaign;
pub mod classify;
pub mod engine;
pub mod experiments;
pub mod propagation;
pub mod tools;

pub use campaign::{
    program_salt, run_campaign, run_campaign_observed, run_campaign_prepared, CampaignConfig,
    CampaignHooks, CampaignResult, OutcomeCounts,
};
pub use engine::{
    run_sweep, ArtifactCache, ArtifactKey, ArtifactSource, CacheStats, CampaignStats,
    EngineCampaign, EngineConfig, EngineHooks, EngineReport,
};
pub use classify::{classify, format_events, Golden, Outcome};
pub use propagation::{trace_fault, PropagationReport, PropagationStats};
pub use tools::{PreparedTool, Tool};
