//! The parallel campaign runner.
//!
//! One campaign = one (program, tool) pair: profile once, then `trials`
//! independent single-fault runs with uniformly drawn dynamic targets,
//! classified against the golden output. Trials are deterministic functions
//! of `(campaign seed, tool, trial index)`, so campaigns are reproducible
//! and embarrassingly parallel (crossbeam scoped threads over disjoint
//! trial ranges).

use crate::classify::{classify, Outcome};
use crate::tools::{PreparedTool, Tool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refine_ir::Module;
use refine_machine::RunOutcome;
use refine_telemetry::{OutcomeKind, Progress, TraceSink, TrialTrace};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Outcome frequencies of a campaign (one row of the paper's Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Crashes (traps, non-zero exits, timeouts).
    pub crash: u64,
    /// Silent output corruptions.
    pub soc: u64,
    /// Benign runs.
    pub benign: u64,
}

impl OutcomeCounts {
    /// Total trials.
    pub fn total(&self) -> u64 {
        self.crash + self.soc + self.benign
    }

    /// Record one outcome.
    pub fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Crash => self.crash += 1,
            Outcome::Soc => self.soc += 1,
            Outcome::Benign => self.benign += 1,
        }
    }

    /// As a `[crash, soc, benign]` row for chi-squared testing.
    pub fn row(&self) -> Vec<u64> {
        vec![self.crash, self.soc, self.benign]
    }

    /// Percentages `[crash, soc, benign]`.
    pub fn percentages(&self) -> [f64; 3] {
        let t = self.total().max(1) as f64;
        [
            100.0 * self.crash as f64 / t,
            100.0 * self.soc as f64 / t,
            100.0 * self.benign as f64 / t,
        ]
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of fault-injection trials (the paper uses 1,068).
    pub trials: u64,
    /// Master seed; different seeds give independent samples.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { trials: 1068, seed: 0xB1ADE, threads: 0 }
    }
}

/// A completed campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Tool name.
    pub tool: String,
    /// Outcome frequencies.
    pub counts: OutcomeCounts,
    /// Total simulated cycles across all trials (the Figure 5 metric:
    /// campaign "execution time", where crashed runs end early).
    pub total_cycles: u64,
    /// Dynamic FI-target population.
    pub population: u64,
    /// Profiled execution cycles (also the 10x-timeout basis).
    pub profile_cycles: u64,
}

/// Per-trial seeding: independent streams per (seed, tool, trial).
fn trial_stream(seed: u64, tool: Tool, trial: u64) -> (u64, u64) {
    let tool_id = match tool {
        Tool::Llfi => 1u64,
        Tool::Refine => 2,
        Tool::Pinfi => 3,
    };
    let mut h = seed ^ (tool_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h ^= trial.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // splitmix64 finalizer
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z, z.rotate_left(17) ^ 0xDEAD_BEEF_CAFE_F00D)
}

/// Run a full campaign of `cfg.trials` single-fault runs.
pub fn run_campaign(module: &Module, tool: Tool, cfg: &CampaignConfig) -> CampaignResult {
    let prepared = PreparedTool::prepare(module, tool);
    run_campaign_prepared(&prepared, cfg)
}

/// Observer hooks for a campaign: all optional, shared across workers.
/// Trial metrics additionally flow into [`refine_telemetry::registry`]
/// whenever telemetry is enabled, hooks or not.
#[derive(Default)]
pub struct CampaignHooks<'a> {
    /// Benchmark name stamped into trace records.
    pub app: &'a str,
    /// Per-trial provenance sink (`--trace-out`).
    pub sink: Option<&'a TraceSink>,
    /// Live progress reporter.
    pub progress: Option<&'a Progress>,
}

fn outcome_kind(o: Outcome) -> OutcomeKind {
    match o {
        Outcome::Crash => OutcomeKind::Crash,
        Outcome::Soc => OutcomeKind::Soc,
        Outcome::Benign => OutcomeKind::Benign,
    }
}

/// Run a campaign against an already-prepared tool (lets callers share the
/// compile+profile work across experiments).
pub fn run_campaign_prepared(prepared: &PreparedTool, cfg: &CampaignConfig) -> CampaignResult {
    run_campaign_observed(prepared, cfg, &CampaignHooks::default())
}

/// [`run_campaign_prepared`] with observer hooks: per-trial provenance
/// records, live progress, and (when telemetry is enabled) latency /
/// instruction-count / trap-cause metrics.
pub fn run_campaign_observed(
    prepared: &PreparedTool,
    cfg: &CampaignConfig,
    hooks: &CampaignHooks<'_>,
) -> CampaignResult {
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    };
    let threads = threads.min(cfg.trials.max(1) as usize).max(1);

    let chunk = cfg.trials.div_ceil(threads as u64);
    let results: Vec<(OutcomeCounts, u64)> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads as u64 {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(cfg.trials);
            if lo >= hi {
                break;
            }
            let prepared = &*prepared;
            let cfg = *cfg;
            handles.push(scope.spawn(move |_| {
                let mut counts = OutcomeCounts::default();
                let mut cycles = 0u64;
                for trial in lo..hi {
                    let (s1, s2) = trial_stream(cfg.seed, prepared.tool, trial);
                    let mut rng = StdRng::seed_from_u64(s1);
                    let target = rng.gen_range(1..=prepared.population);
                    // Skip the clock read unless someone consumes it.
                    let t0 = refine_telemetry::enabled().then(Instant::now);
                    let (r, log) = prepared.run_trial_traced(target, s2);
                    let outcome = classify(&prepared.golden, &r);
                    counts.add(outcome);
                    cycles += r.cycles;

                    let trap = match r.outcome {
                        RunOutcome::Trap(t) => Some(t.name()),
                        RunOutcome::Timeout => Some("timeout"),
                        RunOutcome::Exit(_) => None,
                    };
                    let kind = outcome_kind(outcome);
                    if let Some(t0) = t0 {
                        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        refine_telemetry::registry()
                            .record_trial(ns, r.instrs_retired, r.cycles, kind, trap);
                    }
                    if let Some(p) = hooks.progress {
                        p.record(kind);
                    }
                    if let Some(sink) = hooks.sink {
                        let rec = TrialTrace {
                            app: hooks.app.to_string(),
                            tool: prepared.tool.name().to_lowercase(),
                            trial,
                            seed: s2,
                            target_dyn: target,
                            site: log.map(|l| l.site),
                            opcode: log.as_ref().and_then(|l| prepared.site_opcode(l)),
                            operand: log.map(|l| l.operand as u64),
                            bit: log.map(|l| l.bit as u64),
                            outcome: match outcome {
                                Outcome::Crash => "crash",
                                Outcome::Soc => "soc",
                                Outcome::Benign => "benign",
                            }
                            .to_string(),
                            trap: trap.map(str::to_string),
                            cycles: r.cycles,
                            instrs: r.instrs_retired,
                        };
                        if let Err(e) = sink.write(&rec) {
                            eprintln!("trace sink write failed: {e}");
                        }
                    }
                }
                (counts, cycles)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("campaign scope");

    let mut counts = OutcomeCounts::default();
    let mut total_cycles = 0;
    for (c, cy) in results {
        counts.crash += c.crash;
        counts.soc += c.soc;
        counts.benign += c.benign;
        total_cycles += cy;
    }
    CampaignResult {
        tool: prepared.tool.name().to_string(),
        counts,
        total_cycles,
        population: prepared.population,
        profile_cycles: prepared.profile_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_module() -> Module {
        refine_frontend::compile_source(
            "fvar a[16];\n\
             fn main() {\n\
               for (i = 0; i < 16; i = i + 1) { a[i] = float(i) * 1.5 + 1.0; }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 16; i = i + 1) { s = s + sqrt(a[i]); }\n\
               print_f(s);\n\
               return 0;\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn campaign_totals_match_trials() {
        let m = tiny_module();
        let cfg = CampaignConfig { trials: 40, seed: 7, threads: 2 };
        for tool in Tool::all() {
            let r = run_campaign(&m, tool, &cfg);
            assert_eq!(r.counts.total(), 40, "{}", tool.name());
            assert!(r.total_cycles > 0);
        }
    }

    #[test]
    fn campaigns_are_reproducible() {
        let m = tiny_module();
        let cfg = CampaignConfig { trials: 30, seed: 99, threads: 3 };
        let a = run_campaign(&m, Tool::Refine, &cfg);
        let b = run_campaign(&m, Tool::Refine, &cfg);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.total_cycles, b.total_cycles);
        // Thread count must not change the result (trial-indexed streams).
        let c = run_campaign(&m, Tool::Refine, &CampaignConfig { threads: 1, ..cfg });
        assert_eq!(a.counts, c.counts);
    }

    #[test]
    fn different_seeds_differ() {
        let m = tiny_module();
        let a = run_campaign(
            &m,
            Tool::Pinfi,
            &CampaignConfig { trials: 60, seed: 1, threads: 2 },
        );
        let b = run_campaign(
            &m,
            Tool::Pinfi,
            &CampaignConfig { trials: 60, seed: 2, threads: 2 },
        );
        assert_ne!((a.counts.crash, a.counts.soc), (b.counts.crash, b.counts.soc));
    }

    #[test]
    fn outcome_counts_helpers() {
        let mut c = OutcomeCounts::default();
        c.add(Outcome::Crash);
        c.add(Outcome::Soc);
        c.add(Outcome::Benign);
        c.add(Outcome::Benign);
        assert_eq!(c.total(), 4);
        assert_eq!(c.row(), vec![1, 1, 2]);
        let p = c.percentages();
        assert_eq!(p[2], 50.0);
    }
}
