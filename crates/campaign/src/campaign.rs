//! The campaign runner: one (program, tool) pair, `trials` independent
//! single-fault runs classified against the golden output.
//!
//! Since the sharded-engine refactor this module owns the *per-trial*
//! machinery — deterministic stream derivation and single-trial execution —
//! while scheduling lives in [`crate::engine`]: every campaign, serial or
//! sharded, runs through the same work-stealing worker pool, so
//! `run_campaign` is just a one-campaign sweep.
//!
//! Determinism invariant: a trial is a pure function of
//! `(campaign seed, program, tool, trial index)` plus the immutable
//! prepared artifact. Worker identity, claim order, jobs count and cache
//! state never enter the derivation, so any sharding produces bit-identical
//! outcome tables.

use crate::classify::{classify, Outcome};
use crate::engine::{run_sweep, ArtifactCache, ArtifactSource, EngineCampaign, EngineHooks};
use crate::tools::{PreparedTool, Tool};
use refine_core::ExecEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refine_ir::Module;
use refine_machine::RunOutcome;
use refine_telemetry::{OutcomeKind, Progress, TraceSink, TrialTrace};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Outcome frequencies of a campaign (one row of the paper's Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Crashes (traps, non-zero exits, timeouts).
    pub crash: u64,
    /// Silent output corruptions.
    pub soc: u64,
    /// Benign runs.
    pub benign: u64,
}

impl OutcomeCounts {
    /// Total trials.
    pub fn total(&self) -> u64 {
        self.crash + self.soc + self.benign
    }

    /// Record one outcome.
    pub fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Crash => self.crash += 1,
            Outcome::Soc => self.soc += 1,
            Outcome::Benign => self.benign += 1,
        }
    }

    /// As a `[crash, soc, benign]` row for chi-squared testing.
    pub fn row(&self) -> Vec<u64> {
        vec![self.crash, self.soc, self.benign]
    }

    /// Percentages `[crash, soc, benign]`.
    pub fn percentages(&self) -> [f64; 3] {
        let t = self.total().max(1) as f64;
        [
            100.0 * self.crash as f64 / t,
            100.0 * self.soc as f64 / t,
            100.0 * self.benign as f64 / t,
        ]
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of fault-injection trials (the paper uses 1,068).
    pub trials: u64,
    /// Master seed; different seeds give independent samples.
    pub seed: u64,
    /// Worker jobs (0 = all available cores). Any value produces identical
    /// outcome tables; it only changes wall-clock time.
    pub jobs: usize,
    /// Golden-run checkpoint fast-forward for trials (`--no-checkpoint`
    /// turns it off). On or off, campaigns are bit-identical; off only
    /// costs wall-clock time.
    pub checkpoint: bool,
    /// Post-injection golden-convergence early exit (`--no-convergence`
    /// turns it off). Like `checkpoint`, never changes campaign results.
    pub convergence: bool,
    /// Initial golden-run snapshot interval in retired instructions
    /// (`--checkpoint-interval`; must be nonzero).
    pub checkpoint_interval: u64,
    /// Trial execution engine (`--engine {superblock,step}`). Both engines
    /// are bit-identical; like `checkpoint`, this only changes wall-clock
    /// time and stays outside the artifact-cache key.
    pub engine: ExecEngine,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 1068,
            seed: 0xB1ADE,
            jobs: 0,
            checkpoint: true,
            convergence: true,
            checkpoint_interval: refine_machine::CheckpointConfig::default().interval,
            engine: ExecEngine::default(),
        }
    }
}

/// A completed campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Tool name.
    pub tool: String,
    /// Outcome frequencies.
    pub counts: OutcomeCounts,
    /// Total simulated cycles across all trials (the Figure 5 metric:
    /// campaign "execution time", where crashed runs end early).
    pub total_cycles: u64,
    /// Dynamic FI-target population.
    pub population: u64,
    /// Profiled execution cycles (also the 10x-timeout basis).
    pub profile_cycles: u64,
}

/// Stable per-program stream salt: mixes the benchmark name into every
/// trial stream so campaigns on different programs draw independent fault
/// samples even under one sweep seed.
pub fn program_salt(app: &str) -> u64 {
    refine_core::fnv1a(app.as_bytes())
}

/// Per-trial seeding: independent streams per (seed, program, tool, trial).
fn trial_stream(seed: u64, app_salt: u64, tool: Tool, trial: u64) -> (u64, u64) {
    let tool_id = match tool {
        Tool::Llfi => 1u64,
        Tool::Refine => 2,
        Tool::Pinfi => 3,
    };
    let mut h = seed ^ app_salt.rotate_left(32) ^ (tool_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h ^= trial.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // splitmix64 finalizer
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z, z.rotate_left(17) ^ 0xDEAD_BEEF_CAFE_F00D)
}

fn outcome_kind(o: Outcome) -> OutcomeKind {
    match o {
        Outcome::Crash => OutcomeKind::Crash,
        Outcome::Soc => OutcomeKind::Soc,
        Outcome::Benign => OutcomeKind::Benign,
    }
}

/// Execute one trial of a campaign: derive the fault-model stream, run the
/// injection against the shared immutable artifact, classify, and feed the
/// observers. This is the single trial path shared by every scheduler.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_trial(
    prepared: &PreparedTool,
    engine: ExecEngine,
    app: &str,
    app_salt: u64,
    campaign_seed: u64,
    trial: u64,
    sink: Option<&TraceSink>,
    progress: Option<&Progress>,
) -> (Outcome, u64, crate::tools::TrialFastStats) {
    let (s1, s2) = trial_stream(campaign_seed, app_salt, prepared.tool, trial);
    let mut rng = StdRng::seed_from_u64(s1);
    let target = rng.gen_range(1..=prepared.population);
    // Skip the clock read unless someone consumes it.
    let t0 = refine_telemetry::enabled().then(Instant::now);
    let t = prepared.run_trial_engine(engine, target, s2);
    let (r, log, fast) = (t.result, t.log, t.fast);
    let outcome = classify(&prepared.golden, &r);
    {
        let reg = refine_telemetry::registry();
        if fast.restored {
            reg.checkpoint_restores.incr();
            reg.checkpoint_skipped_instrs.record(fast.skipped_instrs);
        } else {
            reg.checkpoint_cold.incr();
        }
        if fast.converged {
            reg.convergence_hits.incr();
            reg.convergence_saved_instrs.record(fast.conv_saved_instrs);
        }
        if fast.conv_checked_instrs > 0 {
            reg.convergence_checked_instrs.record(fast.conv_checked_instrs);
        }
        if fast.sb_dispatches > 0 {
            reg.superblock_dispatches.add(fast.sb_dispatches);
        }
        reg.superblock_fused_instrs.add(fast.sb_fused_instrs);
        reg.superblock_total_instrs.add(fast.sb_fused_instrs + fast.sb_stepped_instrs);
    }

    let trap = match r.outcome {
        RunOutcome::Trap(t) => Some(t.name()),
        RunOutcome::Timeout => Some("timeout"),
        RunOutcome::Exit(_) => None,
    };
    let kind = outcome_kind(outcome);
    if let Some(t0) = t0 {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        refine_telemetry::registry().record_trial(ns, r.instrs_retired, r.cycles, kind, trap);
    }
    if let Some(p) = progress {
        p.record(kind);
    }
    if let Some(sink) = sink {
        let rec = TrialTrace {
            app: app.to_string(),
            tool: prepared.tool.name().to_lowercase(),
            trial,
            seed: s2,
            target_dyn: target,
            site: log.map(|l| l.site),
            opcode: log.as_ref().and_then(|l| prepared.site_opcode(l)),
            operand: log.map(|l| l.operand as u64),
            bit: log.map(|l| l.bit as u64),
            outcome: match outcome {
                Outcome::Crash => "crash",
                Outcome::Soc => "soc",
                Outcome::Benign => "benign",
            }
            .to_string(),
            trap: trap.map(str::to_string),
            cycles: r.cycles,
            instrs: r.instrs_retired,
        };
        if let Err(e) = sink.write(&rec) {
            eprintln!("trace sink write failed: {e}");
        }
    }
    (outcome, r.cycles, fast)
}

/// Run a full campaign of `cfg.trials` single-fault runs.
pub fn run_campaign(module: &Module, tool: Tool, cfg: &CampaignConfig) -> CampaignResult {
    let ckpt = crate::engine::EngineConfig::from_campaign(cfg).checkpoint_options();
    let prepared = PreparedTool::prepare_opt(module, tool, &ckpt);
    run_campaign_prepared(&prepared, cfg)
}

/// Observer hooks for a campaign: all optional, shared across workers.
/// Trial metrics additionally flow into [`refine_telemetry::registry`]
/// whenever telemetry is enabled, hooks or not.
#[derive(Default)]
pub struct CampaignHooks<'a> {
    /// Benchmark name stamped into trace records (and mixed into the
    /// per-trial streams via [`program_salt`]).
    pub app: &'a str,
    /// Per-trial provenance sink (`--trace-out`).
    pub sink: Option<&'a TraceSink>,
    /// Live progress reporter.
    pub progress: Option<&'a Progress>,
}

/// Run a campaign against an already-prepared tool (lets callers share the
/// compile+profile work across experiments).
pub fn run_campaign_prepared(prepared: &PreparedTool, cfg: &CampaignConfig) -> CampaignResult {
    run_campaign_observed(prepared, cfg, &CampaignHooks::default())
}

/// [`run_campaign_prepared`] with observer hooks: per-trial provenance
/// records, live progress, and (when telemetry is enabled) latency /
/// instruction-count / trap-cause metrics.
///
/// Scheduling is the sharded engine's: a one-campaign sweep over a
/// work-stealing worker pool sharing the prepared artifact immutably.
pub fn run_campaign_observed(
    prepared: &PreparedTool,
    cfg: &CampaignConfig,
    hooks: &CampaignHooks<'_>,
) -> CampaignResult {
    let spec = EngineCampaign {
        app: hooks.app.to_string(),
        tool: prepared.tool,
        source: ArtifactSource::Prepared(Arc::new(prepared.clone())),
    };
    let cache = ArtifactCache::new();
    let ehooks = EngineHooks { sink: hooks.sink, progress: hooks.progress };
    let mut report = run_sweep(
        std::slice::from_ref(&spec),
        &crate::engine::EngineConfig::from_campaign(cfg),
        &cache,
        &ehooks,
    );
    report.results.pop().expect("one-campaign sweep yields one result")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_module() -> Module {
        refine_frontend::compile_source(
            "fvar a[16];\n\
             fn main() {\n\
               for (i = 0; i < 16; i = i + 1) { a[i] = float(i) * 1.5 + 1.0; }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 16; i = i + 1) { s = s + sqrt(a[i]); }\n\
               print_f(s);\n\
               return 0;\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn campaign_totals_match_trials() {
        let m = tiny_module();
        let cfg = CampaignConfig { trials: 40, seed: 7, jobs: 2, checkpoint: true, ..CampaignConfig::default() };
        for tool in Tool::all() {
            let r = run_campaign(&m, tool, &cfg);
            assert_eq!(r.counts.total(), 40, "{}", tool.name());
            assert!(r.total_cycles > 0);
        }
    }

    #[test]
    fn campaigns_are_reproducible() {
        let m = tiny_module();
        let cfg = CampaignConfig { trials: 30, seed: 99, jobs: 3, checkpoint: true, ..CampaignConfig::default() };
        let a = run_campaign(&m, Tool::Refine, &cfg);
        let b = run_campaign(&m, Tool::Refine, &cfg);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.total_cycles, b.total_cycles);
        // Jobs count must not change the result (trial-indexed streams).
        let c = run_campaign(&m, Tool::Refine, &CampaignConfig { jobs: 1, ..cfg });
        assert_eq!(a.counts, c.counts);
    }

    #[test]
    fn different_seeds_differ() {
        let m = tiny_module();
        let a = run_campaign(
            &m,
            Tool::Pinfi,
            &CampaignConfig { trials: 60, seed: 1, jobs: 2, checkpoint: true, ..CampaignConfig::default() },
        );
        let b = run_campaign(
            &m,
            Tool::Pinfi,
            &CampaignConfig { trials: 60, seed: 2, jobs: 2, checkpoint: true, ..CampaignConfig::default() },
        );
        assert_ne!((a.counts.crash, a.counts.soc), (b.counts.crash, b.counts.soc));
    }

    #[test]
    fn program_salt_distinguishes_apps() {
        assert_ne!(program_salt("CoMD"), program_salt("HPCCG-1.0"));
        assert_eq!(program_salt("CoMD"), program_salt("CoMD"));
        // Salted streams differ across apps for the same (seed, tool, trial).
        let a = trial_stream(7, program_salt("CoMD"), Tool::Refine, 3);
        let b = trial_stream(7, program_salt("HPCCG-1.0"), Tool::Refine, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn outcome_counts_helpers() {
        let mut c = OutcomeCounts::default();
        c.add(Outcome::Crash);
        c.add(Outcome::Soc);
        c.add(Outcome::Benign);
        c.add(Outcome::Benign);
        assert_eq!(c.total(), 4);
        assert_eq!(c.row(), vec![1, 1, 2]);
        let p = c.percentages();
        assert_eq!(p[2], 50.0);
    }
}
