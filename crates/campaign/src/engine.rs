//! The parallel sharded campaign engine — the reproduction of the paper's
//! *speed* claim at campaign scale.
//!
//! A sweep flattens its whole trial space `(program, tool, trial)` into one
//! index range and shards it across a worker pool. Work stealing is a
//! single shared atomic cursor: workers claim fixed-size batches of trial
//! indices with `fetch_add`, so a worker stuck on an expensive trial simply
//! claims fewer batches while the rest of the pool drains the space — no
//! per-worker queues, no rebalancing protocol.
//!
//! Two properties make this safe and fast:
//!
//! 1. **Determinism** — each trial's fault-model RNG derives from
//!    `(sweep seed, program, tool, trial index)` alone (see
//!    [`crate::campaign::program_salt`]); worker identity, claim order and
//!    cache state never enter the derivation, so *any* jobs count produces
//!    bit-identical outcome tables and trace-record multisets.
//! 2. **Artifact caching** — the full pipeline
//!    lex→parse→lower→opt→isel→regalloc→finalize→instrument→profile runs
//!    once per `(program, tool, opt config)` key; every trial then executes
//!    from a shared immutable [`PreparedTool`] behind an `Arc` (the
//!    [`refine_machine::Binary`] shared-image contract).

use crate::campaign::{execute_trial, program_salt, CampaignResult, OutcomeCounts};
use crate::classify::Outcome;
use crate::tools::{PreparedTool, Tool};
use parking_lot::Mutex;
use refine_core::ExecEngine;
use refine_ir::passes::OptLevel;
use refine_ir::Module;
use refine_telemetry::{Phase, Progress, Span, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default number of trial indices a worker claims per cursor fetch.
/// Large enough to keep cursor contention negligible, small enough that
/// the tail of the sweep still load-balances.
pub const DEFAULT_BATCH: u64 = 16;

/// Identity of an instrumented artifact: the program, the tool, and the
/// complete compile-side configuration. Two equal keys are guaranteed to
/// produce behaviourally identical artifacts, so trials may share one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Benchmark name.
    pub app: String,
    /// Injection tool.
    pub tool: Tool,
    /// IR optimization level.
    pub opt: OptLevel,
    /// Fingerprint of the tool's FI configuration
    /// ([`refine_core::FiOptions::fingerprint`] and friends).
    pub fi_sig: u64,
}

impl ArtifactKey {
    /// The key for [`PreparedTool::prepare`]'s standard configuration
    /// (O2 + the paper's evaluation flags for each tool).
    pub fn standard(app: &str, tool: Tool) -> ArtifactKey {
        let fi_sig = match tool {
            Tool::Refine => refine_core::FiOptions::all().fingerprint(),
            Tool::Llfi => refine_llfi::LlfiOptions::default().fingerprint(),
            // PINFI runs the uninstrumented binary; its behaviour-shaping
            // configuration is the DBI attachment itself.
            Tool::Pinfi => refine_core::fnv1a_continue(
                refine_core::FiOptions::default().fingerprint(),
                &refine_pinfi::config_fingerprint().to_le_bytes(),
            ),
        };
        ArtifactKey { app: app.to_string(), tool, opt: OptLevel::O2, fi_sig }
    }
}

/// Instrumented-artifact cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from an already-prepared artifact.
    pub hits: u64,
    /// Lookups that ran the full compile+instrument+profile pipeline.
    pub misses: u64,
    /// Wall-clock nanoseconds spent preparing artifacts (misses only).
    pub prepare_ns: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cache slot: the prepared artifact plus the nanoseconds it took to
/// build.
type CacheSlot = Arc<OnceLock<(Arc<PreparedTool>, u64)>>;

/// Concurrent demand-filled cache of prepared artifacts.
///
/// Each key owns a `OnceLock` slot: the first worker to need an artifact
/// prepares it exactly once while any other worker needing the same key
/// blocks on the slot (rather than duplicating a multi-millisecond
/// compile), and everyone afterwards shares the `Arc` immutably.
#[derive(Default)]
pub struct ArtifactCache {
    slots: Mutex<HashMap<ArtifactKey, CacheSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    prepare_ns: AtomicU64,
}

impl ArtifactCache {
    /// New empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Fetch the artifact for `key`, running `build` (once, process-wide
    /// per cache) if nobody has prepared it yet.
    pub fn get_or_prepare(
        &self,
        key: &ArtifactKey,
        build: impl FnOnce() -> PreparedTool,
    ) -> Arc<PreparedTool> {
        let slot = {
            let mut slots = self.slots.lock();
            Arc::clone(slots.entry(key.clone()).or_default())
        };
        let mut built = false;
        let (artifact, _) = slot.get_or_init(|| {
            built = true;
            let _span = Span::enter(Phase::PrepareArtifact);
            let t0 = Instant::now();
            let prepared = Arc::new(build());
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.prepare_ns.fetch_add(ns, Ordering::Relaxed);
            let reg = refine_telemetry::registry();
            reg.artifact_cache_misses.incr();
            reg.artifact_prepare_ns.record(ns);
            (prepared, ns)
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            refine_telemetry::registry().artifact_cache_hits.incr();
        }
        Arc::clone(artifact)
    }

    /// Wall-clock nanoseconds this cache spent preparing `key` (`None`
    /// when the key was never prepared here, e.g. pre-prepared artifacts
    /// or a hit against an older cache generation).
    pub fn prepare_ns_of(&self, key: &ArtifactKey) -> Option<u64> {
        let slot = {
            let slots = self.slots.lock();
            Arc::clone(slots.get(key)?)
        };
        slot.get().map(|(_, ns)| *ns)
    }

    /// Artifacts currently resident.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            prepare_ns: self.prepare_ns.load(Ordering::Relaxed),
        }
    }
}

/// How an engine campaign obtains its instrumented artifact.
pub enum ArtifactSource {
    /// Compile + instrument + profile from this module on first demand,
    /// through the sweep's [`ArtifactCache`].
    Module(Arc<Module>),
    /// An artifact prepared ahead of time; shared directly, bypassing the
    /// cache (it is already the shared immutable image).
    Prepared(Arc<PreparedTool>),
}

/// One campaign of a sweep: a (program, tool) pair.
pub struct EngineCampaign {
    /// Benchmark name (stamped into traces, mixed into trial streams).
    pub app: String,
    /// Injection tool.
    pub tool: Tool,
    /// Where the instrumented artifact comes from.
    pub source: ArtifactSource,
}

/// Engine scheduling parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Trials per campaign.
    pub trials: u64,
    /// Sweep seed.
    pub seed: u64,
    /// Worker jobs (0 = available parallelism).
    pub jobs: usize,
    /// Trial indices claimed per cursor fetch.
    pub batch: u64,
    /// Capture golden-run checkpoints on artifact prepare and fast-forward
    /// trials through them. Bit-identical either way.
    pub checkpoint: bool,
    /// Detect post-injection golden convergence at checkpoint boundaries
    /// and splice the golden outcome. Bit-identical either way; rides on
    /// `checkpoint` (ignored when checkpointing is off).
    pub convergence: bool,
    /// Initial checkpoint interval in retired instructions (must be
    /// nonzero; `--checkpoint-interval`).
    pub checkpoint_interval: u64,
    /// Trial execution engine (fused superblocks or exact stepping).
    /// Bit-identical either way; outside the artifact-cache key.
    pub engine: ExecEngine,
}

impl EngineConfig {
    /// Engine parameters for a [`crate::campaign::CampaignConfig`].
    pub fn from_campaign(cfg: &crate::campaign::CampaignConfig) -> EngineConfig {
        EngineConfig {
            trials: cfg.trials,
            seed: cfg.seed,
            jobs: cfg.jobs,
            batch: DEFAULT_BATCH,
            checkpoint: cfg.checkpoint,
            convergence: cfg.convergence,
            checkpoint_interval: cfg.checkpoint_interval,
            engine: cfg.engine,
        }
    }

    /// The checkpointing knobs this engine config prepares artifacts with.
    pub fn checkpoint_options(&self) -> refine_core::CheckpointOptions {
        assert!(self.checkpoint_interval > 0, "checkpoint interval must be nonzero");
        if self.checkpoint {
            refine_core::CheckpointOptions {
                enabled: true,
                interval: self.checkpoint_interval,
                convergence: self.convergence,
                ..refine_core::CheckpointOptions::default()
            }
        } else {
            refine_core::CheckpointOptions::disabled()
        }
    }
}

/// Observer hooks shared by every worker of a sweep.
#[derive(Default)]
pub struct EngineHooks<'a> {
    /// Per-trial provenance sink.
    pub sink: Option<&'a TraceSink>,
    /// Live progress reporter (sweep-level: totals span all campaigns).
    pub progress: Option<&'a Progress>,
}

/// Wall-clock accounting for one campaign inside a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Benchmark name.
    pub app: String,
    /// Tool name.
    pub tool: String,
    /// Summed wall-clock nanoseconds of this campaign's trials (the serial
    /// cost of the same work).
    pub busy_ns: u64,
    /// Nanoseconds from the campaign's first trial claim to its last trial
    /// completion within the sweep.
    pub wall_ns: u64,
    /// `busy_ns / wall_ns`: the campaign's effective parallel speedup over
    /// running the same trials serially.
    pub speedup: f64,
    /// Wall-clock milliseconds spent preparing this campaign's artifact
    /// (compile + instrument + profile; 0.0 for cache hits and
    /// pre-prepared artifacts).
    pub prepare_ms: f64,
    /// Trials that fast-forwarded from a golden-run checkpoint.
    pub ckpt_restores: u64,
    /// Dynamic instructions those restores skipped, summed.
    pub ckpt_skipped_instrs: u64,
    /// Trials that converged back onto the golden run post-injection and
    /// spliced its outcome.
    pub conv_hits: u64,
    /// Dynamic instructions executed post-injection while checking for
    /// convergence, summed.
    pub conv_checked_instrs: u64,
    /// Dynamic instructions convergence splices skipped, summed.
    pub conv_saved_instrs: u64,
    /// Fused superblock dispatches across this campaign's trials.
    pub sb_dispatches: u64,
    /// Dynamic instructions retired inside fused superblocks, summed.
    pub sb_fused_instrs: u64,
    /// Dynamic instructions retired by the engine's exact-step fallback
    /// (FI windows, snapshot boundaries, budget edges), summed.
    pub sb_stepped_instrs: u64,
}

/// A completed sweep: per-campaign results plus scheduling accounting.
pub struct EngineReport {
    /// Campaign results, in input order.
    pub results: Vec<CampaignResult>,
    /// Per-campaign wall-clock accounting, parallel to `results`.
    pub stats: Vec<CampaignStats>,
    /// Sweep wall-clock nanoseconds (pool start to pool join).
    pub wall_ns: u64,
    /// Summed trial-execution nanoseconds across all workers.
    pub busy_ns: u64,
    /// Worker count actually used.
    pub jobs: usize,
    /// Artifact-cache statistics for this sweep.
    pub cache: CacheStats,
}

impl EngineReport {
    /// Sweep-level effective speedup: `busy_ns / wall_ns` (1.0 ≈ serial;
    /// approaches the jobs count when trials dominate and workers stay
    /// saturated).
    pub fn speedup(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }

    /// `busy_ns` capped at `jobs * wall_ns`. Under OS oversubscription the
    /// raw per-trial clock sums can exceed what `jobs` workers could have
    /// executed in `wall_ns` (threads accrue wall time while descheduled),
    /// which made the raw `speedup` overshoot the worker count. The cap is
    /// the physical ceiling.
    pub fn busy_capped(&self) -> u64 {
        self.busy_ns.min((self.jobs as u64).saturating_mul(self.wall_ns))
    }

    /// Effective speedup from the capped busy time: never exceeds the
    /// worker count. See [`EngineReport::busy_capped`].
    pub fn speedup_capped(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_capped() as f64 / self.wall_ns as f64
        }
    }
}

/// Per-campaign shared accumulators (workers only ever add).
struct CampaignAccum {
    crash: AtomicU64,
    soc: AtomicU64,
    benign: AtomicU64,
    cycles: AtomicU64,
    busy_ns: AtomicU64,
    done: AtomicU64,
    first_ns: AtomicU64,
    last_ns: AtomicU64,
    restores: AtomicU64,
    skipped_instrs: AtomicU64,
    conv_hits: AtomicU64,
    conv_checked_instrs: AtomicU64,
    conv_saved_instrs: AtomicU64,
    sb_dispatches: AtomicU64,
    sb_fused_instrs: AtomicU64,
    sb_stepped_instrs: AtomicU64,
}

impl CampaignAccum {
    fn new() -> CampaignAccum {
        CampaignAccum {
            crash: AtomicU64::new(0),
            soc: AtomicU64::new(0),
            benign: AtomicU64::new(0),
            cycles: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            done: AtomicU64::new(0),
            first_ns: AtomicU64::new(u64::MAX),
            last_ns: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            skipped_instrs: AtomicU64::new(0),
            conv_hits: AtomicU64::new(0),
            conv_checked_instrs: AtomicU64::new(0),
            conv_saved_instrs: AtomicU64::new(0),
            sb_dispatches: AtomicU64::new(0),
            sb_fused_instrs: AtomicU64::new(0),
            sb_stepped_instrs: AtomicU64::new(0),
        }
    }
}

/// The jobs count actually used for a sweep of `total` trials.
pub fn effective_jobs(requested: usize, total: u64) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        requested
    };
    jobs.min(total.max(1) as usize).max(1)
}

/// Run a sweep of campaigns over the shared worker pool.
///
/// Every campaign runs `cfg.trials` trials; trial `t` of campaign `i` is
/// global index `i * cfg.trials + t`. Workers claim `cfg.batch` indices at
/// a time from the shared cursor and resolve the owning campaign's
/// artifact through `cache` (memoizing the last-used campaign locally, so
/// the cache lock is touched only on campaign boundaries).
pub fn run_sweep(
    campaigns: &[EngineCampaign],
    cfg: &EngineConfig,
    cache: &ArtifactCache,
    hooks: &EngineHooks<'_>,
) -> EngineReport {
    assert!(!campaigns.is_empty(), "sweep needs at least one campaign");
    assert!(cfg.trials > 0, "sweep needs at least one trial per campaign");
    let total = campaigns.len() as u64 * cfg.trials;
    let jobs = effective_jobs(cfg.jobs, total);
    let batch = cfg.batch.max(1);

    let keys: Vec<ArtifactKey> =
        campaigns.iter().map(|c| ArtifactKey::standard(&c.app, c.tool)).collect();
    let salts: Vec<u64> = campaigns.iter().map(|c| program_salt(&c.app)).collect();
    let accums: Vec<CampaignAccum> = campaigns.iter().map(|_| CampaignAccum::new()).collect();

    if let Some(p) = hooks.progress {
        p.set_campaigns(campaigns.len() as u64);
    }

    let cursor = AtomicU64::new(0);
    let start = Instant::now();
    let elapsed_ns = || start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                // Last-used campaign memo: trials are claimed in index
                // order, so batches overwhelmingly stay within a campaign.
                let mut current: Option<(usize, Arc<PreparedTool>)> = None;
                loop {
                    let lo = cursor.fetch_add(batch, Ordering::Relaxed);
                    if lo >= total {
                        break;
                    }
                    let hi = (lo + batch).min(total);
                    for idx in lo..hi {
                        let ci = (idx / cfg.trials) as usize;
                        let trial = idx % cfg.trials;
                        let prepared = match &current {
                            Some((c, p)) if *c == ci => Arc::clone(p),
                            _ => {
                                let p = match &campaigns[ci].source {
                                    ArtifactSource::Prepared(p) => Arc::clone(p),
                                    ArtifactSource::Module(m) => cache
                                        .get_or_prepare(&keys[ci], || {
                                            PreparedTool::prepare_opt(
                                                m,
                                                campaigns[ci].tool,
                                                &cfg.checkpoint_options(),
                                            )
                                        }),
                                };
                                current = Some((ci, Arc::clone(&p)));
                                p
                            }
                        };
                        let acc = &accums[ci];
                        acc.first_ns.fetch_min(elapsed_ns(), Ordering::Relaxed);
                        let t0 = Instant::now();
                        let (outcome, cycles, fast) = execute_trial(
                            &prepared,
                            cfg.engine,
                            &campaigns[ci].app,
                            salts[ci],
                            cfg.seed,
                            trial,
                            hooks.sink,
                            hooks.progress,
                        );
                        let busy = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        match outcome {
                            Outcome::Crash => &acc.crash,
                            Outcome::Soc => &acc.soc,
                            Outcome::Benign => &acc.benign,
                        }
                        .fetch_add(1, Ordering::Relaxed);
                        acc.cycles.fetch_add(cycles, Ordering::Relaxed);
                        acc.busy_ns.fetch_add(busy, Ordering::Relaxed);
                        if fast.restored {
                            acc.restores.fetch_add(1, Ordering::Relaxed);
                            acc.skipped_instrs.fetch_add(fast.skipped_instrs, Ordering::Relaxed);
                        }
                        if fast.converged {
                            acc.conv_hits.fetch_add(1, Ordering::Relaxed);
                            acc.conv_saved_instrs
                                .fetch_add(fast.conv_saved_instrs, Ordering::Relaxed);
                        }
                        acc.conv_checked_instrs
                            .fetch_add(fast.conv_checked_instrs, Ordering::Relaxed);
                        acc.sb_dispatches.fetch_add(fast.sb_dispatches, Ordering::Relaxed);
                        acc.sb_fused_instrs.fetch_add(fast.sb_fused_instrs, Ordering::Relaxed);
                        acc.sb_stepped_instrs
                            .fetch_add(fast.sb_stepped_instrs, Ordering::Relaxed);
                        acc.last_ns.fetch_max(elapsed_ns(), Ordering::Relaxed);
                        if acc.done.fetch_add(1, Ordering::Relaxed) + 1 == cfg.trials {
                            if let Some(p) = hooks.progress {
                                p.campaign_finished();
                            }
                        }
                    }
                }
            });
        }
    });
    let wall_ns = elapsed_ns();

    let mut results = Vec::with_capacity(campaigns.len());
    let mut stats = Vec::with_capacity(campaigns.len());
    let mut busy_total = 0u64;
    for (i, c) in campaigns.iter().enumerate() {
        let acc = &accums[i];
        let prepared = match &c.source {
            ArtifactSource::Prepared(p) => Arc::clone(p),
            // Every campaign ran at least one trial, so the slot is filled;
            // this lookup is a cache hit by construction.
            ArtifactSource::Module(m) => cache.get_or_prepare(&keys[i], || {
                PreparedTool::prepare_opt(m, c.tool, &cfg.checkpoint_options())
            }),
        };
        let prepare_ms = match &c.source {
            ArtifactSource::Prepared(_) => 0.0,
            ArtifactSource::Module(_) => {
                cache.prepare_ns_of(&keys[i]).unwrap_or(0) as f64 / 1e6
            }
        };
        results.push(CampaignResult {
            tool: c.tool.name().to_string(),
            counts: OutcomeCounts {
                crash: acc.crash.load(Ordering::Relaxed),
                soc: acc.soc.load(Ordering::Relaxed),
                benign: acc.benign.load(Ordering::Relaxed),
            },
            total_cycles: acc.cycles.load(Ordering::Relaxed),
            population: prepared.population,
            profile_cycles: prepared.profile_cycles,
        });
        let busy = acc.busy_ns.load(Ordering::Relaxed);
        let first = acc.first_ns.load(Ordering::Relaxed);
        let last = acc.last_ns.load(Ordering::Relaxed);
        let wall = last.saturating_sub(first.min(last));
        busy_total += busy;
        stats.push(CampaignStats {
            app: c.app.clone(),
            tool: c.tool.name().to_string(),
            busy_ns: busy,
            wall_ns: wall,
            speedup: if wall == 0 { 0.0 } else { busy as f64 / wall as f64 },
            prepare_ms,
            ckpt_restores: acc.restores.load(Ordering::Relaxed),
            ckpt_skipped_instrs: acc.skipped_instrs.load(Ordering::Relaxed),
            conv_hits: acc.conv_hits.load(Ordering::Relaxed),
            conv_checked_instrs: acc.conv_checked_instrs.load(Ordering::Relaxed),
            conv_saved_instrs: acc.conv_saved_instrs.load(Ordering::Relaxed),
            sb_dispatches: acc.sb_dispatches.load(Ordering::Relaxed),
            sb_fused_instrs: acc.sb_fused_instrs.load(Ordering::Relaxed),
            sb_stepped_instrs: acc.sb_stepped_instrs.load(Ordering::Relaxed),
        });
    }

    EngineReport { results, stats, wall_ns, busy_ns: busy_total, jobs, cache: cache.stats() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(scale: u64) -> Arc<Module> {
        Arc::new(
            refine_frontend::compile_source(&format!(
                "fvar v[24];\n\
                 fn main() {{\n\
                   for (i = 0; i < 24; i = i + 1) {{ v[i] = float(i * {scale}) * 0.25 + 1.0; }}\n\
                   let s: float = 0.0;\n\
                   for (r = 0; r < 4; r = r + 1) {{\n\
                     for (i = 0; i < 24; i = i + 1) {{ s = s + sqrt(v[i]) * 0.5; }}\n\
                   }}\n\
                   print_f(s);\n\
                   return 0;\n\
                 }}"
            ))
            .unwrap(),
        )
    }

    fn test_cfg(trials: u64, seed: u64, jobs: usize, batch: u64) -> EngineConfig {
        EngineConfig {
            trials,
            seed,
            jobs,
            batch,
            checkpoint: true,
            convergence: true,
            checkpoint_interval: refine_machine::CheckpointConfig::default().interval,
            engine: ExecEngine::default(),
        }
    }

    fn sweep_specs() -> Vec<EngineCampaign> {
        let m = kernel(3);
        Tool::all()
            .into_iter()
            .map(|tool| EngineCampaign {
                app: "kernel3".into(),
                tool,
                source: ArtifactSource::Module(Arc::clone(&m)),
            })
            .collect()
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        let specs = sweep_specs();
        let base = test_cfg(24, 42, 1, 4);
        let a = run_sweep(&specs, &base, &ArtifactCache::new(), &EngineHooks::default());
        for jobs in [2, 5, 8] {
            let cfg = EngineConfig { jobs, ..base };
            let b = run_sweep(&specs, &cfg, &ArtifactCache::new(), &EngineHooks::default());
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.counts, y.counts, "jobs={jobs}");
                assert_eq!(x.total_cycles, y.total_cycles, "jobs={jobs}");
                assert_eq!(x.population, y.population, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn cache_prepares_each_artifact_once() {
        let specs = sweep_specs();
        let cache = ArtifactCache::new();
        let cfg = test_cfg(10, 1, 4, 2);
        let report = run_sweep(&specs, &cfg, &cache, &EngineHooks::default());
        assert_eq!(cache.len(), 3, "one artifact per (program, tool)");
        assert_eq!(report.cache.misses, 3);
        // Re-running the same sweep against the same cache is all hits.
        let report2 = run_sweep(&specs, &cfg, &cache, &EngineHooks::default());
        assert_eq!(report2.cache.misses, 3, "no new compiles");
        assert!(report2.cache.hits > report.cache.hits);
        assert!(report2.cache.hit_rate() > 0.5);
        for (x, y) in report.results.iter().zip(&report2.results) {
            assert_eq!(x.counts, y.counts, "cache reuse must not change outcomes");
        }
    }

    #[test]
    fn report_accounts_wall_and_busy_time() {
        let specs = sweep_specs();
        let cfg = test_cfg(8, 9, 2, 3);
        let r = run_sweep(&specs, &cfg, &ArtifactCache::new(), &EngineHooks::default());
        assert_eq!(r.jobs, 2);
        assert!(r.wall_ns > 0);
        assert!(r.busy_ns > 0);
        assert_eq!(r.stats.len(), 3);
        for s in &r.stats {
            assert!(s.busy_ns > 0, "{}/{}", s.app, s.tool);
            assert!(s.wall_ns >= 1 || s.speedup == 0.0);
            assert_eq!(s.app, "kernel3");
        }
        assert!(r.speedup() > 0.0);
    }

    #[test]
    fn artifact_keys_separate_tools_and_apps() {
        let a = ArtifactKey::standard("CoMD", Tool::Refine);
        let b = ArtifactKey::standard("CoMD", Tool::Llfi);
        let c = ArtifactKey::standard("CoMD", Tool::Pinfi);
        let d = ArtifactKey::standard("EP", Tool::Refine);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, d);
        assert_eq!(a, ArtifactKey::standard("CoMD", Tool::Refine));
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(2, 100), 2);
        assert!(effective_jobs(0, 1000) >= 1);
        assert_eq!(effective_jobs(5, 0), 1);
    }
}
