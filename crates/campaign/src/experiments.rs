//! Reproduction drivers for every table and figure of the paper's
//! evaluation (the per-experiment index of DESIGN.md).

use crate::campaign::{run_campaign_prepared, CampaignConfig, CampaignResult};
use crate::engine::{
    run_sweep, ArtifactCache, ArtifactSource, EngineCampaign, EngineConfig, EngineHooks,
    EngineReport,
};
use crate::tools::{PreparedTool, Tool};
use refine_stats::ci::Z_95;
use refine_stats::{chi2_contingency, proportion_ci, sample_size};
use refine_telemetry::{Progress, TraceSink};
use serde::{Deserialize, Serialize};
use std::fmt::Write;
use std::sync::Arc;

/// Results of the three tools on one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppResults {
    /// Benchmark name.
    pub name: String,
    /// LLFI campaign.
    pub llfi: CampaignResult,
    /// REFINE campaign.
    pub refine: CampaignResult,
    /// PINFI campaign.
    pub pinfi: CampaignResult,
}

impl AppResults {
    /// Results in the paper's column order (LLFI, REFINE, PINFI).
    pub fn by_tool(&self) -> [&CampaignResult; 3] {
        [&self.llfi, &self.refine, &self.pinfi]
    }
}

/// Results of the full 14-benchmark x 3-tool sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteResults {
    /// Per-app results in suite order.
    pub apps: Vec<AppResults>,
    /// Trials per campaign.
    pub trials: u64,
}

/// Observability options for a sweep.
#[derive(Default)]
pub struct SuiteObserver<'a> {
    /// Print live per-campaign progress lines (trials/s, ETA, outcome
    /// percentages) on stderr.
    pub live_progress: bool,
    /// Stream one [`refine_telemetry::TrialTrace`] per trial here.
    pub sink: Option<&'a TraceSink>,
}

/// Run campaigns for `apps` (or the whole suite) with all three tools.
/// `progress` is called before each (app, tool) campaign.
pub fn run_suite(
    cfg: &CampaignConfig,
    apps: Option<&[String]>,
    progress: impl FnMut(&str, Tool),
) -> SuiteResults {
    run_suite_observed(cfg, apps, &SuiteObserver::default(), progress)
}

/// [`run_suite`] with observability: live progress reporting and per-trial
/// provenance streaming. Accepts any benchmark [`refine_benchmarks::by_name`]
/// knows, including the extras outside the paper's 14-app suite.
pub fn run_suite_observed(
    cfg: &CampaignConfig,
    apps: Option<&[String]>,
    obs: &SuiteObserver<'_>,
    progress: impl FnMut(&str, Tool),
) -> SuiteResults {
    run_suite_sharded(cfg, apps, obs, progress).0
}

/// The sharded sweep driver behind every suite run: flattens all
/// `(program, tool)` campaigns into one engine sweep (so trials from
/// different campaigns interleave across the worker pool and each
/// instrumented artifact is prepared exactly once via the
/// [`ArtifactCache`]), and additionally returns the [`EngineReport`] with
/// wall-clock, speedup and cache accounting.
///
/// `progress` is called once per campaign, in input order, as the sweep is
/// assembled (campaign *completion* order is scheduling-dependent; results
/// are always returned in input order).
pub fn run_suite_sharded(
    cfg: &CampaignConfig,
    apps: Option<&[String]>,
    obs: &SuiteObserver<'_>,
    mut progress: impl FnMut(&str, Tool),
) -> (SuiteResults, EngineReport) {
    let selected: Vec<_> = match apps {
        Some(names) => names
            .iter()
            .map(|n| {
                refine_benchmarks::by_name(n).unwrap_or_else(|| {
                    panic!(
                        "unknown benchmark `{n}` (valid: {})",
                        refine_benchmarks::all()
                            .iter()
                            .chain(refine_benchmarks::extras().iter())
                            .map(|b| b.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
            })
            .collect(),
        None => refine_benchmarks::all(),
    };
    assert!(!selected.is_empty(), "no benchmarks selected");

    let mut specs = Vec::with_capacity(selected.len() * 3);
    for b in &selected {
        let module = Arc::new(b.module());
        for tool in Tool::all() {
            progress(b.name, tool);
            specs.push(EngineCampaign {
                app: b.name.to_string(),
                tool,
                source: ArtifactSource::Module(Arc::clone(&module)),
            });
        }
    }

    let live = Progress::new(cfg.trials * specs.len() as u64, !obs.live_progress);
    live.set_label(format!("sweep x{} apps", selected.len()));
    let hooks = EngineHooks { sink: obs.sink, progress: Some(&live) };
    let cache = ArtifactCache::new();
    let report = run_sweep(&specs, &EngineConfig::from_campaign(cfg), &cache, &hooks);
    live.finish();

    let mut out = Vec::with_capacity(selected.len());
    for (i, b) in selected.iter().enumerate() {
        // Tool::all() order is (LLFI, REFINE, PINFI); results are in input
        // order regardless of scheduling.
        let mut it = report.results[i * 3..i * 3 + 3].iter().cloned();
        out.push(AppResults {
            name: b.name.to_string(),
            llfi: it.next().unwrap(),
            refine: it.next().unwrap(),
            pinfi: it.next().unwrap(),
        });
    }
    (SuiteResults { apps: out, trials: cfg.trials }, report)
}

/// Render a sweep's scheduling report: wall clock, effective speedup over
/// serial, and artifact-cache accounting.
pub fn engine_summary(report: &EngineReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Engine — {} campaigns on {} worker(s): wall {:.2}s, busy {:.2}s, speedup {:.2}x",
        report.stats.len(),
        report.jobs,
        report.wall_ns as f64 / 1e9,
        report.busy_capped() as f64 / 1e9,
        report.speedup_capped()
    );
    let c = &report.cache;
    let _ = writeln!(
        s,
        "Artifact cache — {} hits / {} misses (hit rate {:.1}%), {:.2}s preparing",
        c.hits,
        c.misses,
        100.0 * c.hit_rate(),
        c.prepare_ns as f64 / 1e9
    );
    let _ = writeln!(
        s,
        "{:10} {:8} {:>10} {:>10} {:>9} {:>11} {:>9} {:>9} {:>7}",
        "app", "tool", "busy ms", "wall ms", "speedup", "prepare ms", "restores", "conv", "fused"
    );
    for cs in &report.stats {
        let sb_total = cs.sb_fused_instrs + cs.sb_stepped_instrs;
        let fused_share = if sb_total == 0 {
            0.0
        } else {
            100.0 * cs.sb_fused_instrs as f64 / sb_total as f64
        };
        let _ = writeln!(
            s,
            "{:10} {:8} {:>10.1} {:>10.1} {:>8.2}x {:>11.1} {:>9} {:>9} {:>6.1}%",
            cs.app,
            cs.tool,
            cs.busy_ns as f64 / 1e6,
            cs.wall_ns as f64 / 1e6,
            cs.speedup,
            cs.prepare_ms,
            cs.ckpt_restores,
            cs.conv_hits,
            fused_share
        );
    }
    s
}

/// Figure 4: sampled outcome probabilities per app and tool, with 95%
/// confidence intervals.
pub fn fig4(suite: &SuiteResults) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 4 — fault-injection outcome percentages (n = {} per campaign, 95% CI)",
        suite.trials
    );
    for app in &suite.apps {
        let _ = writeln!(s, "\n({})", app.name);
        let _ = writeln!(s, "{:8} {:>18} {:>18} {:>18}", "tool", "crash %", "SOC %", "benign %");
        for r in app.by_tool() {
            let n = r.counts.total();
            let mut cells = Vec::new();
            for v in [r.counts.crash, r.counts.soc, r.counts.benign] {
                let p = 100.0 * v as f64 / n as f64;
                let (lo, hi) = proportion_ci(v, n, Z_95);
                cells.push(format!("{:5.1} [{:4.1},{:4.1}]", p, lo * 100.0, hi * 100.0));
            }
            let _ = writeln!(s, "{:8} {:>18} {:>18} {:>18}", r.tool, cells[0], cells[1], cells[2]);
        }
    }
    s
}

/// The stacked-bar PMF panel of Figure 4: one text bar per tool, split
/// into crash/SOC/benign segments (`#`/`~`/`.`), 50 columns = 100%.
pub fn fig4_pmf(suite: &SuiteResults) -> String {
    const WIDTH: usize = 50;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 4 (PMF panels) — stacked outcome bars   [# crash, ~ SOC, . benign]"
    );
    for app in &suite.apps {
        let _ = writeln!(s, "\n({})", app.name);
        for r in app.by_tool() {
            let n = r.counts.total().max(1);
            let crash = (r.counts.crash as usize * WIDTH) / n as usize;
            let soc = (r.counts.soc as usize * WIDTH) / n as usize;
            let benign = WIDTH.saturating_sub(crash + soc);
            let _ = writeln!(
                s,
                "  {:8} |{}{}{}|",
                r.tool,
                "#".repeat(crash),
                "~".repeat(soc),
                ".".repeat(benign)
            );
        }
    }
    s
}

/// Table 4: the example contingency table (LLFI vs PINFI on AMG2013, or the
/// first selected app when AMG2013 is not in the sweep).
pub fn table4(suite: &SuiteResults) -> String {
    let app = suite
        .apps
        .iter()
        .find(|a| a.name == "AMG2013")
        .unwrap_or(&suite.apps[0]);
    let mut s = String::new();
    let _ = writeln!(s, "Table 4 — contingency table for LLFI vs PINFI ({})", app.name);
    let _ = writeln!(s, "{:8} {:>7} {:>7} {:>7} {:>7}", "Tool", "Crash", "SOC", "Benign", "Total");
    for r in [&app.llfi, &app.pinfi] {
        let c = r.counts;
        let _ = writeln!(
            s,
            "{:8} {:>7} {:>7} {:>7} {:>7}",
            r.tool,
            c.crash,
            c.soc,
            c.benign,
            c.total()
        );
    }
    let total = [
        app.llfi.counts.crash + app.pinfi.counts.crash,
        app.llfi.counts.soc + app.pinfi.counts.soc,
        app.llfi.counts.benign + app.pinfi.counts.benign,
    ];
    let _ = writeln!(s, "{:8} {:>7} {:>7} {:>7}", "Total", total[0], total[1], total[2]);
    let chi = chi2_contingency(&[app.llfi.counts.row(), app.pinfi.counts.row()]);
    let _ = writeln!(
        s,
        "chi2 = {:.2}, dof = {}, p = {:.4} -> {}",
        chi.statistic,
        chi.dof,
        chi.p_value,
        if chi.significant(0.05) { "significantly different" } else { "not significantly different" }
    );
    s
}

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct Chi2Row {
    /// Benchmark name.
    pub app: String,
    /// p-value of the comparison.
    pub p_value: f64,
    /// Rejected at alpha = 0.05?
    pub significant: bool,
}

/// Table 5 data: chi-squared comparisons of each tool against PINFI.
pub fn table5_rows(suite: &SuiteResults) -> (Vec<Chi2Row>, Vec<Chi2Row>) {
    let mut llfi_rows = Vec::new();
    let mut refine_rows = Vec::new();
    for app in &suite.apps {
        let llfi = chi2_contingency(&[app.llfi.counts.row(), app.pinfi.counts.row()]);
        llfi_rows.push(Chi2Row {
            app: app.name.clone(),
            p_value: llfi.p_value,
            significant: llfi.significant(0.05),
        });
        let refine = chi2_contingency(&[app.refine.counts.row(), app.pinfi.counts.row()]);
        refine_rows.push(Chi2Row {
            app: app.name.clone(),
            p_value: refine.p_value,
            significant: refine.significant(0.05),
        });
    }
    (llfi_rows, refine_rows)
}

/// Table 5: rendered chi-squared test results (alpha = 0.05).
pub fn table5(suite: &SuiteResults) -> String {
    let (llfi_rows, refine_rows) = table5_rows(suite);
    let mut s = String::new();
    let _ = writeln!(s, "Table 5 — chi-squared test results (alpha = 0.05), baseline PINFI");
    for (title, rows) in [("LLFI vs PINFI", &llfi_rows), ("REFINE vs PINFI", &refine_rows)] {
        let _ = writeln!(s, "\n  {title}");
        let _ = writeln!(s, "  {:10} {:>10} {:>14}", "app", "p-value", "signif. diff?");
        for r in rows {
            let _ = writeln!(
                s,
                "  {:10} {:>10.4} {:>14}",
                r.app,
                r.p_value,
                if r.significant { "yes" } else { "no" }
            );
        }
        let n_sig = rows.iter().filter(|r| r.significant).count();
        let _ = writeln!(s, "  -> significantly different in {n_sig}/{} apps", rows.len());
    }
    s
}

/// Table 6: complete outcome frequencies.
pub fn table6(suite: &SuiteResults) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 6 — complete results of outcome frequencies (n = {})", suite.trials);
    let _ = writeln!(s, "{:10} {:8} {:>7} {:>7} {:>7}", "app", "tool", "Crash", "SOC", "Benign");
    for app in &suite.apps {
        for r in app.by_tool() {
            let _ = writeln!(
                s,
                "{:10} {:8} {:>7} {:>7} {:>7}",
                app.name,
                r.tool,
                r.counts.crash,
                r.counts.soc,
                r.counts.benign
            );
        }
    }
    s
}

/// One Figure 5 row: app name, LLFI and REFINE campaign time normalized
/// to PINFI.
pub type Fig5Row = (String, f64, f64);

/// Figure 5 data: per-app campaign execution time of LLFI and REFINE
/// normalized to PINFI, plus the aggregate.
pub fn fig5_rows(suite: &SuiteResults) -> (Vec<Fig5Row>, (f64, f64)) {
    let mut rows = Vec::new();
    let (mut tot_l, mut tot_r, mut tot_p) = (0u128, 0u128, 0u128);
    for app in &suite.apps {
        let l = app.llfi.total_cycles as f64;
        let r = app.refine.total_cycles as f64;
        let p = app.pinfi.total_cycles as f64;
        rows.push((app.name.clone(), l / p, r / p));
        tot_l += app.llfi.total_cycles as u128;
        tot_r += app.refine.total_cycles as u128;
        tot_p += app.pinfi.total_cycles as u128;
    }
    let totals = (tot_l as f64 / tot_p as f64, tot_r as f64 / tot_p as f64);
    (rows, totals)
}

/// Figure 5: rendered experimentation-time comparison.
pub fn fig5(suite: &SuiteResults) -> String {
    let (rows, (tl, tr)) = fig5_rows(suite);
    let mut s = String::new();
    let _ = writeln!(s, "Figure 5 — campaign execution time normalized to PINFI");
    let _ = writeln!(s, "{:10} {:>8} {:>8}", "app", "LLFI", "REFINE");
    for (name, l, r) in &rows {
        let _ = writeln!(s, "{:10} {:>8.1} {:>8.1}", name, l, r);
    }
    let _ = writeln!(s, "{:10} {:>8.1} {:>8.1}   (total)", "Total", tl, tr);
    s
}

/// Instruction-class ablation (the `-fi-instrs` interface of Table 2 at
/// campaign scale): outcome mixes when restricting REFINE to stack,
/// arithmetic, or memory instructions, versus `all`.
///
/// This is the study the flag interface exists for — e.g. stack-class
/// faults (push/pop/sp/fp writers) crash far more often than arithmetic
/// faults, which skew towards SOC.
pub fn class_ablation(apps: &[String], cfg: &CampaignConfig) -> String {
    use refine_core::{FiOptions, InstrClass};
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Ablation — REFINE outcome mix by -fi-instrs class (n = {} per cell)",
        cfg.trials
    );
    let _ = writeln!(
        s,
        "{:10} {:8} {:>10} {:>8} {:>8} {:>8}",
        "app", "class", "population", "crash%", "SOC%", "benign%"
    );
    for name in apps {
        let b = refine_benchmarks::by_name(name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let module = b.module();
        for (label, class) in [
            ("stack", InstrClass::Stack),
            ("arithm", InstrClass::Arith),
            ("mem", InstrClass::Mem),
            ("all", InstrClass::All),
        ] {
            let opts = FiOptions { fi: true, fi_instrs: class, ..FiOptions::all() };
            let prepared = PreparedTool::prepare_refine_with(&module, &opts);
            let r = run_campaign_prepared(&prepared, cfg);
            let p = r.counts.percentages();
            let _ = writeln!(
                s,
                "{:10} {:8} {:>10} {:>8.1} {:>8.1} {:>8.1}",
                name, label, r.population, p[0], p[1], p[2]
            );
        }
    }
    s
}

/// §5.3: the sample-size computation behind the 1,068-trial design.
pub fn samples_table(populations: &[(String, u64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Sample sizes for margin of error <= 3% at 95% confidence (Leveugle et al.)"
    );
    let _ = writeln!(s, "{:10} {:>14} {:>9}", "app", "population", "samples");
    for (name, pop) in populations {
        let _ = writeln!(s, "{:10} {:>14} {:>9}", name, pop, sample_size(*pop, 0.03, Z_95));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::OutcomeCounts;

    fn fake_result(tool: &str, crash: u64, soc: u64, benign: u64, cycles: u64) -> CampaignResult {
        CampaignResult {
            tool: tool.into(),
            counts: OutcomeCounts { crash, soc, benign },
            total_cycles: cycles,
            population: 10_000,
            profile_cycles: 1000,
        }
    }

    fn fake_suite() -> SuiteResults {
        SuiteResults {
            apps: vec![AppResults {
                name: "AMG2013".into(),
                llfi: fake_result("LLFI", 395, 168, 505, 3_900),
                refine: fake_result("REFINE", 254, 87, 727, 1_200),
                pinfi: fake_result("PINFI", 269, 70, 729, 1_000),
            }],
            trials: 1068,
        }
    }

    #[test]
    fn table5_separates_llfi_from_refine() {
        let (llfi, refine) = table5_rows(&fake_suite());
        assert!(llfi[0].significant, "paper data: LLFI rejects");
        assert!(!refine[0].significant, "paper data: REFINE accepts");
    }

    #[test]
    fn fig5_normalizes_to_pinfi() {
        let (rows, (tl, tr)) = fig5_rows(&fake_suite());
        assert!((rows[0].1 - 3.9).abs() < 1e-9);
        assert!((rows[0].2 - 1.2).abs() < 1e-9);
        assert!((tl - 3.9).abs() < 1e-9 && (tr - 1.2).abs() < 1e-9);
    }

    #[test]
    fn pmf_bars_have_fixed_width() {
        let s = fake_suite();
        let out = fig4_pmf(&s);
        for line in out.lines().filter(|l| l.contains('|')) {
            let bar: String =
                line.chars().skip_while(|c| *c != '|').skip(1).take_while(|c| *c != '|').collect();
            assert_eq!(bar.len(), 50, "bar width: {line}");
        }
        // LLFI's crash segment must be the longest on the paper's data.
        let bars: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        let crashes: Vec<usize> =
            bars.iter().map(|l| l.chars().filter(|c| *c == '#').count()).collect();
        assert!(crashes[0] > crashes[1] && crashes[0] > crashes[2]);
    }

    #[test]
    fn renderers_produce_tables() {
        let s = fake_suite();
        assert!(fig4(&s).contains("AMG2013"));
        assert!(table4(&s).contains("contingency"));
        assert!(table5(&s).contains("REFINE vs PINFI"));
        assert!(table6(&s).contains("LLFI"));
        assert!(fig5(&s).contains("Total"));
        assert!(samples_table(&[("X".into(), 1_000_000_000)]).contains("1068"));
    }

    /// End-to-end mini-sweep on one real app with few trials.
    #[test]
    fn mini_suite_runs() {
        let cfg = CampaignConfig { trials: 12, seed: 3, jobs: 2, checkpoint: true, ..CampaignConfig::default() };
        let apps = vec!["CoMD".to_string()];
        let suite = run_suite(&cfg, Some(&apps), |_, _| {});
        assert_eq!(suite.apps.len(), 1);
        for r in suite.apps[0].by_tool() {
            assert_eq!(r.counts.total(), 12);
        }
        // REFINE/PINFI population identity on the real benchmark.
        assert_eq!(suite.apps[0].refine.population, suite.apps[0].pinfi.population);
    }

    /// The sharded driver reports scheduling + cache accounting and its
    /// results match the public suite API bit for bit.
    #[test]
    fn sharded_suite_reports_engine_accounting() {
        let cfg = CampaignConfig { trials: 10, seed: 3, jobs: 4, checkpoint: true, ..CampaignConfig::default() };
        let apps = vec!["CoMD".to_string()];
        let (suite, report) =
            run_suite_sharded(&cfg, Some(&apps), &SuiteObserver::default(), |_, _| {});
        assert_eq!(report.stats.len(), 3, "one stat row per (app, tool)");
        assert_eq!(report.cache.misses, 3, "each artifact prepared exactly once");
        assert!(report.cache.hits + report.cache.misses >= 3);
        assert!(report.wall_ns > 0 && report.busy_ns > 0);
        assert!(engine_summary(&report).contains("Artifact cache"));
        let again = run_suite(&cfg, Some(&apps), |_, _| {});
        for (a, b) in suite.apps[0].by_tool().iter().zip(again.apps[0].by_tool()) {
            assert_eq!(a.counts, b.counts);
            assert_eq!(a.total_cycles, b.total_cycles);
        }
    }
}
