//! Dynamic error-propagation analysis.
//!
//! The paper's introduction argues that compiler-based FI "permits close
//! integration with error-propagation analysis" — this module provides that
//! analysis for the reproduced framework. A golden run and a faulty run
//! execute in (logical) lockstep; their architectural states are diffed at
//! every retired instruction, yielding:
//!
//! * the **latency** from injection to first architectural divergence;
//! * the **footprint** over time (how many registers differ at each step);
//! * whether the corruption was **masked** (states reconverge and the run
//!   ends benign), **propagated to output** (SOC) or **escalated** to a
//!   crash/control-flow divergence.
//!
//! Control-flow divergence (different instruction at the same step) ends
//! state comparison: past that point per-register diffs are meaningless.

use crate::classify::{classify, Golden, Outcome};
use crate::tools::{PreparedTool, Tool};
use refine_machine::{ArchState, Machine, NoFi, RunConfig, Tracer};
use refine_pinfi::PinfiInjector;

/// One run's captured architectural trace (compact: a 64-bit digest per
/// step plus the raw state stream length).
struct Capture {
    /// Per-step `(pc, regs-digest)`.
    steps: Vec<(u32, u64)>,
    /// Full register file per step, captured for steps in
    /// `[from, from + limit)` only.
    detail: Vec<([u64; 16], [u64; 16], u8)>,
    from: u64,
    limit: usize,
}

impl Capture {
    fn new(from: u64, limit: usize) -> Capture {
        Capture { steps: Vec::new(), detail: Vec::new(), from, limit }
    }
}

impl Tracer for Capture {
    fn after_step(&mut self, st: ArchState<'_>) {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in st.regs.iter().chain(st.fregs.iter()) {
            h ^= *v;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= st.flags as u64;
        self.steps.push((st.pc, h));
        if st.retired >= self.from && self.detail.len() < self.limit {
            self.detail.push((*st.regs, *st.fregs, st.flags));
        }
    }
}

/// The result of tracing one fault through a program.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationReport {
    /// Dynamic instruction index where the fault was injected (0-based
    /// retired index of the first divergent step).
    pub first_divergence: Option<u64>,
    /// Steps from first divergence until the states matched again
    /// (`None` while divergent through the end or through a control-flow
    /// split).
    pub reconverged_after: Option<u64>,
    /// Step at which control flow (the executed pc stream) first diverged.
    pub control_flow_divergence: Option<u64>,
    /// Maximum number of simultaneously corrupted registers observed in
    /// the detailed window (GPRs + FPRs + flags counts as one).
    pub max_footprint: u32,
    /// Final outcome of the faulty run.
    pub outcome: Outcome,
}

/// Trace one fault (dynamic `target`, RNG `seed`) through `prepared` and
/// report how it propagated. `detail_window` bounds the per-register
/// diffing (full traces of both runs are digest-compared).
///
/// Tracing runs at the *binary* level on the clean binary (PINFI-style
/// injection, which draws from the identical population as REFINE): an
/// instrumented binary's own trigger path would otherwise register as a
/// spurious control-flow divergence at the injection site. Pass a
/// [`Tool::Pinfi`]-prepared tool.
pub fn trace_fault(
    prepared: &PreparedTool,
    target: u64,
    seed: u64,
    detail_window: usize,
) -> PropagationReport {
    assert_eq!(
        prepared.tool,
        Tool::Pinfi,
        "propagation tracing needs the clean binary (prepare with Tool::Pinfi)"
    );
    let cfg = RunConfig {
        max_cycles: prepared.timeout_cycles,
        stack_words: prepared.stack_words,
    };
    // Golden trace (no probe: the probe only adds cycles, not steps, but
    // keeping both runs probe-free except for the injector minimizes
    // accounting differences).
    let mut golden_cap = Capture::new(0, detail_window);
    let gr = Machine::run_traced(&prepared.binary, &cfg, &mut NoFi, None, Some(&mut golden_cap));
    let golden = Golden::from_run(&gr);
    // Faulty trace.
    let mut fault_cap = Capture::new(0, detail_window);
    let mut inj = PinfiInjector::new(target, seed);
    let fr = Machine::run_traced(
        &prepared.binary,
        &cfg,
        &mut NoFi,
        Some(&mut inj),
        Some(&mut fault_cap),
    );
    let outcome = classify(&golden, &fr);

    // Compare the digest streams.
    let n = golden_cap.steps.len().min(fault_cap.steps.len());
    let mut first_divergence = None;
    let mut control_flow_divergence = None;
    for i in 0..n {
        let (gpc, gh) = golden_cap.steps[i];
        let (fpc, fh) = fault_cap.steps[i];
        if gpc != fpc {
            control_flow_divergence = Some(i as u64);
            if first_divergence.is_none() {
                first_divergence = Some(i as u64);
            }
            break;
        }
        if gh != fh && first_divergence.is_none() {
            first_divergence = Some(i as u64);
        }
    }
    if first_divergence.is_none() && golden_cap.steps.len() != fault_cap.steps.len() {
        // Same prefix but one run ended early (crash before divergence was
        // observable in state — e.g. a trap on the injected instruction).
        first_divergence = Some(n as u64);
        control_flow_divergence = Some(n as u64);
    }

    // Reconvergence: after first divergence, do digests match again (and
    // stay in lockstep)?
    let mut reconverged_after = None;
    if let (Some(fd), None) = (first_divergence, control_flow_divergence) {
        for i in fd as usize..n {
            if golden_cap.steps[i] == fault_cap.steps[i] {
                reconverged_after = Some(i as u64 - fd);
                break;
            }
        }
    }

    // Footprint within a detailed window anchored at the divergence. When
    // the divergence happened past the initial window, re-trace both runs
    // with the window re-anchored (digest pass already told us where).
    let (gd, fd_detail, detail_base) = match first_divergence {
        Some(fd) if fd as usize >= detail_window => {
            let mut g2 = Capture::new(fd, detail_window);
            Machine::run_traced(&prepared.binary, &cfg, &mut NoFi, None, Some(&mut g2));
            let mut f2 = Capture::new(fd, detail_window);
            let mut inj2 = PinfiInjector::new(target, seed);
            Machine::run_traced(&prepared.binary, &cfg, &mut NoFi, Some(&mut inj2), Some(&mut f2));
            (g2.detail, f2.detail, fd)
        }
        _ => (golden_cap.detail, fault_cap.detail, 0),
    };
    let mut max_footprint = 0u32;
    let dn = gd.len().min(fd_detail.len());
    for i in 0..dn {
        let step = detail_base + i as u64;
        if control_flow_divergence.is_some_and(|c| step >= c) {
            break;
        }
        let (gr_, gf, gfl) = &gd[i];
        let (fr_, ff, ffl) = &fd_detail[i];
        let mut fp = 0u32;
        for k in 0..16 {
            fp += (gr_[k] != fr_[k]) as u32;
            fp += (gf[k] != ff[k]) as u32;
        }
        fp += (gfl != ffl) as u32;
        max_footprint = max_footprint.max(fp);
    }

    PropagationReport {
        first_divergence,
        reconverged_after,
        control_flow_divergence,
        max_footprint,
        outcome,
    }
}

/// Aggregate propagation statistics across many faults.
#[derive(Debug, Clone, Default)]
pub struct PropagationStats {
    /// Faults whose corruption never became architecturally visible or
    /// reconverged (masked at register level).
    pub masked: u32,
    /// Faults that stayed data-only (no control-flow divergence).
    pub data_only: u32,
    /// Faults that changed control flow.
    pub control_flow: u32,
    /// Outcome histogram `[crash, soc, benign]`.
    pub outcomes: [u32; 3],
}

/// Run `trials` propagation traces at evenly spaced targets.
pub fn propagation_sweep(prepared: &PreparedTool, trials: u64, seed: u64) -> PropagationStats {
    let mut stats = PropagationStats::default();
    for t in 0..trials {
        let target = 1 + prepared.population * t / trials.max(1);
        let r = trace_fault(prepared, target, seed.wrapping_add(t), 4096);
        match r.outcome {
            Outcome::Crash => stats.outcomes[0] += 1,
            Outcome::Soc => stats.outcomes[1] += 1,
            Outcome::Benign => stats.outcomes[2] += 1,
        }
        if r.first_divergence.is_none() || r.reconverged_after.is_some() {
            stats.masked += 1;
        } else if r.control_flow_divergence.is_some() {
            stats.control_flow += 1;
        } else {
            stats.data_only += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared() -> PreparedTool {
        refine_frontend::compile_source(
            "fvar w[16];\n\
             fn main() {\n\
               for (i = 0; i < 16; i = i + 1) { w[i] = float(i) * 0.75 + 1.0; }\n\
               let s: float = 0.0;\n\
               for (i = 0; i < 16; i = i + 1) { s = s + w[i]; }\n\
               print_f(s);\n\
               return 0;\n\
             }",
        )
        .map(|m| PreparedTool::prepare(&m, Tool::Pinfi))
        .unwrap()
    }

    #[test]
    fn faults_diverge_and_classify() {
        let p = prepared();
        let mut diverged = 0;
        for k in 1..=10u64 {
            let r = trace_fault(&p, p.population * k / 11 + 1, k, 2048);
            if r.first_divergence.is_some() {
                diverged += 1;
                // A benign outcome with divergence means masking happened
                // somewhere (register overwritten, value dead, or below
                // print precision) — all are legitimate.
            }
        }
        assert!(diverged >= 5, "most faults must be architecturally visible");
    }

    #[test]
    fn sweep_partitions_and_finds_semantic_masking() {
        let p = prepared();
        let stats = propagation_sweep(&p, 30, 9);
        assert_eq!(stats.outcomes.iter().sum::<u32>(), 30, "every trace classified");
        assert!(
            stats.masked + stats.data_only + stats.control_flow == 30,
            "propagation categories partition the trials"
        );
        // Architectural (register-level) reconvergence is rare — a flipped
        // dead register stays flipped — but *semantic* masking is common:
        // benign outcomes among architecturally divergent runs.
        assert!(stats.outcomes[2] > 0, "benign outcomes expected");
        assert!(
            stats.data_only + stats.control_flow > 0,
            "most faults stay architecturally visible"
        );
    }

    #[test]
    fn crashes_show_visible_corruption() {
        // Every crash must be architecturally visible first: either the
        // digest stream diverged, or the run trapped on the corrupted
        // instruction itself (shorter trace). A crash with a full-length
        // identical trace would be a bug in the tracer.
        let p = prepared();
        for k in 0..40u64 {
            let r = trace_fault(&p, 1 + p.population * k / 40, 1000 + k, 2048);
            if r.outcome == Outcome::Crash {
                assert!(
                    r.first_divergence.is_some(),
                    "crash without any architectural divergence at target {}",
                    1 + p.population * k / 40
                );
            }
        }
    }

    #[test]
    fn footprint_is_bounded_and_nonzero_for_soc() {
        let p = prepared();
        for k in 0..30u64 {
            let r = trace_fault(&p, 1 + p.population * k / 30, 77 + k, 2048);
            assert!(r.max_footprint <= 33);
            if r.outcome == Outcome::Soc && r.control_flow_divergence.is_none() {
                assert!(r.max_footprint >= 1, "data-only SOC must corrupt registers");
            }
        }
    }
}
