//! `refine-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! refine-experiments [fig4|table4|table5|table6|fig5|samples|ablation|all]
//!                    [--trials N] [--seed S] [--jobs N] [--apps A,B,...]
//!                    [--trace-out FILE] [--json] [--quiet] [--no-checkpoint]
//!                    [--no-convergence] [--checkpoint-interval N]
//!                    [--engine superblock|step]
//! refine-experiments trace-summary FILE
//! ```
//!
//! With no subcommand, `all` runs the full sweep (14 apps x 3 tools x
//! `--trials` runs; the paper's configuration is `--trials 1068`, the
//! default) and prints every artifact.
//!
//! Scheduling: all selected `(app, tool)` campaigns form one trial space
//! sharded across `--jobs N` workers (default: available parallelism; any
//! jobs count produces bit-identical results). Instrumented artifacts are
//! compiled once per (app, tool) and shared across workers; the engine
//! summary reports wall-clock speedup and cache hit rate.
//!
//! Observability:
//!
//! * `--trace-out FILE` streams one JSON line of fault provenance per trial
//!   (tool, seed, target, site, opcode, bit, outcome, trap cause);
//! * `trace-summary FILE` aggregates such a file into an injection-site x
//!   outcome table;
//! * `--json` emits the suite results, the engine report (per-campaign
//!   speedup, cache hit rate) and a metrics snapshot (latency and
//!   instruction-count histograms, trap-cause breakdown, per-phase compile
//!   times) as JSON on stdout instead of the text tables;
//! * `--quiet` suppresses the live progress lines;
//! * `--no-checkpoint` disables golden-run checkpoint fast-forward for
//!   trials (slower; results are bit-identical either way — this is the
//!   escape hatch and the differential-testing oracle);
//! * `--no-convergence` disables post-injection golden-convergence early
//!   exit only, keeping checkpoint fast-forward (same bit-identical
//!   guarantee — the convergence differential oracle);
//! * `--checkpoint-interval N` sets the initial golden-run snapshot
//!   interval in retired instructions (default 2048; must be nonzero);
//! * `--engine superblock|step` selects the trial execution engine:
//!   `superblock` (default) dispatches fused straight-line instruction
//!   runs, `step` is the per-instruction exact interpreter. Bit-identical
//!   outcome tables and traces either way (`step` is the engine
//!   differential oracle); like `--no-checkpoint`, this stays outside the
//!   artifact-cache key.

use refine_campaign::campaign::CampaignConfig;
use refine_campaign::engine::EngineReport;
use refine_campaign::experiments::{self, run_suite_sharded, SuiteObserver};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_core::ExecEngine;
use refine_telemetry::trace::{read_jsonl, TraceSummary};
use refine_telemetry::TraceSink;
use serde::Serialize;

fn usage() -> ! {
    eprintln!(
        "usage: refine-experiments [fig4|table4|table5|table6|fig5|samples|ablation|all] \
         [--trials N] [--seed S] [--jobs N] [--apps A,B,...] \
         [--trace-out FILE] [--json] [--quiet] [--no-checkpoint] \
         [--no-convergence] [--checkpoint-interval N] [--engine superblock|step]\n\
         \x20      refine-experiments trace-summary FILE"
    );
    std::process::exit(2);
}

/// The `--json` rendering of the engine's scheduling report.
///
/// `busy_total` is the raw per-trial clock sum (can exceed `jobs * wall_ns`
/// under OS oversubscription); `busy_ns` and `speedup_capped` are capped at
/// what `jobs` workers could physically execute in `wall_ns`.
fn engine_to_value(report: &EngineReport) -> serde::Value {
    let sb_dispatches: u64 = report.stats.iter().map(|s| s.sb_dispatches).sum();
    let sb_fused: u64 = report.stats.iter().map(|s| s.sb_fused_instrs).sum();
    let sb_stepped: u64 = report.stats.iter().map(|s| s.sb_stepped_instrs).sum();
    let sb_total = sb_fused + sb_stepped;
    let superblock = serde::Value::Map(vec![
        ("dispatches".to_string(), sb_dispatches.to_value()),
        ("fused_instrs".to_string(), sb_fused.to_value()),
        ("stepped_instrs".to_string(), sb_stepped.to_value()),
        (
            "fused_instr_share".to_string(),
            (if sb_total == 0 { 0.0 } else { sb_fused as f64 / sb_total as f64 }).to_value(),
        ),
    ]);
    serde::Value::Map(vec![
        ("jobs".to_string(), (report.jobs as u64).to_value()),
        ("wall_ns".to_string(), report.wall_ns.to_value()),
        ("busy_ns".to_string(), report.busy_capped().to_value()),
        ("busy_total".to_string(), report.busy_ns.to_value()),
        ("speedup".to_string(), report.speedup().to_value()),
        ("speedup_capped".to_string(), report.speedup_capped().to_value()),
        ("cache_hit_rate".to_string(), report.cache.hit_rate().to_value()),
        ("cache".to_string(), report.cache.to_value()),
        ("superblock".to_string(), superblock),
        ("campaigns".to_string(), report.stats.to_value()),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<String> = None;
    let mut cfg = CampaignConfig::default();
    let mut apps: Option<Vec<String>> = None;
    let mut trace_out: Option<String> = None;
    let mut summary_file: Option<String> = None;
    let mut json = false;
    let mut quiet = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "fig4" | "table4" | "table5" | "table6" | "fig5" | "samples" | "ablation" | "all" => {
                if let Some(prev) = &cmd {
                    eprintln!(
                        "refine-experiments: duplicate subcommand `{}` (already got `{prev}`)",
                        args[i]
                    );
                    usage();
                }
                cmd = Some(args[i].clone());
            }
            "trace-summary" => {
                if let Some(prev) = &cmd {
                    eprintln!(
                        "refine-experiments: duplicate subcommand `trace-summary` \
                         (already got `{prev}`)"
                    );
                    usage();
                }
                cmd = Some("trace-summary".to_string());
                i += 1;
                summary_file = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trials" => {
                i += 1;
                cfg.trials = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                if cfg.trials == 0 {
                    eprintln!("refine-experiments: --trials must be at least 1");
                    usage();
                }
            }
            "--seed" => {
                i += 1;
                cfg.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            // --threads kept as a compatibility alias for --jobs.
            "--jobs" | "--threads" => {
                i += 1;
                cfg.jobs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--apps" => {
                i += 1;
                let names: Vec<String> = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
                for n in &names {
                    if refine_benchmarks::by_name(n).is_none() {
                        eprintln!(
                            "refine-experiments: unknown benchmark `{n}` (valid: {})",
                            refine_benchmarks::all()
                                .iter()
                                .chain(refine_benchmarks::extras().iter())
                                .map(|b| b.name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
                apps = Some(names);
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--no-checkpoint" => cfg.checkpoint = false,
            "--engine" => {
                i += 1;
                cfg.engine = args
                    .get(i)
                    .and_then(|s| ExecEngine::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!(
                            "refine-experiments: --engine must be `superblock` or `step`"
                        );
                        usage()
                    });
            }
            "--no-convergence" => cfg.convergence = false,
            "--checkpoint-interval" => {
                i += 1;
                cfg.checkpoint_interval =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                if cfg.checkpoint_interval == 0 {
                    eprintln!("refine-experiments: --checkpoint-interval must be nonzero");
                    usage();
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    let cmd = cmd.unwrap_or_else(|| "all".to_string());

    if cmd == "trace-summary" {
        let file = summary_file.expect("trace-summary requires a file");
        let records = read_jsonl(std::path::Path::new(&file)).unwrap_or_else(|e| {
            eprintln!("refine-experiments: {e}");
            std::process::exit(1);
        });
        print!("{}", TraceSummary::from_records(&records).render());
        return;
    }

    // Campaigns feed the metrics registry (latency/instrs histograms,
    // trap-cause breakdown, phase timings) from here on.
    refine_telemetry::enable();

    if cmd == "ablation" {
        let apps = apps.unwrap_or_else(|| {
            vec!["HPCCG-1.0".into(), "CoMD".into(), "XSBench".into()]
        });
        print!("{}", experiments::class_ablation(&apps, &cfg));
        return;
    }

    if cmd == "samples" {
        // Profiling only: report populations and the required sample counts.
        let mut pops = Vec::new();
        for b in refine_benchmarks::all() {
            if let Some(sel) = &apps {
                if !sel.iter().any(|n| n == b.name) {
                    continue;
                }
            }
            let p = PreparedTool::prepare(&b.module(), Tool::Pinfi);
            pops.push((b.name.to_string(), p.population));
        }
        print!("{}", experiments::samples_table(&pops));
        return;
    }

    let sink = trace_out.as_ref().map(|path| {
        TraceSink::to_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("refine-experiments: cannot open {path}: {e}");
            std::process::exit(1);
        })
    });

    if !quiet {
        eprintln!(
            "running campaigns: trials={} seed={} jobs={}",
            cfg.trials,
            cfg.seed,
            if cfg.jobs == 0 { "auto".to_string() } else { cfg.jobs.to_string() }
        );
    }
    let obs = SuiteObserver { live_progress: !quiet, sink: sink.as_ref() };
    let (suite, engine) = run_suite_sharded(&cfg, apps.as_deref(), &obs, |_, _| {});
    if let Some(sink) = &sink {
        if let Err(e) = sink.flush() {
            eprintln!("refine-experiments: trace flush failed: {e}");
        }
    }

    if json {
        let report = serde::Value::Map(vec![
            ("suite".to_string(), suite.to_value()),
            ("engine".to_string(), engine_to_value(&engine)),
            ("metrics".to_string(), refine_telemetry::registry().snapshot().to_value()),
        ]);
        println!("{}", serde::json::to_string_pretty(&report));
        return;
    }
    if !quiet {
        eprint!("{}", experiments::engine_summary(&engine));
    }

    match cmd.as_str() {
        "fig4" => {
            print!("{}", experiments::fig4(&suite));
            println!();
            print!("{}", experiments::fig4_pmf(&suite));
        }
        "table4" => print!("{}", experiments::table4(&suite)),
        "table5" => print!("{}", experiments::table5(&suite)),
        "table6" => print!("{}", experiments::table6(&suite)),
        "fig5" => print!("{}", experiments::fig5(&suite)),
        "all" => {
            println!("{}", experiments::fig4(&suite));
            println!("{}", experiments::fig4_pmf(&suite));
            println!("{}", experiments::table4(&suite));
            println!("{}", experiments::table5(&suite));
            println!("{}", experiments::table6(&suite));
            println!("{}", experiments::fig5(&suite));
        }
        _ => usage(),
    }
}
