//! `refine-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! refine-experiments [fig4|table4|table5|table6|fig5|samples|all]
//!                    [--trials N] [--seed S] [--threads T] [--apps A,B,...]
//! ```
//!
//! With no subcommand, `all` runs the full sweep (14 apps x 3 tools x
//! `--trials` runs; the paper's configuration is `--trials 1068`, the
//! default) and prints every artifact.

use refine_campaign::campaign::CampaignConfig;
use refine_campaign::experiments::{self, run_suite, SuiteResults};
use refine_campaign::tools::{PreparedTool, Tool};

fn usage() -> ! {
    eprintln!(
        "usage: refine-experiments [fig4|table4|table5|table6|fig5|samples|ablation|all] \
         [--trials N] [--seed S] [--threads T] [--apps A,B,...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = "all".to_string();
    let mut cfg = CampaignConfig::default();
    let mut apps: Option<Vec<String>> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "fig4" | "table4" | "table5" | "table6" | "fig5" | "samples" | "ablation" | "all" => {
                cmd = args[i].clone();
            }
            "--trials" => {
                i += 1;
                cfg.trials = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                cfg.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                cfg.threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--apps" => {
                i += 1;
                let names: Vec<String> = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
                for n in &names {
                    if refine_benchmarks::by_name(n).is_none() {
                        eprintln!(
                            "refine-experiments: unknown benchmark `{n}` (valid: {})",
                            refine_benchmarks::all()
                                .iter()
                                .map(|b| b.name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
                apps = Some(names);
            }
            _ => usage(),
        }
        i += 1;
    }

    if cmd == "ablation" {
        let apps = apps.unwrap_or_else(|| {
            vec!["HPCCG-1.0".into(), "CoMD".into(), "XSBench".into()]
        });
        print!("{}", experiments::class_ablation(&apps, &cfg));
        return;
    }

    if cmd == "samples" {
        // Profiling only: report populations and the required sample counts.
        let mut pops = Vec::new();
        for b in refine_benchmarks::all() {
            if let Some(sel) = &apps {
                if !sel.iter().any(|n| n == b.name) {
                    continue;
                }
            }
            let p = PreparedTool::prepare(&b.module(), Tool::Pinfi);
            pops.push((b.name.to_string(), p.population));
        }
        print!("{}", experiments::samples_table(&pops));
        return;
    }

    eprintln!(
        "running campaigns: trials={} seed={} threads={}",
        cfg.trials,
        cfg.seed,
        if cfg.threads == 0 { "auto".to_string() } else { cfg.threads.to_string() }
    );
    let t0 = std::time::Instant::now();
    let suite: SuiteResults = run_suite(&cfg, apps.as_deref(), |app, tool| {
        eprintln!("  [{:>6.1}s] {app} / {}", t0.elapsed().as_secs_f64(), tool.name());
    });
    eprintln!("sweep done in {:.1}s\n", t0.elapsed().as_secs_f64());

    match cmd.as_str() {
        "fig4" => {
            print!("{}", experiments::fig4(&suite));
            println!();
            print!("{}", experiments::fig4_pmf(&suite));
        }
        "table4" => print!("{}", experiments::table4(&suite)),
        "table5" => print!("{}", experiments::table5(&suite)),
        "table6" => print!("{}", experiments::table6(&suite)),
        "fig5" => print!("{}", experiments::fig5(&suite)),
        "all" => {
            println!("{}", experiments::fig4(&suite));
            println!("{}", experiments::fig4_pmf(&suite));
            println!("{}", experiments::table4(&suite));
            println!("{}", experiments::table5(&suite));
            println!("{}", experiments::table6(&suite));
            println!("{}", experiments::fig5(&suite));
        }
        _ => usage(),
    }
}
