//! `minicc` — the toolchain driver (the workspace's `clang`): compile and
//! run MiniLang programs, optionally with fault-injection instrumentation.
//!
//! ```text
//! minicc <file.ml> [options]
//!
//!   --emit ir|ir-opt|asm|sites    print an artifact instead of running
//!   --O0                          disable IR optimization (default -O2)
//!   --fi "<flags>"                REFINE flags, e.g. "-fi=true -fi-funcs=* -fi-instrs=all"
//!   --llfi                        instrument with the LLFI baseline instead
//!   --run                         execute and print the program output (default)
//!   --profile                     run the FI profiling phase (population + golden)
//!   --inject <target> [--seed N]  run one fault-injection trial and classify it
//!   --stats                       print static/dynamic instruction statistics
//!   --times                       print a per-phase compile-time table on stderr
//! ```
//!
//! Examples:
//!
//! ```text
//! minicc kernel.ml --run
//! minicc kernel.ml --emit asm
//! minicc kernel.ml --fi "-fi=true -fi-funcs=solve_* -fi-instrs=arithm" --profile
//! minicc kernel.ml --fi "-fi=true -fi-funcs=* -fi-instrs=all" --inject 5000 --seed 7
//! ```

use refine_campaign::{classify, format_events, Golden};
use refine_core::{compile_with_fi, FiOptions, InjectingRt, ProfilingRt};
use refine_ir::passes::OptLevel;
use refine_machine::{Machine, NoFi, RunConfig, RunOutcome};

fn usage() -> ! {
    eprintln!(
        "usage: minicc <file.ml> [--emit ir|ir-opt|asm|sites] [--O0] \
         [--fi \"<flags>\"] [--llfi] [--run|--profile|--stats] \
         [--inject <target>] [--seed N] [--times]"
    );
    std::process::exit(2);
}

enum Mode {
    Run,
    Profile,
    Stats,
    Inject(u64),
    Emit(String),
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut file = None;
    let mut mode = Mode::Run;
    let mut level = OptLevel::O2;
    let mut fi = FiOptions::default();
    let mut llfi = false;
    let mut seed = 42u64;
    let mut times = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--emit" => {
                i += 1;
                mode = Mode::Emit(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--O0" => level = OptLevel::O0,
            "--fi" => {
                i += 1;
                fi = FiOptions::parse_flags(args.get(i).unwrap_or_else(|| usage()))
                    .unwrap_or_else(|e| {
                        eprintln!("minicc: {e}");
                        std::process::exit(2);
                    });
            }
            "--llfi" => llfi = true,
            "--run" => mode = Mode::Run,
            "--profile" => mode = Mode::Profile,
            "--stats" => mode = Mode::Stats,
            "--inject" => {
                i += 1;
                mode = Mode::Inject(
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
                );
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--times" => times = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let file = file.unwrap_or_else(|| usage());
    if times {
        refine_telemetry::enable();
    }
    let source = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("minicc: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let module = refine_frontend::compile_source(&source).unwrap_or_else(|e| {
        eprintln!("minicc: {file}: {e}");
        std::process::exit(1);
    });

    let print_times = |when: &str| {
        if times {
            eprintln!("minicc: phase times ({when})");
            eprint!(
                "{}",
                refine_telemetry::span::render_phase_table(
                    &refine_telemetry::Phase::snapshot_all()
                )
            );
        }
    };

    // --emit ir / ir-opt print and exit before backend work.
    if let Mode::Emit(what) = &mode {
        match what.as_str() {
            "ir" => {
                print!("{}", refine_ir::printer::print_module(&module));
                print_times("frontend only");
                return;
            }
            "ir-opt" => {
                let mut m = module.clone();
                {
                    let _s = refine_telemetry::Span::enter(refine_telemetry::Phase::Optimize);
                    refine_ir::passes::optimize(&mut m, level);
                }
                print!("{}", refine_ir::printer::print_module(&m));
                print_times("frontend + optimizer");
                return;
            }
            _ => {}
        }
    }

    let compiled = if llfi {
        let (c, sites) =
            refine_llfi::compile_with_llfi(&module, level, &refine_llfi::LlfiOptions::default());
        eprintln!("minicc: LLFI instrumented {} IR sites", sites.len());
        c
    } else {
        compile_with_fi(&module, level, &fi)
    };
    print_times("full compile");

    match mode {
        Mode::Emit(what) => match what.as_str() {
            "asm" => {
                for sym in &compiled.binary.symbols {
                    println!("{}", compiled.binary.disasm(&sym.name).unwrap());
                }
            }
            "sites" => {
                for s in &compiled.sites {
                    println!("site {:>5}  {:20} {}", s.id, s.func, s.asm);
                }
                eprintln!("minicc: {} static sites", compiled.sites.len());
            }
            other => {
                eprintln!("minicc: unknown --emit kind `{other}`");
                std::process::exit(2);
            }
        },
        Mode::Run => {
            let r = Machine::run(&compiled.binary, &RunConfig::default(), &mut NoFi, None);
            for line in format_events(&r.output) {
                println!("{line}");
            }
            match r.outcome {
                RunOutcome::Exit(code) => std::process::exit(code as i32),
                other => {
                    eprintln!("minicc: program did not exit cleanly: {other:?}");
                    std::process::exit(101);
                }
            }
        }
        Mode::Stats => {
            let r = Machine::run(&compiled.binary, &RunConfig::default(), &mut NoFi, None);
            println!("static instructions : {}", compiled.binary.text.len());
            println!("functions           : {}", compiled.binary.symbols.len());
            println!("dynamic instructions: {}", r.instrs_retired);
            println!("cycles              : {}", r.cycles);
            println!("outcome             : {:?}", r.outcome);
        }
        Mode::Profile => {
            let mut rt = ProfilingRt::default();
            let r = Machine::run(&compiled.binary, &RunConfig::default(), &mut rt, None);
            println!("dynamic FI targets : {}", rt.count);
            println!("profile cycles     : {}", r.cycles);
            println!("golden output      :");
            for line in format_events(&r.output) {
                println!("  {line}");
            }
        }
        Mode::Inject(target) => {
            if compiled.sites.is_empty() {
                eprintln!("minicc: --inject requires --fi \"-fi=true ...\"");
                std::process::exit(2);
            }
            let mut prof = ProfilingRt::default();
            let profile = Machine::run(&compiled.binary, &RunConfig::default(), &mut prof, None);
            let golden = Golden::from_run(&profile);
            let cfg = RunConfig {
                max_cycles: profile.cycles.saturating_mul(10),
                stack_words: 1 << 16,
            };
            let mut inj = InjectingRt::new(target, seed);
            let r = Machine::run(&compiled.binary, &cfg, &mut inj, None);
            match inj.log {
                Some(log) => println!(
                    "fault: dynamic instr {} (site {}), operand {}, bit {}",
                    log.dynamic_index, log.site, log.operand, log.bit
                ),
                None => println!("fault: did not fire (target {target} > population {})", prof.count),
            }
            println!("outcome: {} ({:?})", classify(&golden, &r).label(), r.outcome);
            for line in format_events(&r.output) {
                println!("  {line}");
            }
        }
    }
}
