//! Outcome classification (paper §4.3.2 and Figure 3b).

use refine_machine::{OutEvent, RunOutcome, RunResult};

/// The three outcome categories of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Non-zero exit code, hardware trap, or timeout (10x profiled time).
    Crash,
    /// Clean exit but the final output differs from the golden output
    /// (Silent Output Corruption).
    Soc,
    /// Clean exit, golden output.
    Benign,
}

impl Outcome {
    /// Column label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Crash => "Crash",
            Outcome::Soc => "SOC",
            Outcome::Benign => "Benign",
        }
    }
}

/// The error-free reference produced by the profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct Golden {
    /// Formatted final output lines.
    pub lines: Vec<String>,
    /// Expected exit code (0 for every benchmark).
    pub exit_code: i64,
}

impl Golden {
    /// Capture a golden reference from an error-free run.
    pub fn from_run(r: &RunResult) -> Golden {
        let RunOutcome::Exit(code) = r.outcome else {
            panic!("golden run did not exit cleanly: {:?}", r.outcome);
        };
        Golden { lines: format_events(&r.output), exit_code: code }
    }
}

/// Render output events the way the original programs print results:
/// integers in full, doubles with six significant digits (so faults below
/// print precision are benign, as with real `printf("%g")` output diffs).
pub fn format_events(events: &[OutEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| match e {
            OutEvent::I64(v) => format!("{v}"),
            OutEvent::F64(v) => format!("{v:.6e}"),
            OutEvent::Str(s) => s.clone(),
        })
        .collect()
}

/// Classify one fault-injection run against the golden reference.
pub fn classify(golden: &Golden, run: &RunResult) -> Outcome {
    match run.outcome {
        RunOutcome::Trap(_) | RunOutcome::Timeout => Outcome::Crash,
        RunOutcome::Exit(code) if code != golden.exit_code => Outcome::Crash,
        RunOutcome::Exit(_) => {
            if format_events(&run.output) == golden.lines {
                Outcome::Benign
            } else {
                Outcome::Soc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_machine::Trap;

    fn run(outcome: RunOutcome, output: Vec<OutEvent>) -> RunResult {
        RunResult { outcome, output, cycles: 0, instrs_retired: 0 }
    }

    fn golden() -> Golden {
        Golden {
            lines: format_events(&[OutEvent::Str("x".into()), OutEvent::F64(1.25)]),
            exit_code: 0,
        }
    }

    #[test]
    fn trap_and_timeout_are_crashes() {
        let g = golden();
        assert_eq!(classify(&g, &run(RunOutcome::Trap(Trap::DivFault), vec![])), Outcome::Crash);
        assert_eq!(classify(&g, &run(RunOutcome::Timeout, vec![])), Outcome::Crash);
    }

    #[test]
    fn nonzero_exit_is_crash() {
        let g = golden();
        let r = run(
            RunOutcome::Exit(3),
            vec![OutEvent::Str("x".into()), OutEvent::F64(1.25)],
        );
        assert_eq!(classify(&g, &r), Outcome::Crash);
    }

    #[test]
    fn matching_output_is_benign() {
        let g = golden();
        let r = run(RunOutcome::Exit(0), vec![OutEvent::Str("x".into()), OutEvent::F64(1.25)]);
        assert_eq!(classify(&g, &r), Outcome::Benign);
    }

    #[test]
    fn differing_output_is_soc() {
        let g = golden();
        let r = run(RunOutcome::Exit(0), vec![OutEvent::Str("x".into()), OutEvent::F64(1.5)]);
        assert_eq!(classify(&g, &r), Outcome::Soc);
        // Missing output is SOC too.
        let r2 = run(RunOutcome::Exit(0), vec![OutEvent::Str("x".into())]);
        assert_eq!(classify(&g, &r2), Outcome::Soc);
    }

    /// Flips below the 6-significant-digit print precision are benign —
    /// this is what keeps low-mantissa FP faults in the benign column, as
    /// with the real applications' text output comparison.
    #[test]
    fn sub_precision_fp_noise_is_benign() {
        let g = Golden { lines: format_events(&[OutEvent::F64(1.25)]), exit_code: 0 };
        let noisy = f64::from_bits(1.25f64.to_bits() ^ 1); // flip the lowest mantissa bit
        let r = run(RunOutcome::Exit(0), vec![OutEvent::F64(noisy)]);
        assert_eq!(classify(&g, &r), Outcome::Benign);
        // But a high mantissa/exponent flip is visible.
        let big = f64::from_bits(1.25f64.to_bits() ^ (1 << 60));
        let r2 = run(RunOutcome::Exit(0), vec![OutEvent::F64(big)]);
        assert_eq!(classify(&g, &r2), Outcome::Soc);
    }

    #[test]
    fn nan_output_is_soc_not_crash() {
        let g = Golden { lines: format_events(&[OutEvent::F64(1.0)]), exit_code: 0 };
        let r = run(RunOutcome::Exit(0), vec![OutEvent::F64(f64::NAN)]);
        assert_eq!(classify(&g, &r), Outcome::Soc);
    }

    #[test]
    fn formatting_is_stable() {
        let lines = format_events(&[
            OutEvent::I64(-42),
            OutEvent::F64(123.456789),
            OutEvent::F64(0.0),
        ]);
        assert_eq!(lines, vec!["-42", "1.234568e2", "0.000000e0"]);
    }
}
