//! A uniform interface over the three fault injectors.

use crate::classify::Golden;
use refine_core::{CheckpointOptions, ExecEngine, FaultRecord, FiOptions, InjectingRt, ProfilingRt};
use refine_ir::passes::OptLevel;
use refine_ir::Module;
use refine_machine::{
    Binary, CheckpointConfig, CheckpointStore, ConvStats, FiRuntime, GoldenEnd, Machine, NoFi,
    Predecoded, Probe, QuiescentRt, RunConfig, RunOutcome, RunResult, SbStats, SuperblockProgram,
};
use refine_pinfi::{PinfiInjector, PinfiProfiler, PIN_OVERHEAD_CYCLES};
use refine_telemetry::{registry, Phase, Span};
use std::collections::HashMap;
use std::sync::Arc;

/// The three tools compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// IR-level compiler FI (state of the art before REFINE).
    Llfi,
    /// The paper's backend-pass FI.
    Refine,
    /// Binary-level FI on the DBI engine (the accuracy baseline).
    Pinfi,
}

impl Tool {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Llfi => "LLFI",
            Tool::Refine => "REFINE",
            Tool::Pinfi => "PINFI",
        }
    }

    /// All three, in the paper's column order.
    pub fn all() -> [Tool; 3] {
        [Tool::Llfi, Tool::Refine, Tool::Pinfi]
    }
}

/// A program prepared for a campaign with one tool: the right binary plus
/// profiling results (population, golden output, timeout budget).
#[derive(Debug, Clone)]
pub struct PreparedTool {
    /// Which tool.
    pub tool: Tool,
    /// The binary the campaign executes.
    pub binary: Binary,
    /// Dynamic FI-target population (the sampling universe).
    pub population: u64,
    /// Golden reference from the profiling run.
    pub golden: Golden,
    /// Cycles of the profiled execution (used for the 10x timeout rule and
    /// the Figure 5 speed accounting).
    pub profile_cycles: u64,
    /// Cycle budget per trial: 10x the profiled execution (§4.3.2).
    pub timeout_cycles: u64,
    /// Stack size for runs.
    pub stack_words: usize,
    /// Static-site id -> opcode label, for per-trial fault provenance
    /// (REFINE: backend-pass site table; LLFI: IR site table; PINFI has no
    /// site table — its opcodes resolve from the binary text at the
    /// faulting pc, see [`PreparedTool::site_opcode`]).
    pub site_opcodes: HashMap<u64, String>,
    /// Golden-run checkpoints + predecoded text for trial fast-forward
    /// (`None` with `--no-checkpoint`). Shared read-only across workers.
    pub fastpath: Option<Arc<FastPath>>,
    /// Detect post-injection golden convergence and splice the golden
    /// outcome (`--no-convergence` clears this; requires a fastpath).
    pub convergence: bool,
    /// The predecoded, superblock-fused text section for the fused engine.
    /// Always built (it embeds the exact-step [`Predecoded`] stream too)
    /// and shared read-only across workers; `--engine step` simply ignores
    /// the fusion metadata.
    pub superblock: Arc<SuperblockProgram>,
}

/// The immutable fast-forward companion of a prepared binary: the
/// profiling run's [`CheckpointStore`] and the [`Predecoded`] instruction
/// stream for the quiescent inner loop.
#[derive(Debug)]
pub struct FastPath {
    /// Snapshots of the (quiescent) profiling run.
    pub store: CheckpointStore,
    /// Flattened per-pc instruction stream.
    pub pre: Predecoded,
    /// The complete golden profiling result, spliced into trials that
    /// re-converge with it post-injection.
    pub golden_run: RunResult,
}

/// How one trial actually executed, for engine accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrialFastStats {
    /// The trial restored machine state from a golden-run checkpoint.
    pub restored: bool,
    /// Dynamic instructions skipped by that restore (0 when cold).
    pub skipped_instrs: u64,
    /// The trial converged with the golden run post-injection and its
    /// outcome was spliced.
    pub converged: bool,
    /// Post-injection instructions executed under convergence checking.
    pub conv_checked_instrs: u64,
    /// Instructions not executed thanks to the golden-suffix splice.
    pub conv_saved_instrs: u64,
    /// Fused superblock dispatches this trial (0 under `--engine step`).
    pub sb_dispatches: u64,
    /// Instructions retired through fused dispatch this trial.
    pub sb_fused_instrs: u64,
    /// Instructions retired via exact single-step fallback inside the
    /// superblock loops this trial.
    pub sb_stepped_instrs: u64,
}

impl TrialFastStats {
    /// Fold one trial's convergence-loop accounting into these stats.
    fn apply(&mut self, stats: &ConvStats) {
        self.converged = stats.converged;
        self.conv_checked_instrs = stats.checked_instrs;
        self.conv_saved_instrs = stats.saved_instrs;
    }

    /// Fold one trial's superblock dispatch accounting into these stats.
    fn apply_sb(&mut self, stats: &SbStats) {
        self.sb_dispatches = stats.dispatches;
        self.sb_fused_instrs = stats.fused_instrs;
        self.sb_stepped_instrs = stats.stepped_instrs;
    }
}

/// A completed trial with its fault log and fast-forward accounting.
#[derive(Debug, Clone)]
pub struct TrialRun {
    /// The machine run result.
    pub result: RunResult,
    /// Fault log entry, when the injection fired.
    pub log: Option<FaultRecord>,
    /// Checkpoint fast-forward accounting.
    pub fast: TrialFastStats,
}

/// Run the profiling phase, capturing checkpoints when `ckpt` is set.
fn profile_run(
    binary: &Binary,
    cfg: &RunConfig,
    rt: &mut dyn FiRuntime,
    probe: Option<&mut dyn Probe>,
    ckpt: Option<CheckpointConfig>,
) -> (RunResult, Option<CheckpointStore>) {
    match ckpt {
        Some(cc) => {
            let _s = Span::enter(Phase::CheckpointBuild);
            let (r, store) = Machine::run_checkpointed(binary, cfg, rt, probe, &cc);
            (r, Some(store))
        }
        None => (Machine::run(binary, cfg, rt, probe), None),
    }
}

/// First token of a disassembly line (`"add r1, r2, r3"` -> `"add"`).
fn asm_mnemonic(asm: &str) -> String {
    asm.split_whitespace().next().unwrap_or("?").to_string()
}

/// Predecode + fuse one prepared binary under its telemetry span.
fn build_superblock(binary: &Binary) -> Arc<SuperblockProgram> {
    let _s = Span::enter(Phase::SuperblockBuild);
    let sb = Arc::new(SuperblockProgram::new(binary));
    registry().superblock_built.incr();
    sb
}

impl PreparedTool {
    /// Compile/attach `tool` to the program and run the profiling phase,
    /// capturing golden-run checkpoints (the default configuration).
    pub fn prepare(module: &Module, tool: Tool) -> PreparedTool {
        Self::prepare_opt(module, tool, &CheckpointOptions::default())
    }

    /// [`PreparedTool::prepare`] with explicit checkpointing knobs
    /// (`CheckpointOptions::disabled()` is the `--no-checkpoint` path).
    pub fn prepare_opt(module: &Module, tool: Tool, ckpt: &CheckpointOptions) -> PreparedTool {
        let stack_words = 1 << 16;
        let cfg = RunConfig { max_cycles: u64::MAX / 4, stack_words };
        let mcfg = ckpt.enabled.then(|| ckpt.machine_config());
        let (binary, population, profile, store, site_opcodes) = match tool {
            Tool::Refine => {
                let c = refine_core::compile_with_fi(module, OptLevel::O2, &FiOptions::all());
                let opcodes =
                    c.sites.iter().map(|s| (s.id, asm_mnemonic(&s.asm))).collect();
                // REFINE's trigger-path scratch slot must be digest-exempt
                // or a fired trial can never match a golden digest.
                let mcfg = mcfg.map(|mut m| {
                    m.exempt_data_words = c.digest_exempt_words();
                    m
                });
                let mut rt = ProfilingRt::default();
                let (r, store) = profile_run(&c.binary, &cfg, &mut rt, None, mcfg);
                (c.binary, rt.count, r, store, opcodes)
            }
            Tool::Llfi => {
                let (c, sites) = refine_llfi::compile_with_llfi(
                    module,
                    OptLevel::O2,
                    &refine_llfi::LlfiOptions::default(),
                );
                let opcodes = sites.iter().map(|s| (s.id, s.opcode.clone())).collect();
                let mut rt = ProfilingRt::default();
                let (r, store) = profile_run(&c.binary, &cfg, &mut rt, None, mcfg);
                (c.binary, rt.count, r, store, opcodes)
            }
            Tool::Pinfi => {
                let c = refine_core::compile_with_fi(module, OptLevel::O2, &FiOptions::default());
                let _s = Span::enter(Phase::FiPinfiProbe);
                let mut probe = PinfiProfiler::default();
                let (r, store) = profile_run(&c.binary, &cfg, &mut NoFi, Some(&mut probe), mcfg);
                (c.binary, probe.count, r, store, HashMap::new())
            }
        };
        assert!(population > 0, "{}: empty FI population", tool.name());
        let golden = Golden::from_run(&profile);
        let profile_cycles = profile.cycles;
        let fastpath = store.map(|store| {
            Arc::new(FastPath { pre: Predecoded::new(&binary), store, golden_run: profile })
        });
        let superblock = build_superblock(&binary);
        PreparedTool {
            tool,
            binary,
            population,
            golden,
            profile_cycles,
            timeout_cycles: profile_cycles.saturating_mul(10),
            stack_words,
            site_opcodes,
            fastpath,
            convergence: ckpt.enabled && ckpt.convergence,
            superblock,
        }
    }

    /// Prepare REFINE with custom flags (`-fi-funcs`/`-fi-instrs`
    /// selections), for targeted campaigns and class ablations.
    pub fn prepare_refine_with(module: &Module, opts: &FiOptions) -> PreparedTool {
        assert!(opts.fi, "instrumentation must be enabled");
        let stack_words = 1 << 16;
        let cfg = RunConfig { max_cycles: u64::MAX / 4, stack_words };
        let c = refine_core::compile_with_fi(module, OptLevel::O2, opts);
        let site_opcodes = c.sites.iter().map(|s| (s.id, asm_mnemonic(&s.asm))).collect();
        let ckpt = CheckpointOptions::default();
        let mcfg = ckpt.enabled.then(|| {
            let mut m = ckpt.machine_config();
            m.exempt_data_words = c.digest_exempt_words();
            m
        });
        let mut rt = ProfilingRt::default();
        let (r, store) = profile_run(&c.binary, &cfg, &mut rt, None, mcfg);
        assert!(rt.count > 0, "selected FI population is empty");
        let golden = Golden::from_run(&r);
        let profile_cycles = r.cycles;
        let fastpath = store.map(|store| {
            Arc::new(FastPath { pre: Predecoded::new(&c.binary), store, golden_run: r })
        });
        let superblock = build_superblock(&c.binary);
        PreparedTool {
            tool: Tool::Refine,
            binary: c.binary,
            population: rt.count,
            golden,
            profile_cycles,
            timeout_cycles: profile_cycles.saturating_mul(10),
            stack_words,
            site_opcodes,
            fastpath,
            convergence: ckpt.enabled && ckpt.convergence,
            superblock,
        }
    }

    /// Execute one fault-injection trial at dynamic target instruction
    /// `target` (1-based) with RNG stream `seed`.
    pub fn run_trial(&self, target: u64, seed: u64) -> RunResult {
        self.run_trial_traced(target, seed).0
    }

    /// Like [`PreparedTool::run_trial`], but also returns the fault log
    /// entry (when the injection fired) for provenance records.
    pub fn run_trial_traced(&self, target: u64, seed: u64) -> (RunResult, Option<FaultRecord>) {
        let t = self.run_trial_full(target, seed);
        (t.result, t.log)
    }

    /// Full trial execution under the default engine
    /// ([`ExecEngine::Superblock`]). Kept as the campaign-facing entry so
    /// the whole existing differential suite exercises the fused engine
    /// against [`PreparedTool::run_trial_exact`].
    pub fn run_trial_full(&self, target: u64, seed: u64) -> TrialRun {
        self.run_trial_engine(ExecEngine::default(), target, seed)
    }

    /// Full trial execution: fast-forwards through the quiescent prefix via
    /// the golden-run checkpoint store when available, dispatching the
    /// quiescent / post-fire / convergence regions through `engine`'s loops
    /// (fused superblocks or per-instruction exact stepping). All engine ×
    /// checkpoint combinations are bit-identical (outcome, output, cycles,
    /// fault log) — the quiescent prefix of an injection run is
    /// observationally equal to the profiling run, so a profiling-run
    /// snapshot is an exact restore point for any trial whose target event
    /// lies beyond it, and the fused loops replicate the exact loops'
    /// accounting instruction-for-instruction.
    pub fn run_trial_engine(&self, engine: ExecEngine, target: u64, seed: u64) -> TrialRun {
        let Some(fp) = self.fastpath.as_deref() else {
            return match engine {
                ExecEngine::Superblock => self.run_trial_cold_sb(target, seed),
                ExecEngine::Step => self.run_trial_exact(target, seed),
            };
        };
        let sb = (engine == ExecEngine::Superblock).then(|| self.superblock.as_ref());
        let mut sbs = SbStats::default();
        let cfg = RunConfig { max_cycles: self.timeout_cycles, stack_words: self.stack_words };
        let (mut m, count0, mut fast) = {
            let _s = Span::enter(Phase::CheckpointRestore);
            match fp.store.nearest_below(target) {
                Some(ck) => (
                    Machine::resume(&self.binary, &cfg, ck),
                    ck.fi_count,
                    TrialFastStats { restored: true, skipped_instrs: ck.retired, ..Default::default() },
                ),
                None => (Machine::new(&self.binary, &cfg), 0, TrialFastStats::default()),
            }
        };
        // Stop the fast loop one FI event short of the target so the exact
        // loop — with the real injector attached — handles the firing event
        // itself (and everything after it).
        let stop = target.saturating_sub(1);
        let golden = self.golden_end(fp);
        let mut run = match self.tool {
            Tool::Refine | Tool::Llfi => 'run: {
                let mut q = QuiescentRt::starting_at(count0);
                let quiesced = match sb {
                    Some(sb) => m.run_sb_calls(sb, &mut q, stop, cfg.max_cycles, &mut sbs),
                    None => m.run_quiescent_calls(&fp.pre, &mut q, stop, cfg.max_cycles),
                };
                if let Some(outcome) = quiesced {
                    // Program ended (or timed out) before the target event:
                    // the injector would never have fired.
                    break 'run TrialRun { result: m.into_result(outcome), log: None, fast };
                }
                let mut rt = InjectingRt::resume(target, seed, q.count);
                let Some(golden) = golden else {
                    // Exact loop through the firing event, then the fused
                    // loop (post-fire the injector is observationally
                    // quiescent) or the attached exact run to the end.
                    let outcome = match sb {
                        Some(sb) => match m.run_exact_until_fired(cfg.max_cycles, &mut rt, None) {
                            Some(outcome) => outcome,
                            None => m
                                .run_sb_calls(sb, &mut rt, u64::MAX, cfg.max_cycles, &mut sbs)
                                .expect("cycle-bounded run terminates"),
                        },
                        None => {
                            let result = m.finish_run(cfg.max_cycles, &mut rt, None);
                            break 'run TrialRun { result, log: rt.log, fast };
                        }
                    };
                    break 'run TrialRun { result: m.into_result(outcome), log: rt.log, fast };
                };
                // Exact loop only through the firing event, then the
                // monomorphized convergence loop for the suffix.
                if let Some(outcome) = m.run_exact_until_fired(cfg.max_cycles, &mut rt, None) {
                    break 'run TrialRun { result: m.into_result(outcome), log: rt.log, fast };
                }
                let mut stats = ConvStats::default();
                let mut q = QuiescentRt::starting_at(rt.fi_count());
                let outcome = match sb {
                    Some(sb) => m.run_sb_converging_calls(
                        sb,
                        &mut q,
                        &fp.store,
                        golden,
                        cfg.max_cycles,
                        &mut stats,
                        &mut sbs,
                    ),
                    None => m.run_converging_calls(
                        &fp.pre,
                        &mut q,
                        &fp.store,
                        golden,
                        cfg.max_cycles,
                        &mut stats,
                    ),
                };
                fast.apply(&stats);
                TrialRun { result: m.into_result(outcome), log: rt.log, fast }
            }
            Tool::Pinfi => 'run: {
                let mut count = count0;
                let quiesced = match sb {
                    Some(sb) => m.run_sb_probed(
                        sb,
                        PIN_OVERHEAD_CYCLES,
                        &mut count,
                        stop,
                        cfg.max_cycles,
                        &mut sbs,
                    ),
                    None => m.run_quiescent_probed(
                        &fp.pre,
                        PIN_OVERHEAD_CYCLES,
                        &mut count,
                        stop,
                        cfg.max_cycles,
                    ),
                };
                if let Some(outcome) = quiesced {
                    break 'run TrialRun { result: m.into_result(outcome), log: None, fast };
                }
                let mut probe = PinfiInjector::resume(target, seed, count);
                let Some(golden) = golden else {
                    // The probe detaches at fire, so post-fire execution is
                    // probe-free: the fused loop with `NoFi` is exact.
                    let outcome = match sb {
                        Some(sb) => match m.run_exact_until_fired(
                            cfg.max_cycles,
                            &mut NoFi,
                            Some(&mut probe),
                        ) {
                            Some(outcome) => outcome,
                            None => m
                                .run_sb_calls(sb, &mut NoFi, u64::MAX, cfg.max_cycles, &mut sbs)
                                .expect("cycle-bounded run terminates"),
                        },
                        None => {
                            let result = m.finish_run(cfg.max_cycles, &mut NoFi, Some(&mut probe));
                            break 'run TrialRun { result, log: probe.log, fast };
                        }
                    };
                    break 'run TrialRun { result: m.into_result(outcome), log: probe.log, fast };
                };
                if let Some(outcome) =
                    m.run_exact_until_fired(cfg.max_cycles, &mut NoFi, Some(&mut probe))
                {
                    break 'run TrialRun { result: m.into_result(outcome), log: probe.log, fast };
                }
                let mut stats = ConvStats::default();
                // The injector counted the firing event (== target) and
                // detached; the convergence loop keeps tallying targets at
                // fetch exactly as the attached profiling probe did.
                let mut count = probe.fi_count();
                let outcome = match sb {
                    Some(sb) => m.run_sb_converging_probed(
                        sb,
                        &mut count,
                        &fp.store,
                        golden,
                        cfg.max_cycles,
                        &mut stats,
                        &mut sbs,
                    ),
                    None => m.run_converging_probed(
                        &fp.pre,
                        &mut count,
                        &fp.store,
                        golden,
                        cfg.max_cycles,
                        &mut stats,
                    ),
                };
                fast.apply(&stats);
                TrialRun { result: m.into_result(outcome), log: probe.log, fast }
            }
        };
        run.fast.apply_sb(&sbs);
        run
    }

    /// Cold (no-fastpath) trial under the fused engine: the same quiescent
    /// -> fire -> run-to-end structure as the warm path, from the initial
    /// state. This is where `--no-checkpoint` campaigns get their
    /// superblock speedup; bit-identical to
    /// [`PreparedTool::run_trial_exact`] by the same resume argument as the
    /// checkpoint path (the counting runtime consumes no RNG before the
    /// fire, and the PINFI probe detaches at fire).
    fn run_trial_cold_sb(&self, target: u64, seed: u64) -> TrialRun {
        let sb = self.superblock.as_ref();
        let mut sbs = SbStats::default();
        let cfg = RunConfig { max_cycles: self.timeout_cycles, stack_words: self.stack_words };
        let mut m = Machine::new(&self.binary, &cfg);
        let stop = target.saturating_sub(1);
        let fast = TrialFastStats::default();
        let mut run = match self.tool {
            Tool::Refine | Tool::Llfi => 'run: {
                let mut q = QuiescentRt::default();
                if let Some(outcome) = m.run_sb_calls(sb, &mut q, stop, cfg.max_cycles, &mut sbs)
                {
                    break 'run TrialRun { result: m.into_result(outcome), log: None, fast };
                }
                let mut rt = InjectingRt::resume(target, seed, q.count);
                let outcome = match m.run_exact_until_fired(cfg.max_cycles, &mut rt, None) {
                    Some(outcome) => outcome,
                    None => m
                        .run_sb_calls(sb, &mut rt, u64::MAX, cfg.max_cycles, &mut sbs)
                        .expect("cycle-bounded run terminates"),
                };
                TrialRun { result: m.into_result(outcome), log: rt.log, fast }
            }
            Tool::Pinfi => 'run: {
                let mut count = 0u64;
                if let Some(outcome) = m.run_sb_probed(
                    sb,
                    PIN_OVERHEAD_CYCLES,
                    &mut count,
                    stop,
                    cfg.max_cycles,
                    &mut sbs,
                ) {
                    break 'run TrialRun { result: m.into_result(outcome), log: None, fast };
                }
                let mut probe = PinfiInjector::resume(target, seed, count);
                let outcome =
                    match m.run_exact_until_fired(cfg.max_cycles, &mut NoFi, Some(&mut probe)) {
                        Some(outcome) => outcome,
                        None => m
                            .run_sb_calls(sb, &mut NoFi, u64::MAX, cfg.max_cycles, &mut sbs)
                            .expect("cycle-bounded run terminates"),
                    };
                TrialRun { result: m.into_result(outcome), log: probe.log, fast }
            }
        };
        run.fast.apply_sb(&sbs);
        run
    }

    /// The golden run's terminal facts for convergence splicing, when
    /// convergence is enabled and the golden run exited cleanly (a golden
    /// trap or timeout — which does not occur for the suite programs —
    /// would make "rest is identical" splicing meaningless for timing).
    fn golden_end<'g>(&self, fp: &'g FastPath) -> Option<GoldenEnd<'g>> {
        if !self.convergence {
            return None;
        }
        let g = &fp.golden_run;
        let RunOutcome::Exit(exit_code) = g.outcome else { return None };
        Some(GoldenEnd {
            exit_code,
            output: &g.output,
            cycles: g.cycles,
            retired: g.instrs_retired,
            // PINFI's profiling run paid per-fetch probe overhead that a
            // detached post-fire trial does not; call-hook tools profile
            // without a probe.
            probe_overhead: match self.tool {
                Tool::Pinfi => PIN_OVERHEAD_CYCLES,
                Tool::Refine | Tool::Llfi => 0,
            },
        })
    }

    /// Reference trial execution: full interpretation from the initial
    /// state, no checkpoint restore and no predecoded fast loop. This is
    /// the `--no-checkpoint` path and the oracle the differential tests
    /// compare [`PreparedTool::run_trial_full`] against.
    pub fn run_trial_exact(&self, target: u64, seed: u64) -> TrialRun {
        let cfg = RunConfig { max_cycles: self.timeout_cycles, stack_words: self.stack_words };
        match self.tool {
            Tool::Refine | Tool::Llfi => {
                let mut rt = InjectingRt::new(target, seed);
                let result = Machine::run(&self.binary, &cfg, &mut rt, None);
                TrialRun { result, log: rt.log, fast: TrialFastStats::default() }
            }
            Tool::Pinfi => {
                let mut probe = PinfiInjector::new(target, seed);
                let result = Machine::run(&self.binary, &cfg, &mut NoFi, Some(&mut probe));
                TrialRun { result, log: probe.log, fast: TrialFastStats::default() }
            }
        }
    }

    /// Opcode label of a fired fault's injection site (None when the site
    /// is unknown, which does not happen for faults this tool produced).
    pub fn site_opcode(&self, record: &FaultRecord) -> Option<String> {
        match self.tool {
            // PINFI logs the faulting pc; the opcode comes from the text.
            Tool::Pinfi => self
                .binary
                .text
                .get(record.site as usize)
                .map(|i| i.mnemonic()),
            Tool::Refine | Tool::Llfi => self.site_opcodes.get(&record.site).cloned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Outcome};

    fn module() -> Module {
        refine_benchmarks::by_name("HPCCG-1.0").unwrap().module()
    }

    #[test]
    fn all_tools_prepare_with_same_golden() {
        let m = module();
        let prepared: Vec<PreparedTool> =
            Tool::all().iter().map(|t| PreparedTool::prepare(&m, *t)).collect();
        // Golden output must agree across tools (it is the program's output).
        assert_eq!(prepared[0].golden, prepared[1].golden);
        assert_eq!(prepared[1].golden, prepared[2].golden);
        // REFINE and PINFI sample the identical population; LLFI's is
        // smaller (IR-only).
        let llfi = &prepared[0];
        let refine = &prepared[1];
        let pinfi = &prepared[2];
        assert_eq!(refine.population, pinfi.population);
        assert!(llfi.population < pinfi.population);
    }

    #[test]
    fn trials_classify_into_all_categories_eventually() {
        let m = module();
        let p = PreparedTool::prepare(&m, Tool::Refine);
        let mut seen = std::collections::HashSet::new();
        for k in 0..60u64 {
            let target = 1 + (p.population * k / 60);
            let r = p.run_trial(target, k * 7 + 1);
            seen.insert(classify(&p.golden, &r));
        }
        assert!(seen.contains(&Outcome::Benign), "no benign outcome in 60 trials");
        assert!(seen.len() >= 2, "expected some outcome diversity: {seen:?}");
    }

    #[test]
    fn trial_is_deterministic_given_target_and_seed() {
        let m = module();
        let p = PreparedTool::prepare(&m, Tool::Pinfi);
        let a = p.run_trial(1234, 5);
        let b = p.run_trial(1234, 5);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.output, b.output);
        assert_eq!(a.cycles, b.cycles);
    }
}
