//! A uniform interface over the three fault injectors.

use crate::classify::Golden;
use refine_core::{FaultRecord, FiOptions, InjectingRt, ProfilingRt};
use refine_ir::passes::OptLevel;
use refine_ir::Module;
use refine_machine::{Binary, Machine, NoFi, RunConfig, RunResult};
use refine_pinfi::{PinfiInjector, PinfiProfiler};
use refine_telemetry::{Phase, Span};
use std::collections::HashMap;

/// The three tools compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// IR-level compiler FI (state of the art before REFINE).
    Llfi,
    /// The paper's backend-pass FI.
    Refine,
    /// Binary-level FI on the DBI engine (the accuracy baseline).
    Pinfi,
}

impl Tool {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Llfi => "LLFI",
            Tool::Refine => "REFINE",
            Tool::Pinfi => "PINFI",
        }
    }

    /// All three, in the paper's column order.
    pub fn all() -> [Tool; 3] {
        [Tool::Llfi, Tool::Refine, Tool::Pinfi]
    }
}

/// A program prepared for a campaign with one tool: the right binary plus
/// profiling results (population, golden output, timeout budget).
#[derive(Debug, Clone)]
pub struct PreparedTool {
    /// Which tool.
    pub tool: Tool,
    /// The binary the campaign executes.
    pub binary: Binary,
    /// Dynamic FI-target population (the sampling universe).
    pub population: u64,
    /// Golden reference from the profiling run.
    pub golden: Golden,
    /// Cycles of the profiled execution (used for the 10x timeout rule and
    /// the Figure 5 speed accounting).
    pub profile_cycles: u64,
    /// Cycle budget per trial: 10x the profiled execution (§4.3.2).
    pub timeout_cycles: u64,
    /// Stack size for runs.
    pub stack_words: usize,
    /// Static-site id -> opcode label, for per-trial fault provenance
    /// (REFINE: backend-pass site table; LLFI: IR site table; PINFI has no
    /// site table — its opcodes resolve from the binary text at the
    /// faulting pc, see [`PreparedTool::site_opcode`]).
    pub site_opcodes: HashMap<u64, String>,
}

/// First token of a disassembly line (`"add r1, r2, r3"` -> `"add"`).
fn asm_mnemonic(asm: &str) -> String {
    asm.split_whitespace().next().unwrap_or("?").to_string()
}

impl PreparedTool {
    /// Compile/attach `tool` to the program and run the profiling phase.
    pub fn prepare(module: &Module, tool: Tool) -> PreparedTool {
        let stack_words = 1 << 16;
        let cfg = RunConfig { max_cycles: u64::MAX / 4, stack_words };
        let (binary, population, profile, site_opcodes) = match tool {
            Tool::Refine => {
                let c = refine_core::compile_with_fi(module, OptLevel::O2, &FiOptions::all());
                let opcodes =
                    c.sites.iter().map(|s| (s.id, asm_mnemonic(&s.asm))).collect();
                let mut rt = ProfilingRt::default();
                let r = Machine::run(&c.binary, &cfg, &mut rt, None);
                (c.binary, rt.count, r, opcodes)
            }
            Tool::Llfi => {
                let (c, sites) = refine_llfi::compile_with_llfi(
                    module,
                    OptLevel::O2,
                    &refine_llfi::LlfiOptions::default(),
                );
                let opcodes = sites.iter().map(|s| (s.id, s.opcode.clone())).collect();
                let mut rt = ProfilingRt::default();
                let r = Machine::run(&c.binary, &cfg, &mut rt, None);
                (c.binary, rt.count, r, opcodes)
            }
            Tool::Pinfi => {
                let c = refine_core::compile_with_fi(module, OptLevel::O2, &FiOptions::default());
                let _s = Span::enter(Phase::FiPinfiProbe);
                let mut probe = PinfiProfiler::default();
                let r = Machine::run(&c.binary, &cfg, &mut NoFi, Some(&mut probe));
                (c.binary, probe.count, r, HashMap::new())
            }
        };
        assert!(population > 0, "{}: empty FI population", tool.name());
        let golden = Golden::from_run(&profile);
        PreparedTool {
            tool,
            binary,
            population,
            golden,
            profile_cycles: profile.cycles,
            timeout_cycles: profile.cycles.saturating_mul(10),
            stack_words,
            site_opcodes,
        }
    }

    /// Prepare REFINE with custom flags (`-fi-funcs`/`-fi-instrs`
    /// selections), for targeted campaigns and class ablations.
    pub fn prepare_refine_with(module: &Module, opts: &FiOptions) -> PreparedTool {
        assert!(opts.fi, "instrumentation must be enabled");
        let stack_words = 1 << 16;
        let cfg = RunConfig { max_cycles: u64::MAX / 4, stack_words };
        let c = refine_core::compile_with_fi(module, OptLevel::O2, opts);
        let site_opcodes = c.sites.iter().map(|s| (s.id, asm_mnemonic(&s.asm))).collect();
        let mut rt = ProfilingRt::default();
        let r = Machine::run(&c.binary, &cfg, &mut rt, None);
        assert!(rt.count > 0, "selected FI population is empty");
        let golden = Golden::from_run(&r);
        PreparedTool {
            tool: Tool::Refine,
            binary: c.binary,
            population: rt.count,
            golden,
            profile_cycles: r.cycles,
            timeout_cycles: r.cycles.saturating_mul(10),
            stack_words,
            site_opcodes,
        }
    }

    /// Execute one fault-injection trial at dynamic target instruction
    /// `target` (1-based) with RNG stream `seed`.
    pub fn run_trial(&self, target: u64, seed: u64) -> RunResult {
        self.run_trial_traced(target, seed).0
    }

    /// Like [`PreparedTool::run_trial`], but also returns the fault log
    /// entry (when the injection fired) for provenance records.
    pub fn run_trial_traced(&self, target: u64, seed: u64) -> (RunResult, Option<FaultRecord>) {
        let cfg = RunConfig { max_cycles: self.timeout_cycles, stack_words: self.stack_words };
        match self.tool {
            Tool::Refine | Tool::Llfi => {
                let mut rt = InjectingRt::new(target, seed);
                let r = Machine::run(&self.binary, &cfg, &mut rt, None);
                (r, rt.log)
            }
            Tool::Pinfi => {
                let mut probe = PinfiInjector::new(target, seed);
                let r = Machine::run(&self.binary, &cfg, &mut NoFi, Some(&mut probe));
                (r, probe.log)
            }
        }
    }

    /// Opcode label of a fired fault's injection site (None when the site
    /// is unknown, which does not happen for faults this tool produced).
    pub fn site_opcode(&self, record: &FaultRecord) -> Option<String> {
        match self.tool {
            // PINFI logs the faulting pc; the opcode comes from the text.
            Tool::Pinfi => self
                .binary
                .text
                .get(record.site as usize)
                .map(|i| i.mnemonic()),
            Tool::Refine | Tool::Llfi => self.site_opcodes.get(&record.site).cloned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Outcome};

    fn module() -> Module {
        refine_benchmarks::by_name("HPCCG-1.0").unwrap().module()
    }

    #[test]
    fn all_tools_prepare_with_same_golden() {
        let m = module();
        let prepared: Vec<PreparedTool> =
            Tool::all().iter().map(|t| PreparedTool::prepare(&m, *t)).collect();
        // Golden output must agree across tools (it is the program's output).
        assert_eq!(prepared[0].golden, prepared[1].golden);
        assert_eq!(prepared[1].golden, prepared[2].golden);
        // REFINE and PINFI sample the identical population; LLFI's is
        // smaller (IR-only).
        let llfi = &prepared[0];
        let refine = &prepared[1];
        let pinfi = &prepared[2];
        assert_eq!(refine.population, pinfi.population);
        assert!(llfi.population < pinfi.population);
    }

    #[test]
    fn trials_classify_into_all_categories_eventually() {
        let m = module();
        let p = PreparedTool::prepare(&m, Tool::Refine);
        let mut seen = std::collections::HashSet::new();
        for k in 0..60u64 {
            let target = 1 + (p.population * k / 60);
            let r = p.run_trial(target, k * 7 + 1);
            seen.insert(classify(&p.golden, &r));
        }
        assert!(seen.contains(&Outcome::Benign), "no benign outcome in 60 trials");
        assert!(seen.len() >= 2, "expected some outcome diversity: {seen:?}");
    }

    #[test]
    fn trial_is_deterministic_given_target_and_seed() {
        let m = module();
        let p = PreparedTool::prepare(&m, Tool::Pinfi);
        let a = p.run_trial(1234, 5);
        let b = p.run_trial(1234, 5);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.output, b.output);
        assert_eq!(a.cycles, b.cycles);
    }
}
