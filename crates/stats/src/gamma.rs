//! Gamma-family special functions (Lanczos `ln Γ`, regularized incomplete
//! gamma by series/continued fraction), accurate to ~1e-12 over the ranges a
//! chi-squared test needs.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    // Published Lanczos coefficients, kept verbatim (a digit or two past
    // f64 precision).
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Lower regularized incomplete gamma `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation converges quickly here.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Upper regularized incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Continued-fraction evaluation of `Q(a, x)` (modified Lentz).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-10); // Γ(5) = 4! = 24
        close(ln_gamma(0.5), (std::f64::consts::PI).sqrt().ln(), 1e-10);
        close(ln_gamma(10.5), 13.940_625_219_403_76, 1e-8); // ln(9.5!)
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.5, 1.0, 2.5, 7.0, 20.0] {
            for &x in &[0.1, 1.0, 3.0, 10.0, 40.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.2, 1.0, 3.0, 8.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn chi2_survival_known_values() {
        // Q(k/2, x/2) is the chi-squared survival function.
        // chi2 with 2 dof at x = 5.991 -> p = 0.05.
        close(gamma_q(1.0, 5.991 / 2.0), 0.05, 1e-3);
        // chi2 with 1 dof at x = 3.841 -> p = 0.05.
        close(gamma_q(0.5, 3.841 / 2.0), 0.05, 1e-3);
        // chi2 with 2 dof at x = 9.210 -> p = 0.01.
        close(gamma_q(1.0, 9.210 / 2.0), 0.01, 1e-4);
    }

    #[test]
    fn monotonicity() {
        let mut last = 0.0;
        for i in 1..50 {
            let p = gamma_p(3.0, i as f64 * 0.5);
            assert!(p >= last);
            last = p;
        }
        assert!(last > 0.999);
    }
}
