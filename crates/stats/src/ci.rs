//! Confidence intervals for outcome proportions (the error bars of the
//! paper's Figure 4).

/// Normal-approximation (Wald) interval for a proportion: `p ± z·√(p(1-p)/n)`.
/// Returns `(low, high)` clamped to `[0, 1]`.
pub fn proportion_ci(successes: u64, n: u64, z: f64) -> (f64, f64) {
    assert!(n > 0, "empty sample");
    let p = successes as f64 / n as f64;
    let half = z * (p * (1.0 - p) / n as f64).sqrt();
    ((p - half).max(0.0), (p + half).min(1.0))
}

/// Wilson score interval — better behaved near 0/1 than Wald.
pub fn wilson_ci(successes: u64, n: u64, z: f64) -> (f64, f64) {
    assert!(n > 0, "empty sample");
    let p = successes as f64 / n as f64;
    let nf = n as f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The z-score for a 95% two-sided confidence level.
pub const Z_95: f64 = 1.959_963_984_540_054;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wald_interval_basics() {
        let (lo, hi) = proportion_ci(534, 1068, Z_95);
        assert!((lo - 0.47).abs() < 0.01);
        assert!((hi - 0.53).abs() < 0.01);
        // Margin of error at n=1068, p=0.5 is = 3% (the paper's design point).
        assert!((hi - lo) / 2.0 <= 0.0301);
    }

    #[test]
    fn wald_clamps_to_unit_interval() {
        let (lo, _) = proportion_ci(0, 100, Z_95);
        assert_eq!(lo, 0.0);
        let (_, hi) = proportion_ci(100, 100, Z_95);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        for &(s, n) in &[(1u64, 50u64), (25, 50), (49, 50), (0, 10)] {
            let p = s as f64 / n as f64;
            let (lo, hi) = wilson_ci(s, n, Z_95);
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
            assert!(lo >= 0.0 && hi <= 1.0);
        }
    }

    #[test]
    fn wilson_is_nonzero_at_zero_successes() {
        // Unlike Wald, the Wilson upper bound is informative at 0/n.
        let (lo, hi) = wilson_ci(0, 100, Z_95);
        assert!(lo < 1e-12);
        assert!(hi > 0.0 && hi < 0.05);
    }

    #[test]
    fn intervals_shrink_with_n() {
        let (l1, h1) = proportion_ci(50, 100, Z_95);
        let (l2, h2) = proportion_ci(500, 1000, Z_95);
        assert!(h2 - l2 < h1 - l1);
    }
}
