#![warn(missing_docs)]

//! `refine-stats` — the statistical machinery of the paper's evaluation.
//!
//! * [`chi2`] — Pearson chi-squared tests on contingency tables (Table 4/5),
//!   with p-values computed from the regularized incomplete gamma function;
//! * [`gamma`] — `ln Γ`, lower/upper regularized incomplete gamma;
//! * [`ci`] — confidence intervals for outcome proportions (the error bars
//!   of Figure 4);
//! * [`samples`] — the Leveugle et al. statistical fault-injection sample
//!   size (why the paper runs exactly 1,068 experiments per configuration).

pub mod chi2;
pub mod ci;
pub mod gamma;
pub mod samples;

pub use chi2::{chi2_contingency, Chi2Result};
pub use ci::{proportion_ci, wilson_ci};
pub use samples::sample_size;
