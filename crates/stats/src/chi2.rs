//! Pearson chi-squared test of independence on contingency tables.
//!
//! The paper (Table 4/5) builds an `n_tools x 3` table of outcome
//! frequencies (crash / SOC / benign) for each pair of FI tools and asks
//! whether the tool choice affects the outcome distribution at α = 0.05.

use crate::gamma::gamma_q;

/// Result of a chi-squared contingency test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom `(rows-1)(cols-1)`.
    pub dof: u32,
    /// Survival-function p-value.
    pub p_value: f64,
}

impl Chi2Result {
    /// Reject the null hypothesis ("tool choice has no effect") at
    /// significance `alpha`?
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run the test on a rows x cols table of observed counts.
///
/// Columns whose total is zero are dropped (they contribute no information;
/// e.g. CG in the paper, where no tool observed any SOC). Panics on tables
/// with fewer than 2 informative rows/columns or with an empty row.
pub fn chi2_contingency(table: &[Vec<u64>]) -> Chi2Result {
    assert!(table.len() >= 2, "need at least two rows");
    let cols = table[0].len();
    assert!(table.iter().all(|r| r.len() == cols), "ragged table");

    let col_totals: Vec<u64> = (0..cols)
        .map(|c| table.iter().map(|r| r[c]).sum())
        .collect();
    let keep: Vec<usize> = (0..cols).filter(|&c| col_totals[c] > 0).collect();
    assert!(!keep.is_empty(), "empty contingency table");
    if keep.len() == 1 {
        // Every observation in one category for every row: the row
        // distributions are identical by construction, so there is no
        // evidence of a difference (small campaigns can produce this).
        return Chi2Result { statistic: 0.0, dof: 0, p_value: 1.0 };
    }

    let row_totals: Vec<u64> = table
        .iter()
        .map(|r| keep.iter().map(|&c| r[c]).sum())
        .collect();
    assert!(row_totals.iter().all(|&t| t > 0), "empty row in contingency table");
    let grand: u64 = row_totals.iter().sum();

    let mut stat = 0.0;
    for (ri, row) in table.iter().enumerate() {
        for &c in &keep {
            let expected = row_totals[ri] as f64 * col_totals[c] as f64 / grand as f64;
            let d = row[c] as f64 - expected;
            stat += d * d / expected;
        }
    }
    let dof = ((table.len() - 1) * (keep.len() - 1)) as u32;
    let p_value = gamma_q(dof as f64 / 2.0, stat / 2.0);
    Chi2Result { statistic: stat, dof, p_value }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 4: LLFI vs PINFI on AMG2013 must reject decisively.
    #[test]
    fn paper_table4_rejects() {
        let table = vec![vec![395, 168, 505], vec![269, 70, 729]];
        let r = chi2_contingency(&table);
        assert_eq!(r.dof, 2);
        assert!(r.statistic > 90.0, "statistic = {}", r.statistic);
        assert!(r.p_value < 1e-10);
        assert!(r.significant(0.05));
    }

    /// The paper's Table 6 REFINE vs PINFI rows must *not* reject
    /// (p-values quoted in Table 5: AMG2013 0.40, HPCCG 0.81, ...).
    #[test]
    fn paper_refine_vs_pinfi_accepts() {
        let cases: [(&str, [u64; 3], [u64; 3], f64); 4] = [
            ("AMG2013", [254, 87, 727], [269, 70, 729], 0.40),
            ("HPCCG", [159, 68, 841], [162, 77, 829], 0.81),
            ("XSBench", [179, 194, 695], [188, 203, 677], 0.69),
            ("lulesh", [76, 2, 990], [76, 4, 988], 0.60),
        ];
        for (name, refine, pinfi, expected_p) in cases {
            let r = chi2_contingency(&[refine.to_vec(), pinfi.to_vec()]);
            assert!(!r.significant(0.05), "{name} should not reject");
            // The paper's quoted p-values track ours within ~0.1 (they may
            // have used a likelihood-ratio variant); the scientific claim —
            // no significant difference — must hold exactly.
            assert!(
                (r.p_value - expected_p).abs() < 0.12,
                "{name}: p = {:.3}, paper says {expected_p}",
                r.p_value
            );
        }
    }

    /// Zero-total columns (CG has no SOCs at all) are dropped, as in the
    /// paper's CG row.
    #[test]
    fn zero_column_dropped() {
        let table = vec![vec![201, 0, 867], vec![175, 0, 893]];
        let r = chi2_contingency(&table);
        assert_eq!(r.dof, 1);
        assert!(!r.significant(0.05)); // paper Table 5: CG p = 0.06... close!
        assert!(r.p_value > 0.05 && r.p_value < 0.25, "p = {}", r.p_value);
    }

    #[test]
    fn identical_rows_give_p_one() {
        let r = chi2_contingency(&[vec![100, 200, 300], vec![100, 200, 300]]);
        assert!(r.statistic < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_example() {
        // Classic 2x2: [[10, 20], [20, 10]]: chi2 = 11.11 excluding Yates.
        let r = chi2_contingency(&[vec![10, 20], vec![20, 10]]);
        assert!((r.statistic - 6.666_666).abs() < 1e-3, "stat = {}", r.statistic);
        assert_eq!(r.dof, 1);
        assert!((r.p_value - 0.009_823).abs() < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    #[should_panic(expected = "two rows")]
    fn rejects_single_row() {
        chi2_contingency(&[vec![1, 2, 3]]);
    }

    /// All observations in one category (tiny campaigns): identical
    /// distributions, p = 1, no panic.
    #[test]
    fn single_informative_column_is_not_significant() {
        let r = chi2_contingency(&[vec![0, 0, 5], vec![0, 0, 5]]);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant(0.05));
        let r = chi2_contingency(&[vec![0, 0, 7], vec![0, 0, 3]]);
        assert_eq!(r.p_value, 1.0, "different totals, same (degenerate) distribution");
    }

    #[test]
    fn three_tool_comparison_works() {
        let r = chi2_contingency(&[
            vec![395, 168, 505],
            vec![254, 87, 727],
            vec![269, 70, 729],
        ]);
        assert_eq!(r.dof, 4);
        assert!(r.significant(0.05), "LLFI's divergence dominates");
    }
}
