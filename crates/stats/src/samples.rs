//! Statistical fault-injection sample sizing (Leveugle et al., DATE'09),
//! the method the paper uses to justify 1,068 experiments per configuration
//! (margin of error ≤ 3% at 95% confidence).

use crate::ci::Z_95;

/// Number of samples needed from a population of `population` faults for
/// margin of error `e` at confidence z-score `z`, assuming worst-case
/// p = 0.5:
///
/// `n = N / (1 + e² (N-1) / (z² p(1-p)))`
pub fn sample_size(population: u64, e: f64, z: f64) -> u64 {
    assert!(population > 0 && e > 0.0 && z > 0.0);
    let n = population as f64;
    let p = 0.5;
    let num = n;
    let den = 1.0 + e * e * (n - 1.0) / (z * z * p * (1.0 - p));
    (num / den).ceil() as u64
}

/// The paper's design point: e = 3%, 95% confidence, effectively infinite
/// population — 1,068 samples.
pub fn paper_sample_size(population: u64) -> u64 {
    sample_size(population, 0.03, Z_95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_population_gives_1068() {
        // The paper's number: infinite-population limit of 3%@95% is 1067.07,
        // so 1068 samples.
        assert_eq!(paper_sample_size(1_000_000_000), 1068);
        assert_eq!(paper_sample_size(100_000_000), 1068);
    }

    #[test]
    fn moderate_population_needs_fewer() {
        let n = paper_sample_size(10_000);
        assert!(n < 1068, "finite-population correction: {n}");
        assert!(n > 900);
    }

    #[test]
    fn tiny_population_caps_at_population() {
        assert!(paper_sample_size(50) <= 50);
    }

    #[test]
    fn tighter_error_needs_more_samples() {
        let loose = sample_size(1_000_000_000, 0.05, Z_95);
        let tight = sample_size(1_000_000_000, 0.01, Z_95);
        assert!(loose < 1068);
        assert!(tight > 9000);
    }
}
