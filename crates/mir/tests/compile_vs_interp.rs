//! Differential testing: for every program, the compiled binary running on
//! the machine must produce the same exit code and output events as the IR
//! interpreter — at O0 and at O2.

use refine_ir::interp::{Interp, OutEvent as IrEvent};
use refine_ir::passes::OptLevel;
use refine_ir::{
    CastOp, FBinOp, FPred, FuncBuilder, GlobalInit, IBinOp, IPred, Intrinsic, Module, Operand, Ty,
};
use refine_machine::{Machine, NoFi, OutEvent as MEvent, RunConfig, RunOutcome};

fn run_both(m: &Module) {
    let ir = Interp::new(m, 50_000_000).run().expect("interp ok");
    for level in [OptLevel::O0, OptLevel::O2] {
        let bin = refine_mir::compile(m, level);
        let r = Machine::run(&bin, &RunConfig::default(), &mut NoFi, None);
        match r.outcome {
            RunOutcome::Exit(code) => assert_eq!(
                code, ir.exit_code,
                "exit code mismatch at {level:?}"
            ),
            other => panic!("machine did not exit cleanly at {level:?}: {other:?}"),
        }
        assert_eq!(
            r.output.len(),
            ir.output.len(),
            "output length mismatch at {level:?}"
        );
        for (a, b) in r.output.iter().zip(ir.output.iter()) {
            match (a, b) {
                (MEvent::I64(x), IrEvent::I64(y)) => assert_eq!(x, y),
                (MEvent::F64(x), IrEvent::F64(y)) => {
                    assert!(x.to_bits() == y.to_bits(), "{x} != {y} at {level:?}")
                }
                (MEvent::Str(x), IrEvent::Str(y)) => assert_eq!(x, y),
                _ => panic!("event kind mismatch at {level:?}: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn constants_and_arithmetic() {
    let mut m = Module::new();
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let x = b.ibin(IBinOp::Mul, Operand::ConstI(6), Operand::ConstI(7));
    let y = b.ibin(IBinOp::Sub, x, Operand::ConstI(2));
    let z = b.ibin(IBinOp::AShr, y, Operand::ConstI(2));
    b.ret(Some(z));
    m.add_function(b.finish());
    run_both(&m);
}

#[test]
fn loops_and_phis() {
    let mut m = Module::new();
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let h = b.add_block("h");
    let body = b.add_block("body");
    let e = b.add_block("e");
    b.br(h);
    b.switch_to(h);
    let i = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
    let s = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
    let c = b.icmp(IPred::Slt, i, Operand::ConstI(100));
    b.cond_br(c, body, e);
    b.switch_to(body);
    let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
    let s2 = b.ibin(IBinOp::Add, s, b.params().first().copied().unwrap_or(i2));
    b.add_incoming(i, body, i2);
    b.add_incoming(s, body, s2);
    b.br(h);
    b.switch_to(e);
    b.ret(Some(s));
    m.add_function(b.finish());
    run_both(&m);
}

#[test]
fn memory_and_globals() {
    let mut m = Module::new();
    let g = m.add_global("arr", GlobalInit::I64s((0..32).map(|i| i * 3).collect()));
    let acc = m.add_global("acc", GlobalInit::Zero(1));
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let h = b.add_block("h");
    let body = b.add_block("body");
    let e = b.add_block("e");
    b.br(h);
    b.switch_to(h);
    let i = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
    let c = b.icmp(IPred::Slt, i, Operand::ConstI(32));
    b.cond_br(c, body, e);
    b.switch_to(body);
    let p = b.elem(Operand::Global(g), i);
    let v = b.load(p, Ty::I64);
    let old = b.load(Operand::Global(acc), Ty::I64);
    let s = b.ibin(IBinOp::Add, old, v);
    b.store(Operand::Global(acc), s, Ty::I64);
    let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
    b.add_incoming(i, body, i2);
    b.br(h);
    b.switch_to(e);
    let r = b.load(Operand::Global(acc), Ty::I64);
    b.ret(Some(r));
    m.add_function(b.finish());
    run_both(&m);
}

#[test]
fn allocas_arrays_and_stack() {
    let mut m = Module::new();
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let arr = b.alloca(16);
    let h = b.add_block("h");
    let body = b.add_block("body");
    let e = b.add_block("e");
    b.br(h);
    b.switch_to(h);
    let i = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
    let c = b.icmp(IPred::Slt, i, Operand::ConstI(16));
    b.cond_br(c, body, e);
    b.switch_to(body);
    let p = b.elem(arr, i);
    let sq = b.ibin(IBinOp::Mul, i, i);
    b.store(p, sq, Ty::I64);
    let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
    b.add_incoming(i, body, i2);
    b.br(h);
    b.switch_to(e);
    let p7 = b.elem(arr, Operand::ConstI(7));
    let v = b.load(p7, Ty::I64);
    b.ret(Some(v));
    m.add_function(b.finish());
    run_both(&m);
}

#[test]
fn floats_intrinsics_and_prints() {
    let mut m = Module::new();
    let banner = m.add_string("result:");
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let x = b.fbin(FBinOp::Mul, Operand::ConstF(2.5), Operand::ConstF(4.0));
    let s = b.intrinsic(Intrinsic::Sqrt, vec![x]).unwrap();
    let e = b.intrinsic(Intrinsic::Exp, vec![Operand::ConstF(0.5)]).unwrap();
    let sum = b.fbin(FBinOp::Add, s, e);
    b.print_str(banner);
    b.intrinsic(Intrinsic::PrintF64, vec![sum]);
    let c = b.fcmp(FPred::Ogt, sum, Operand::ConstF(4.0));
    let r = b.cast(CastOp::I1ToI64, c);
    b.ret(Some(r));
    m.add_function(b.finish());
    run_both(&m);
}

#[test]
fn function_calls_mixed_args() {
    let mut m = Module::new();
    // axpy(a, x, y, k) = a*x + y + k (float, float, float, int)
    let mut f = FuncBuilder::new("axpy", vec![Ty::F64, Ty::F64, Ty::F64, Ty::I64], Some(Ty::F64));
    let ps = f.params();
    let ax = f.fbin(FBinOp::Mul, ps[0], ps[1]);
    let s = f.fbin(FBinOp::Add, ax, ps[2]);
    let kf = f.cast(CastOp::SiToF, ps[3]);
    let r = f.fbin(FBinOp::Add, s, kf);
    f.ret(Some(r));
    let axpy = m.add_function(f.finish());

    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let r1 = b
        .call(
            axpy,
            vec![Operand::ConstF(2.0), Operand::ConstF(3.0), Operand::ConstF(1.0), Operand::ConstI(4)],
            Some(Ty::F64),
        )
        .unwrap();
    let r2 = b
        .call(axpy, vec![r1, Operand::ConstF(1.0), r1, Operand::ConstI(0)], Some(Ty::F64))
        .unwrap();
    b.intrinsic(Intrinsic::PrintF64, vec![r2]);
    let i = b.cast(CastOp::FToSi, r2);
    b.ret(Some(i));
    m.add_function(b.finish());
    run_both(&m);
}

#[test]
fn recursion_fibonacci() {
    let mut m = Module::new();
    // Pre-register fib so it can call itself: build with explicit module
    // surgery (builder finishes before the id exists otherwise).
    let mut f = FuncBuilder::new("fib", vec![Ty::I64], Some(Ty::I64));
    let base = f.add_block("base");
    let rec = f.add_block("rec");
    let n = f.params()[0];
    let c = f.icmp(IPred::Sle, n, Operand::ConstI(1));
    f.cond_br(c, base, rec);
    f.switch_to(base);
    f.ret(Some(n));
    f.switch_to(rec);
    let n1 = f.ibin(IBinOp::Sub, n, Operand::ConstI(1));
    let n2 = f.ibin(IBinOp::Sub, n, Operand::ConstI(2));
    let fid = refine_ir::FuncId(0); // fib will be function 0
    let a = f.call(fid, vec![n1], Some(Ty::I64)).unwrap();
    let b2 = f.call(fid, vec![n2], Some(Ty::I64)).unwrap();
    let s = f.ibin(IBinOp::Add, a, b2);
    f.ret(Some(s));
    m.add_function(f.finish());

    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let r = b.call(fid, vec![Operand::ConstI(15)], Some(Ty::I64)).unwrap();
    b.ret(Some(r));
    m.add_function(b.finish());
    run_both(&m); // fib(15) = 610
}

#[test]
fn select_and_branchless() {
    let mut m = Module::new();
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let c = b.icmp(IPred::Sgt, Operand::ConstI(3), Operand::ConstI(2));
    let si = b.select(c, Operand::ConstI(11), Operand::ConstI(22), Ty::I64);
    let c2 = b.fcmp(FPred::Olt, Operand::ConstF(1.0), Operand::ConstF(0.5));
    let sf = b.select(c2, Operand::ConstF(5.0), Operand::ConstF(9.0), Ty::F64);
    let sfi = b.cast(CastOp::FToSi, sf);
    let r = b.ibin(IBinOp::Add, si, sfi);
    b.ret(Some(r));
    m.add_function(b.finish());
    run_both(&m); // 11 + 9 = 20
}

#[test]
fn division_and_shifts() {
    let mut m = Module::new();
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let d = b.ibin(IBinOp::Div, Operand::ConstI(-100), Operand::ConstI(7));
    let r = b.ibin(IBinOp::Rem, Operand::ConstI(-100), Operand::ConstI(7));
    let sh = b.ibin(IBinOp::Shl, d, Operand::ConstI(2));
    let lsr = b.ibin(IBinOp::LShr, r, Operand::ConstI(1));
    let x = b.ibin(IBinOp::Xor, sh, lsr);
    let a = b.ibin(IBinOp::And, x, Operand::ConstI(0xffff));
    b.ret(Some(a));
    m.add_function(b.finish());
    run_both(&m);
}

/// Register-pressure stress: a long expression tree with >20 live values.
#[test]
fn register_pressure_spills_correctly() {
    let mut m = Module::new();
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let vals: Vec<Operand> = (1..=24)
        .map(|k| b.ibin(IBinOp::Mul, Operand::ConstI(k), Operand::ConstI(k + 1)))
        .collect();
    // Sum in reverse so every value stays live across the whole block.
    let mut acc = Operand::ConstI(0);
    for v in vals.iter().rev() {
        acc = b.ibin(IBinOp::Add, acc, *v);
    }
    // Mix in float pressure too.
    let fvals: Vec<Operand> = (1..=18)
        .map(|k| b.fbin(FBinOp::Mul, Operand::ConstF(k as f64), Operand::ConstF(0.5)))
        .collect();
    let mut facc = Operand::ConstF(0.0);
    for v in fvals.iter().rev() {
        facc = b.fbin(FBinOp::Add, facc, *v);
    }
    let fi = b.cast(CastOp::FToSi, facc);
    let r = b.ibin(IBinOp::Add, acc, fi);
    b.ret(Some(r));
    m.add_function(b.finish());
    run_both(&m);
}

/// Calls inside loops with live values across them (callee-saved pressure).
#[test]
fn values_survive_calls_in_loops() {
    let mut m = Module::new();
    let mut f = FuncBuilder::new("bump", vec![Ty::I64], Some(Ty::I64));
    let p = f.params()[0];
    let r = f.ibin(IBinOp::Add, p, Operand::ConstI(1));
    f.ret(Some(r));
    let bump = m.add_function(f.finish());

    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let h = b.add_block("h");
    let body = b.add_block("body");
    let e = b.add_block("e");
    // Several accumulators that must survive each call.
    b.br(h);
    b.switch_to(h);
    let i = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
    let a1 = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
    let a2 = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
    let a3 = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
    let fa = b.phi(Ty::F64, vec![(refine_ir::BlockId(0), Operand::ConstF(0.0))]);
    let c = b.icmp(IPred::Slt, i, Operand::ConstI(20));
    b.cond_br(c, body, e);
    b.switch_to(body);
    let bi = b.call(bump, vec![i], Some(Ty::I64)).unwrap();
    let na1 = b.ibin(IBinOp::Add, a1, bi);
    let na2 = b.ibin(IBinOp::Xor, a2, na1);
    let na3 = b.ibin(IBinOp::Add, a3, na2);
    let bif = b.cast(CastOp::SiToF, bi);
    let nfa = b.fbin(FBinOp::Add, fa, bif);
    b.add_incoming(i, body, bi);
    b.add_incoming(a1, body, na1);
    b.add_incoming(a2, body, na2);
    b.add_incoming(a3, body, na3);
    b.add_incoming(fa, body, nfa);
    b.br(h);
    b.switch_to(e);
    let fi2 = b.cast(CastOp::FToSi, fa);
    let s1 = b.ibin(IBinOp::Add, a1, a2);
    let s2 = b.ibin(IBinOp::Add, s1, a3);
    let s3 = b.ibin(IBinOp::Add, s2, fi2);
    b.ret(Some(s3));
    m.add_function(b.finish());
    run_both(&m);
}

/// Nested loops with address-mode-rich inner bodies (matrix multiply 6x6).
#[test]
fn matmul_end_to_end() {
    let n = 6i64;
    let mut m = Module::new();
    let ga = m.add_global("A", GlobalInit::I64s((0..n * n).map(|i| i % 7).collect()));
    let gb = m.add_global("B", GlobalInit::I64s((0..n * n).map(|i| (i * 2) % 5).collect()));
    let gc = m.add_global("C", GlobalInit::Zero((n * n) as u32));
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let hi = b.add_block("hi");
    let hj = b.add_block("hj");
    let hk = b.add_block("hk");
    let bodyk = b.add_block("bodyk");
    let endk = b.add_block("endk");
    let endj = b.add_block("endj");
    let endi = b.add_block("endi");
    let entry = refine_ir::BlockId(0);
    b.br(hi);
    b.switch_to(hi);
    let i = b.phi(Ty::I64, vec![(entry, Operand::ConstI(0))]);
    let ci = b.icmp(IPred::Slt, i, Operand::ConstI(n));
    b.cond_br(ci, hj, endi);
    b.switch_to(hj);
    let j = b.phi(Ty::I64, vec![(hi, Operand::ConstI(0))]);
    let cj = b.icmp(IPred::Slt, j, Operand::ConstI(n));
    b.cond_br(cj, hk, endj);
    b.switch_to(hk);
    let k = b.phi(Ty::I64, vec![(hj, Operand::ConstI(0))]);
    let acc = b.phi(Ty::I64, vec![(hj, Operand::ConstI(0))]);
    let ck = b.icmp(IPred::Slt, k, Operand::ConstI(n));
    b.cond_br(ck, bodyk, endk);
    b.switch_to(bodyk);
    let in_ = b.ibin(IBinOp::Mul, i, Operand::ConstI(n));
    let aidx = b.ibin(IBinOp::Add, in_, k);
    let pa = b.elem(Operand::Global(ga), aidx);
    let av = b.load(pa, Ty::I64);
    let kn = b.ibin(IBinOp::Mul, k, Operand::ConstI(n));
    let bidx = b.ibin(IBinOp::Add, kn, j);
    let pb = b.elem(Operand::Global(gb), bidx);
    let bv = b.load(pb, Ty::I64);
    let prod = b.ibin(IBinOp::Mul, av, bv);
    let acc2 = b.ibin(IBinOp::Add, acc, prod);
    let k2 = b.ibin(IBinOp::Add, k, Operand::ConstI(1));
    b.add_incoming(k, bodyk, k2);
    b.add_incoming(acc, bodyk, acc2);
    b.br(hk);
    b.switch_to(endk);
    let in2 = b.ibin(IBinOp::Mul, i, Operand::ConstI(n));
    let cij = b.ibin(IBinOp::Add, in2, j);
    let pc = b.elem(Operand::Global(gc), cij);
    b.store(pc, acc, Ty::I64);
    let j2 = b.ibin(IBinOp::Add, j, Operand::ConstI(1));
    b.add_incoming(j, endk, j2);
    b.br(hj);
    b.switch_to(endj);
    let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
    b.add_incoming(i, endj, i2);
    b.br(hi);
    b.switch_to(endi);
    // checksum C
    let h2 = b.add_block("h2");
    let b2 = b.add_block("b2");
    let e2 = b.add_block("e2");
    b.br(h2);
    b.switch_to(h2);
    let x = b.phi(Ty::I64, vec![(endi, Operand::ConstI(0))]);
    let s = b.phi(Ty::I64, vec![(endi, Operand::ConstI(0))]);
    let cx = b.icmp(IPred::Slt, x, Operand::ConstI(n * n));
    b.cond_br(cx, b2, e2);
    b.switch_to(b2);
    let px = b.elem(Operand::Global(gc), x);
    let vx = b.load(px, Ty::I64);
    let s2 = b.ibin(IBinOp::Add, s, vx);
    let x2 = b.ibin(IBinOp::Add, x, Operand::ConstI(1));
    b.add_incoming(x, b2, x2);
    b.add_incoming(s, b2, s2);
    b.br(h2);
    b.switch_to(e2);
    b.ret(Some(s));
    m.add_function(b.finish());
    run_both(&m);
}

/// Wait: `endk` uses `in_` defined in bodyk — that would be invalid IR.
/// The test above recomputes it; this test verifies the verifier catches
/// the mistake class (guard for test-author errors).
#[test]
fn verifier_guards_cross_block_uses() {
    // (Deliberately-minimal sanity check that the matmul test above is
    // verifier-clean.)
    let mut m = Module::new();
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    b.ret(Some(Operand::ConstI(0)));
    m.add_function(b.finish());
    assert!(refine_ir::verify::verify_module(&m).is_ok());
}
