//! Property-based differential testing: randomly generated programs must
//! behave identically under the IR interpreter and the compiled machine —
//! including trap behaviour — at both optimization levels.

use proptest::prelude::*;
use refine_ir::interp::{Interp, OutEvent as IrEvent};
use refine_ir::passes::OptLevel;
use refine_ir::{
    CastOp, FBinOp, FuncBuilder, GlobalInit, IBinOp, IPred, Module, Operand, Ty,
};
use refine_machine::{Machine, NoFi, OutEvent as MEvent, RunConfig, RunOutcome};

/// One step of a random straight-line integer/float program.
#[derive(Debug, Clone)]
enum Step {
    /// Apply an integer binop to two existing int values.
    IBin(IBinOp, usize, usize),
    /// Apply a float binop to two existing float values.
    FBin(FBinOp, usize, usize),
    /// Compare two ints and zext the result.
    CmpZext(IPred, usize, usize),
    /// Convert int -> float.
    ToF(usize),
    /// Convert float -> int.
    ToI(usize),
    /// Store an int value to the scratch global, then load it back.
    RoundTrip(usize, u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (
            prop_oneof![
                Just(IBinOp::Add),
                Just(IBinOp::Sub),
                Just(IBinOp::Mul),
                Just(IBinOp::Div),
                Just(IBinOp::Rem),
                Just(IBinOp::And),
                Just(IBinOp::Or),
                Just(IBinOp::Xor),
                Just(IBinOp::Shl),
                Just(IBinOp::LShr),
                Just(IBinOp::AShr),
            ],
            any::<usize>(),
            any::<usize>()
        )
            .prop_map(|(op, a, b)| Step::IBin(op, a, b)),
        (
            prop_oneof![
                Just(FBinOp::Add),
                Just(FBinOp::Sub),
                Just(FBinOp::Mul),
                Just(FBinOp::Div)
            ],
            any::<usize>(),
            any::<usize>()
        )
            .prop_map(|(op, a, b)| Step::FBin(op, a, b)),
        (
            prop_oneof![
                Just(IPred::Eq),
                Just(IPred::Ne),
                Just(IPred::Slt),
                Just(IPred::Sle),
                Just(IPred::Sgt),
                Just(IPred::Sge)
            ],
            any::<usize>(),
            any::<usize>()
        )
            .prop_map(|(p, a, b)| Step::CmpZext(p, a, b)),
        any::<usize>().prop_map(Step::ToF),
        any::<usize>().prop_map(Step::ToI),
        (any::<usize>(), 0u8..8).prop_map(|(v, s)| Step::RoundTrip(v, s)),
    ]
}

/// Build a module from the random recipe.
fn build(seeds_i: &[i64], seeds_f: &[f64], steps: &[Step]) -> Module {
    let mut m = Module::new();
    let g = m.add_global("scratch", GlobalInit::Zero(8));
    let mut b = FuncBuilder::new("main", vec![], Some(Ty::I64));
    let mut ints: Vec<Operand> = seeds_i.iter().map(|v| {
        // materialize through an op so constants are not folded trivially
        b.ibin(IBinOp::Add, Operand::ConstI(*v), Operand::ConstI(0))
    }).collect();
    let mut flts: Vec<Operand> = seeds_f
        .iter()
        .map(|v| b.fbin(FBinOp::Add, Operand::ConstF(*v), Operand::ConstF(0.0)))
        .collect();
    for s in steps {
        match s {
            Step::IBin(op, x, y) => {
                let a = ints[x % ints.len()];
                let c = ints[y % ints.len()];
                let r = b.ibin(*op, a, c);
                ints.push(r);
            }
            Step::FBin(op, x, y) => {
                let a = flts[x % flts.len()];
                let c = flts[y % flts.len()];
                let r = b.fbin(*op, a, c);
                flts.push(r);
            }
            Step::CmpZext(p, x, y) => {
                let a = ints[x % ints.len()];
                let c = ints[y % ints.len()];
                let cmp = b.icmp(*p, a, c);
                ints.push(b.cast(CastOp::I1ToI64, cmp));
            }
            Step::ToF(x) => {
                let a = ints[x % ints.len()];
                flts.push(b.cast(CastOp::SiToF, a));
            }
            Step::ToI(x) => {
                let a = flts[x % flts.len()];
                ints.push(b.cast(CastOp::FToSi, a));
            }
            Step::RoundTrip(x, slot) => {
                let a = ints[x % ints.len()];
                let addr = b.elem(Operand::Global(g), Operand::ConstI(*slot as i64));
                b.store(addr, a, Ty::I64);
                ints.push(b.load(addr, Ty::I64));
            }
        }
    }
    // Checksum everything.
    let mut acc = Operand::ConstI(0);
    for v in &ints {
        acc = b.ibin(IBinOp::Add, acc, *v);
    }
    for v in &flts {
        // Hash float bits into the checksum (bitwise-exact comparison).
        let bits = b.cast(CastOp::FToBits, *v);
        acc = b.ibin(IBinOp::Xor, acc, bits);
    }
    // Also print one int and one float to exercise the output path.
    b.intrinsic(refine_ir::Intrinsic::PrintI64, vec![*ints.last().unwrap()]);
    b.intrinsic(refine_ir::Intrinsic::PrintF64, vec![*flts.last().unwrap()]);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

#[derive(Debug, PartialEq)]
enum Behaviour {
    Exit(i64, Vec<String>),
    Trap,
}

fn ir_behaviour(m: &Module) -> Behaviour {
    match Interp::new(m, 10_000_000).run() {
        Ok(r) => Behaviour::Exit(
            r.exit_code,
            r.output
                .iter()
                .map(|e| match e {
                    IrEvent::I64(v) => format!("{v}"),
                    IrEvent::F64(v) => format!("{:016x}", v.to_bits()),
                    IrEvent::Str(s) => s.clone(),
                })
                .collect(),
        ),
        Err(_) => Behaviour::Trap,
    }
}

fn machine_behaviour(m: &Module, level: OptLevel) -> Behaviour {
    let bin = refine_mir::compile(m, level);
    let r = Machine::run(&bin, &RunConfig::default(), &mut NoFi, None);
    match r.outcome {
        RunOutcome::Exit(code) => Behaviour::Exit(
            code,
            r.output
                .iter()
                .map(|e| match e {
                    MEvent::I64(v) => format!("{v}"),
                    MEvent::F64(v) => format!("{:016x}", v.to_bits()),
                    MEvent::Str(s) => s.clone(),
                })
                .collect(),
        ),
        RunOutcome::Trap(_) => Behaviour::Trap,
        RunOutcome::Timeout => panic!("straight-line program timed out"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Interpreter and compiled machine agree (exit code, bit-exact output,
    /// trap-or-not) on random straight-line programs at O0 and O2.
    #[test]
    fn prop_compile_matches_interp(
        seeds_i in proptest::collection::vec(-1000i64..1000, 2..5),
        seeds_f in proptest::collection::vec(-100.0f64..100.0, 2..4),
        steps in proptest::collection::vec(step_strategy(), 1..40),
    ) {
        let m = build(&seeds_i, &seeds_f, &steps);
        refine_ir::verify::verify_module(&m).expect("generated IR verifies");
        let want = ir_behaviour(&m);
        for level in [OptLevel::O0, OptLevel::O2] {
            let got = machine_behaviour(&m, level);
            prop_assert_eq!(&got, &want, "divergence at {:?}", level);
        }
    }

    /// The optimizer is semantics-preserving on its own: optimized IR
    /// interprets identically to unoptimized IR.
    #[test]
    fn prop_optimizer_preserves_interp(
        seeds_i in proptest::collection::vec(-50i64..50, 2..4),
        seeds_f in proptest::collection::vec(-10.0f64..10.0, 2..3),
        steps in proptest::collection::vec(step_strategy(), 1..30),
    ) {
        let m = build(&seeds_i, &seeds_f, &steps);
        let want = ir_behaviour(&m);
        let mut opt = m.clone();
        refine_ir::passes::optimize(&mut opt, OptLevel::O2);
        refine_ir::verify::verify_module(&opt).expect("optimized IR verifies");
        prop_assert_eq!(ir_behaviour(&opt), want);
    }
}
