//! Final machine-code representation: basic blocks of physical-register
//! [`MInstr`]s with symbolic (block-index) branch targets.
//!
//! This is the structure REFINE's backend pass instruments — the last
//! representation before code emission. `Jmp`/`Jcc` targets are *local block
//! indices* of the owning function; `Call` targets are *function indices* of
//! the module. [`crate::emit::emit`] resolves both to absolute instruction
//! indices.

use refine_machine::MInstr;

/// One machine basic block.
#[derive(Debug, Clone, Default)]
pub struct MBlock {
    /// Instructions; control never falls off the end (every block closes
    /// with `Jmp`, `Jcc`+`Jmp`, `Ret`, or `Halt`).
    pub insts: Vec<MInstr>,
}

/// One machine function.
#[derive(Debug, Clone)]
pub struct MFunction {
    /// Source-level name.
    pub name: String,
    /// Blocks in layout order; index 0 is the entry.
    pub blocks: Vec<MBlock>,
}

impl MFunction {
    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// True when the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a new block, returning its index.
    pub fn add_block(&mut self) -> u32 {
        self.blocks.push(MBlock::default());
        (self.blocks.len() - 1) as u32
    }

    /// Iterate instructions with `(block, index)` coordinates.
    pub fn iter_insts(&self) -> impl Iterator<Item = (usize, usize, &MInstr)> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.insts.iter().enumerate().map(move |(ii, i)| (bi, ii, i)))
    }
}

/// A lowered module, ready for backend FI passes and emission.
#[derive(Debug, Clone)]
pub struct MModule {
    /// Functions in IR order (indices match `Call` targets).
    pub funcs: Vec<MFunction>,
    /// Data segment image.
    pub globals: Vec<u64>,
    /// String literals.
    pub strings: Vec<String>,
    /// Function names in index order.
    pub func_names: Vec<String>,
}

impl MModule {
    /// Look up a function index by name.
    pub fn func_index(&self, name: &str) -> Option<u32> {
        self.func_names.iter().position(|n| n == name).map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_management() {
        let mut f = MFunction { name: "f".into(), blocks: vec![MBlock::default()] };
        assert!(f.is_empty());
        let b = f.add_block();
        assert_eq!(b, 1);
        f.blocks[1].insts.push(MInstr::Halt);
        assert_eq!(f.len(), 1);
        assert_eq!(f.iter_insts().count(), 1);
        assert_eq!(f.iter_insts().next().unwrap().0, 1);
    }
}
