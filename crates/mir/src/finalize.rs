//! Pseudo-instruction expansion and frame construction: VCode + allocation
//! -> final machine blocks.
//!
//! Everything this module emits — `push fp`, callee-save traffic, `sub sp`,
//! spill loads/stores, ABI argument shuffles — is machine code that *does
//! not exist at the IR level*. This is the instruction population gap the
//! paper identifies (§3.3.1) between IR-level FI and backend/binary FI.

use crate::mfunc::{MBlock, MFunction};
use crate::regalloc::{Allocation, Loc, FLT_SCRATCH, INT_SCRATCH};
use crate::vcode::{VFunc, VInst, VMem, Vr};
use refine_machine::isa::{abi, FP, SP};
use refine_machine::{MInstr, Mem};

/// Expand `v` into final machine code under `alloc`.
pub fn finalize(v: &mut VFunc, alloc: &Allocation) -> MFunction {
    Finalizer::new(v, alloc).run()
}

struct Finalizer<'a> {
    v: &'a VFunc,
    alloc: &'a Allocation,
    /// Words of callee-saved GPR pushes.
    nci: i64,
    /// Words of callee-saved FPR saves.
    ncf: i64,
    /// Total alloca words.
    total_alloca: i64,
    /// Cumulative alloca words through each alloca id.
    alloca_cum: Vec<i64>,
    /// Rematerialization table: spilled vregs whose sole definition is an
    /// immediate move are re-issued as immediates at each use instead of
    /// reloading from the stack (constants are cheaper to recreate than to
    /// load — the standard linear-scan refinement).
    remat: std::collections::HashMap<Vr, RematVal>,
}

#[derive(Debug, Clone, Copy)]
enum RematVal {
    Int(i64),
    Flt(u64),
}

impl<'a> Finalizer<'a> {
    fn new(v: &'a VFunc, alloc: &'a Allocation) -> Self {
        let mut alloca_cum = Vec::with_capacity(v.alloca_words.len());
        let mut cum = 0i64;
        for w in &v.alloca_words {
            cum += *w as i64;
            alloca_cum.push(cum);
        }
        // Rematerialization candidates: spilled vregs with exactly one
        // definition, which is an immediate move.
        let mut defs: std::collections::HashMap<Vr, (u32, Option<RematVal>)> =
            std::collections::HashMap::new();
        for b in &v.blocks {
            for inst in &b.insts {
                let val = match inst {
                    VInst::MovI { d, imm } => Some((*d, Some(RematVal::Int(*imm)))),
                    VInst::FMovI { d, imm } => Some((*d, Some(RematVal::Flt(*imm)))),
                    _ => None,
                };
                let ds = inst.defs();
                for d in ds {
                    let e = defs.entry(d).or_insert((0, None));
                    e.0 += 1;
                    e.1 = val.as_ref().and_then(|(vd, rv)| if *vd == d { *rv } else { None });
                }
            }
        }
        let mut remat = std::collections::HashMap::new();
        for (vr, (ndefs, rv)) in defs {
            if ndefs == 1 {
                if let (Loc::Slot(_), Some(rv)) = (alloc.loc(vr), rv) {
                    remat.insert(vr, rv);
                }
            }
        }
        Finalizer {
            v,
            alloc,
            nci: alloc.used_callee_int.len() as i64,
            ncf: alloc.used_callee_flt.len() as i64,
            total_alloca: cum,
            alloca_cum,
            remat,
        }
    }

    fn frame_sub(&self) -> i64 {
        8 * (self.ncf + self.total_alloca + self.alloc.n_slots as i64)
    }

    /// fp-relative displacement of spill slot `s`.
    fn slot_off(&self, s: u32) -> i64 {
        -8 * (self.nci + self.ncf + self.total_alloca + s as i64 + 1)
    }

    /// fp-relative displacement of the base (lowest address) of alloca `id`.
    fn alloca_off(&self, id: u32) -> i64 {
        -8 * (self.nci + self.ncf + self.alloca_cum[id as usize])
    }

    /// fp-relative displacement of the `k`-th callee-saved FPR save.
    fn fsave_off(&self, k: i64) -> i64 {
        -8 * (self.nci + k + 1)
    }

    fn slot_mem(&self, s: u32) -> Mem {
        Mem::base_disp(FP, self.slot_off(s))
    }

    /// Map a use of `vr`, loading spills into scratch `which` (0 or 1) —
    /// or rematerializing constants instead of reloading them.
    fn use_reg(&self, vr: Vr, which: usize, code: &mut Vec<MInstr>) -> u8 {
        match self.alloc.loc(vr) {
            Loc::Reg(r) => r,
            Loc::Slot(s) => {
                if vr.is_int() {
                    let sc = INT_SCRATCH[which];
                    match self.remat.get(&vr) {
                        Some(RematVal::Int(imm)) => {
                            code.push(MInstr::MovRI { rd: sc, imm: *imm })
                        }
                        _ => code.push(MInstr::Ld { rd: sc, mem: self.slot_mem(s) }),
                    }
                    sc
                } else {
                    let sc = FLT_SCRATCH[which];
                    match self.remat.get(&vr) {
                        Some(RematVal::Flt(imm)) => {
                            code.push(MInstr::FMovRI { fd: sc, imm: *imm })
                        }
                        _ => code.push(MInstr::FLd { fd: sc, mem: self.slot_mem(s) }),
                    }
                    sc
                }
            }
        }
    }

    /// Map a definition of `vr`: the register to write, plus the spill store
    /// to append afterwards.
    fn def_reg(&self, vr: Vr) -> (u8, Option<MInstr>) {
        match self.alloc.loc(vr) {
            Loc::Reg(r) => (r, None),
            Loc::Slot(s) => {
                if vr.is_int() {
                    (INT_SCRATCH[0], Some(MInstr::St { rs: INT_SCRATCH[0], mem: self.slot_mem(s) }))
                } else {
                    (FLT_SCRATCH[0], Some(MInstr::FSt { fs: FLT_SCRATCH[0], mem: self.slot_mem(s) }))
                }
            }
        }
    }

    /// Lower a virtual addressing mode, reloading spilled components.
    fn mem(&self, m: &VMem, code: &mut Vec<MInstr>) -> Mem {
        let base = m.base.map(|b| self.use_reg(b, 0, code));
        let index = m.index.map(|(i, s)| (self.use_reg(i, 1, code), s));
        Mem { base, index, disp: m.disp }
    }

    fn run(mut self) -> MFunction {
        let mut out = MFunction { name: self.v.name.clone(), blocks: Vec::new() };
        for (bi, block) in self.v.blocks.iter().enumerate() {
            let mut code: Vec<MInstr> = Vec::with_capacity(block.insts.len() * 2);
            if bi == 0 {
                self.emit_prologue(&mut code);
            }
            for inst in &block.insts {
                self.expand(inst, &mut code);
            }
            out.blocks.push(MBlock { insts: code });
        }
        out
    }

    fn emit_prologue(&mut self, code: &mut Vec<MInstr>) {
        code.push(MInstr::Push { rs: FP });
        code.push(MInstr::MovRR { rd: FP, ra: SP });
        for &r in &self.alloc.used_callee_int {
            code.push(MInstr::Push { rs: r });
        }
        let sub = self.frame_sub();
        if sub > 0 {
            code.push(MInstr::AluI { op: refine_machine::AluOp::Sub, rd: SP, ra: SP, imm: sub });
        }
        for (k, &f) in self.alloc.used_callee_flt.iter().enumerate() {
            code.push(MInstr::FSt { fs: f, mem: Mem::base_disp(FP, self.fsave_off(k as i64)) });
        }
        // Move parameters from ABI registers to their allocated homes.
        let mut int_i = 0usize;
        let mut flt_i = 0usize;
        let mut moves: Vec<(Loc, u8, bool)> = Vec::new(); // (dst, src phys, is_int)
        for &p in &self.v.params {
            if p.is_int() {
                moves.push((self.alloc.loc(p), abi::GPR_ARGS[int_i], true));
                int_i += 1;
            } else {
                moves.push((self.alloc.loc(p), abi::FPR_ARGS[flt_i], false));
                flt_i += 1;
            }
        }
        self.par_moves_from_phys(moves, code);
    }

    fn emit_epilogue(&self, code: &mut Vec<MInstr>) {
        for (k, &f) in self.alloc.used_callee_flt.iter().enumerate() {
            code.push(MInstr::FLd { fd: f, mem: Mem::base_disp(FP, self.fsave_off(k as i64)) });
        }
        let sub = self.frame_sub();
        if sub > 0 {
            code.push(MInstr::AluI { op: refine_machine::AluOp::Add, rd: SP, ra: SP, imm: sub });
        }
        for &r in self.alloc.used_callee_int.iter().rev() {
            code.push(MInstr::Pop { rd: r });
        }
        code.push(MInstr::Pop { rd: FP });
        code.push(MInstr::Ret);
    }

    /// Parallel moves with physical-register *destinations* (call argument
    /// setup). Sources may be registers or spill slots; register cycles are
    /// broken with the scratch register.
    fn par_moves_to_phys(&self, moves: Vec<(u8, Loc, bool)>, code: &mut Vec<MInstr>) {
        // Slot sources cannot be clobbered: emit them after all reg moves.
        let mut regmoves: Vec<(u8, u8, bool)> = Vec::new();
        let mut slotmoves: Vec<(u8, u32, bool)> = Vec::new();
        for (dst, src, is_int) in moves {
            match src {
                Loc::Reg(r) => {
                    if r != dst {
                        regmoves.push((dst, r, is_int));
                    }
                }
                Loc::Slot(s) => slotmoves.push((dst, s, is_int)),
            }
        }
        self.resolve_reg_cycles(&mut regmoves, code);
        for (dst, s, is_int) in slotmoves {
            if is_int {
                code.push(MInstr::Ld { rd: dst, mem: self.slot_mem(s) });
            } else {
                code.push(MInstr::FLd { fd: dst, mem: self.slot_mem(s) });
            }
        }
    }

    /// Parallel moves with physical-register *sources* (parameter landing).
    fn par_moves_from_phys(&self, moves: Vec<(Loc, u8, bool)>, code: &mut Vec<MInstr>) {
        // Slot destinations never clobber a source: emit them first.
        let mut regmoves: Vec<(u8, u8, bool)> = Vec::new();
        for (dst, src, is_int) in &moves {
            if let Loc::Slot(s) = dst {
                if *is_int {
                    code.push(MInstr::St { rs: *src, mem: self.slot_mem(*s) });
                } else {
                    code.push(MInstr::FSt { fs: *src, mem: self.slot_mem(*s) });
                }
            } else if let Loc::Reg(r) = dst {
                if r != src {
                    regmoves.push((*r, *src, *is_int));
                }
            }
        }
        self.resolve_reg_cycles(&mut regmoves, code);
    }

    /// Emit a set of parallel register-to-register moves (`(dst, src,
    /// is_int)`), breaking cycles with the class scratch register.
    fn resolve_reg_cycles(&self, moves: &mut Vec<(u8, u8, bool)>, code: &mut Vec<MInstr>) {
        let emit_mv = |dst: u8, src: u8, is_int: bool, code: &mut Vec<MInstr>| {
            if is_int {
                code.push(MInstr::MovRR { rd: dst, ra: src });
            } else {
                code.push(MInstr::FMovRR { fd: dst, fa: src });
            }
        };
        while !moves.is_empty() {
            // A move is safe when its destination is not a pending source
            // (same class).
            let safe = moves.iter().position(|&(dst, _, is_int)| {
                !moves.iter().any(|&(_, s, i2)| i2 == is_int && s == dst)
            });
            match safe {
                Some(i) => {
                    let (dst, src, is_int) = moves.remove(i);
                    emit_mv(dst, src, is_int, code);
                }
                None => {
                    // Cycle: stash one source in scratch and retarget its
                    // readers.
                    let (_, src, is_int) = moves[0];
                    let sc = if is_int { INT_SCRATCH[1] } else { FLT_SCRATCH[1] };
                    emit_mv(sc, src, is_int, code);
                    for m in moves.iter_mut() {
                        if m.2 == is_int && m.1 == src {
                            m.1 = sc;
                        }
                    }
                }
            }
        }
    }

    fn expand(&mut self, inst: &VInst, code: &mut Vec<MInstr>) {
        use MInstr as M;
        match inst {
            VInst::Mov { d, a } => {
                let (src, dst) = (self.alloc.loc(*a), self.alloc.loc(*d));
                match (dst, src) {
                    (Loc::Reg(rd), Loc::Reg(ra)) => code.push(M::MovRR { rd, ra }),
                    (Loc::Reg(rd), Loc::Slot(s)) => code.push(M::Ld { rd, mem: self.slot_mem(s) }),
                    (Loc::Slot(s), Loc::Reg(ra)) => code.push(M::St { rs: ra, mem: self.slot_mem(s) }),
                    (Loc::Slot(sd), Loc::Slot(ss)) => {
                        code.push(M::Ld { rd: INT_SCRATCH[0], mem: self.slot_mem(ss) });
                        code.push(M::St { rs: INT_SCRATCH[0], mem: self.slot_mem(sd) });
                    }
                }
            }
            VInst::FMov { d, a } => {
                let (src, dst) = (self.alloc.loc(*a), self.alloc.loc(*d));
                match (dst, src) {
                    (Loc::Reg(fd), Loc::Reg(fa)) => code.push(M::FMovRR { fd, fa }),
                    (Loc::Reg(fd), Loc::Slot(s)) => code.push(M::FLd { fd, mem: self.slot_mem(s) }),
                    (Loc::Slot(s), Loc::Reg(fa)) => code.push(M::FSt { fs: fa, mem: self.slot_mem(s) }),
                    (Loc::Slot(sd), Loc::Slot(ss)) => {
                        code.push(M::FLd { fd: FLT_SCRATCH[0], mem: self.slot_mem(ss) });
                        code.push(M::FSt { fs: FLT_SCRATCH[0], mem: self.slot_mem(sd) });
                    }
                }
            }
            VInst::MovI { d, imm } => {
                // Rematerialized vregs still get their defining store: other
                // expansion paths (register moves, call-argument loads,
                // return-value loads) read spill slots directly, so the slot
                // must always hold the value. Remat only replaces *reloads*
                // in `use_reg` with a cheaper immediate move.
                let (rd, post) = self.def_reg(*d);
                code.push(M::MovRI { rd, imm: *imm });
                code.extend(post);
            }
            VInst::FMovI { d, imm } => {
                let (fd, post) = self.def_reg(*d);
                code.push(M::FMovRI { fd, imm: *imm });
                code.extend(post);
            }
            VInst::Alu { op, d, a, b } => {
                let ra = self.use_reg(*a, 0, code);
                let rb = self.use_reg(*b, 1, code);
                let (rd, post) = self.def_reg(*d);
                code.push(M::Alu { op: *op, rd, ra, rb });
                code.extend(post);
            }
            VInst::AluI { op, d, a, imm } => {
                let ra = self.use_reg(*a, 0, code);
                let (rd, post) = self.def_reg(*d);
                code.push(M::AluI { op: *op, rd, ra, imm: *imm });
                code.extend(post);
            }
            VInst::Cmp { a, b } => {
                let ra = self.use_reg(*a, 0, code);
                let rb = self.use_reg(*b, 1, code);
                code.push(M::Cmp { ra, rb });
            }
            VInst::CmpI { a, imm } => {
                let ra = self.use_reg(*a, 0, code);
                code.push(M::CmpI { ra, imm: *imm });
            }
            VInst::SetCc { cc, d } => {
                let (rd, post) = self.def_reg(*d);
                code.push(M::SetCc { cc: *cc, rd });
                code.extend(post);
            }
            VInst::FAlu { op, d, a, b } => {
                let fa = self.use_reg(*a, 0, code);
                let fb = self.use_reg(*b, 1, code);
                let (fd, post) = self.def_reg(*d);
                code.push(M::FAlu { op: *op, fd, fa, fb });
                code.extend(post);
            }
            VInst::FCmp { a, b } => {
                let fa = self.use_reg(*a, 0, code);
                let fb = self.use_reg(*b, 1, code);
                code.push(M::FCmp { fa, fb });
            }
            VInst::Cvt { kind, d, s } => {
                let src = self.use_reg(*s, 0, code);
                let (dst, post) = self.def_reg(*d);
                code.push(M::Cvt { kind: *kind, dst, src });
                code.extend(post);
            }
            VInst::Ld { d, mem } => {
                let m = self.mem(mem, code);
                let (rd, post) = self.def_reg(*d);
                code.push(M::Ld { rd, mem: m });
                code.extend(post);
            }
            VInst::FLd { d, mem } => {
                let m = self.mem(mem, code);
                let (fd, post) = self.def_reg(*d);
                code.push(M::FLd { fd, mem: m });
                code.extend(post);
            }
            VInst::St { s, mem } => {
                // Worst case: spilled value + two spilled address parts
                // needs three integer temporaries; collapse the address
                // with lea first.
                let mem_spills = mem.base.map_or(0, |b| matches!(self.alloc.loc(b), Loc::Slot(_)) as u8)
                    + mem.index.map_or(0, |(i, _)| matches!(self.alloc.loc(i), Loc::Slot(_)) as u8);
                let val_spilled = matches!(self.alloc.loc(*s), Loc::Slot(_));
                if mem_spills == 2 && val_spilled {
                    let m = self.mem(mem, code);
                    code.push(M::Lea { rd: INT_SCRATCH[0], mem: m });
                    let Loc::Slot(vs) = self.alloc.loc(*s) else { unreachable!() };
                    code.push(M::Ld { rd: INT_SCRATCH[1], mem: self.slot_mem(vs) });
                    code.push(M::St {
                        rs: INT_SCRATCH[1],
                        mem: Mem::base_disp(INT_SCRATCH[0], 0),
                    });
                } else {
                    let m = self.mem(mem, code);
                    // The value can take whichever scratch the address did
                    // not use.
                    let which = if mem_spills == 1
                        && mem.base.is_some_and(|b| matches!(self.alloc.loc(b), Loc::Slot(_)))
                    {
                        1
                    } else {
                        0
                    };
                    let rs = self.use_reg(*s, which, code);
                    code.push(M::St { rs, mem: m });
                }
            }
            VInst::FSt { s, mem } => {
                let m = self.mem(mem, code);
                let fs = self.use_reg(*s, 0, code); // float scratch: no clash
                code.push(M::FSt { fs, mem: m });
            }
            VInst::Lea { d, mem } => {
                let m = self.mem(mem, code);
                let (rd, post) = self.def_reg(*d);
                code.push(M::Lea { rd, mem: m });
                code.extend(post);
            }
            VInst::FrameAddr { d, id } => {
                let (rd, post) = self.def_reg(*d);
                code.push(M::Lea { rd, mem: Mem::base_disp(FP, self.alloca_off(*id)) });
                code.extend(post);
            }
            VInst::Call { func, args, ret } => {
                self.expand_call_args(args, code);
                code.push(M::Call { target: *func });
                self.expand_call_ret(*ret, code);
            }
            VInst::RtCall { func, imm, args, ret } => {
                self.expand_call_args(args, code);
                code.push(M::CallRt { func: *func, imm: *imm });
                if let Some(r) = ret {
                    let res = func.result_reg().expect("rtcall with result");
                    self.move_from_result(res, *r, code);
                }
            }
            VInst::Jmp { bb } => code.push(M::Jmp { target: *bb }),
            VInst::Jcc { cc, bb } => code.push(M::Jcc { cc: *cc, target: *bb }),
            VInst::Ret { val } => {
                if let Some(v) = val {
                    match (v.is_int(), self.alloc.loc(*v)) {
                        (true, Loc::Reg(r)) => {
                            if r != abi::GPR_RET {
                                code.push(M::MovRR { rd: abi::GPR_RET, ra: r });
                            }
                        }
                        (true, Loc::Slot(s)) => {
                            code.push(M::Ld { rd: abi::GPR_RET, mem: self.slot_mem(s) })
                        }
                        (false, Loc::Reg(f)) => {
                            if f != abi::FPR_RET {
                                code.push(M::FMovRR { fd: abi::FPR_RET, fa: f });
                            }
                        }
                        (false, Loc::Slot(s)) => {
                            code.push(M::FLd { fd: abi::FPR_RET, mem: self.slot_mem(s) })
                        }
                    }
                }
                self.emit_epilogue(code);
            }
        }
    }

    fn expand_call_args(&self, args: &[Vr], code: &mut Vec<MInstr>) {
        let mut int_i = 0usize;
        let mut flt_i = 0usize;
        let mut moves: Vec<(u8, Loc, bool)> = Vec::new();
        for &a in args {
            if a.is_int() {
                assert!(int_i < abi::GPR_ARGS.len(), "too many integer arguments");
                moves.push((abi::GPR_ARGS[int_i], self.alloc.loc(a), true));
                int_i += 1;
            } else {
                assert!(flt_i < abi::FPR_ARGS.len(), "too many float arguments");
                moves.push((abi::FPR_ARGS[flt_i], self.alloc.loc(a), false));
                flt_i += 1;
            }
        }
        self.par_moves_to_phys(moves, code);
    }

    fn expand_call_ret(&self, ret: Option<Vr>, code: &mut Vec<MInstr>) {
        if let Some(r) = ret {
            let res = if r.is_int() {
                refine_machine::Reg::G(abi::GPR_RET)
            } else {
                refine_machine::Reg::F(abi::FPR_RET)
            };
            self.move_from_result(res, r, code);
        }
    }

    fn move_from_result(&self, res: refine_machine::Reg, dst: Vr, code: &mut Vec<MInstr>) {
        use MInstr as M;
        match (res, self.alloc.loc(dst)) {
            (refine_machine::Reg::G(src), Loc::Reg(rd)) => {
                if rd != src {
                    code.push(M::MovRR { rd, ra: src });
                }
            }
            (refine_machine::Reg::G(src), Loc::Slot(s)) => {
                code.push(M::St { rs: src, mem: self.slot_mem(s) })
            }
            (refine_machine::Reg::F(src), Loc::Reg(fd)) => {
                if fd != src {
                    code.push(M::FMovRR { fd, fa: src });
                }
            }
            (refine_machine::Reg::F(src), Loc::Slot(s)) => {
                code.push(M::FSt { fs: src, mem: self.slot_mem(s) })
            }
            (refine_machine::Reg::Flags, _) => unreachable!("flags are not a call result"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate;
    use crate::vcode::VBlock;
    use refine_machine::AluOp;

    fn finalize_simple(blocks: Vec<Vec<VInst>>, n_int: u32, params: Vec<Vr>) -> MFunction {
        let mut f = VFunc {
            name: "t".into(),
            blocks: blocks.into_iter().map(|insts| VBlock { insts }).collect(),
            n_int,
            n_flt: 0,
            alloca_words: vec![],
            params,
        };
        let (ints, calls) = crate::liveness::analyze(&f);
        let alloc = allocate(&f, &ints, &calls);
        finalize(&mut f, &alloc)
    }

    #[test]
    fn prologue_and_epilogue_emitted() {
        let v0 = Vr::Int(0);
        let mf = finalize_simple(
            vec![vec![VInst::MovI { d: v0, imm: 1 }, VInst::Ret { val: Some(v0) }]],
            1,
            vec![],
        );
        let insts = &mf.blocks[0].insts;
        assert!(matches!(insts[0], MInstr::Push { rs } if rs == FP));
        assert!(matches!(insts[1], MInstr::MovRR { rd, ra } if rd == FP && ra == SP));
        assert!(matches!(insts.last(), Some(MInstr::Ret)));
        let pops = insts.iter().filter(|i| matches!(i, MInstr::Pop { .. })).count();
        assert!(pops >= 1, "fp restore missing");
    }

    #[test]
    fn spill_traffic_emitted_under_pressure() {
        // 20 simultaneously-live values force spills -> frame stores/loads.
        let mut insts: Vec<VInst> = (0..20)
            .map(|k| VInst::MovI { d: Vr::Int(k), imm: k as i64 })
            .collect();
        // Sum them all to keep them live.
        let acc = Vr::Int(20);
        insts.push(VInst::MovI { d: acc, imm: 0 });
        for k in 0..20 {
            insts.push(VInst::Alu { op: AluOp::Add, d: acc, a: acc, b: Vr::Int(k) });
        }
        insts.push(VInst::Ret { val: Some(acc) });
        let mf = finalize_simple(vec![insts], 21, vec![]);
        let has_spill_store = mf.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, MInstr::St { mem, .. } if mem.base == Some(FP)));
        let has_spill_load = mf.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, MInstr::Ld { mem, .. } if mem.base == Some(FP)));
        assert!(has_spill_store && has_spill_load, "expected spill traffic");
        // And the frame must be carved out.
        assert!(mf.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, MInstr::AluI { op: AluOp::Sub, rd, .. } if *rd == SP)));
    }

    #[test]
    fn param_lands_from_abi_register() {
        let p = Vr::Int(0);
        let mf = finalize_simple(
            vec![vec![VInst::Ret { val: Some(p) }]],
            1,
            vec![p],
        );
        // Either p was allocated to r0 (no move) or a move/store from r0
        // exists.
        let uses_r0 = mf.blocks[0].insts.iter().any(|i| {
            matches!(i, MInstr::MovRR { ra: 0, .. })
                || matches!(i, MInstr::St { rs: 0, .. })
                || matches!(i, MInstr::Ret)
        });
        assert!(uses_r0);
    }

    #[test]
    fn parallel_move_cycles_resolved() {
        let f = Finalizer {
            v: Box::leak(Box::new(VFunc {
                name: "x".into(),
                blocks: vec![],
                n_int: 0,
                n_flt: 0,
                alloca_words: vec![],
                params: vec![],
            })),
            alloc: Box::leak(Box::new(Allocation::default())),
            nci: 0,
            ncf: 0,
            total_alloca: 0,
            alloca_cum: vec![],
            remat: Default::default(),
        };
        // swap r0 <-> r1
        let mut moves = vec![(0u8, 1u8, true), (1u8, 0u8, true)];
        let mut code = Vec::new();
        f.resolve_reg_cycles(&mut moves, &mut code);
        assert_eq!(code.len(), 3, "swap takes three moves via scratch");
        // Simulate to verify the swap is correct.
        let mut regs = [0i64; 16];
        regs[0] = 10;
        regs[1] = 20;
        for i in &code {
            if let MInstr::MovRR { rd, ra } = i {
                regs[*rd as usize] = regs[*ra as usize];
            }
        }
        assert_eq!(regs[0], 20);
        assert_eq!(regs[1], 10);
    }
}
