//! Code emission: layout, branch resolution, linking.

use crate::mfunc::MModule;
use refine_ir::Module;
use refine_machine::{Binary, MInstr, Symbol};

/// Build the data-segment image from a module's globals, in declaration
/// order (the same layout the IR interpreter assumes).
pub fn build_data(m: &Module) -> Vec<u64> {
    let mut data = Vec::new();
    for g in &m.globals {
        match &g.init {
            refine_ir::GlobalInit::Zero(n) => data.extend(std::iter::repeat_n(0u64, *n as usize)),
            refine_ir::GlobalInit::I64s(v) => data.extend(v.iter().map(|x| *x as u64)),
            refine_ir::GlobalInit::F64s(v) => data.extend(v.iter().map(|x| x.to_bits())),
        }
    }
    data
}

/// Lay out and link a machine module into an executable binary.
///
/// A two-instruction startup shim (`call main; halt`) is placed at the
/// entry, so `main`'s return value becomes the process exit code.
pub fn emit(mm: &MModule) -> Binary {
    let _span = refine_telemetry::Span::enter(refine_telemetry::Phase::Emit);
    let main_idx = mm
        .func_index("main")
        .expect("program must define main") as usize;

    // --- First pass: decide per-function layout with jmp-to-next elision
    //     and record block start offsets (function-relative).
    struct FnLayout {
        // (instr, needs_local_fix, needs_call_fix)
        insts: Vec<MInstr>,
        block_start: Vec<u32>,
    }
    let mut layouts = Vec::with_capacity(mm.funcs.len());
    for f in &mm.funcs {
        let mut insts = Vec::with_capacity(f.len());
        let mut block_start = vec![0u32; f.blocks.len()];
        for (bi, b) in f.blocks.iter().enumerate() {
            block_start[bi] = insts.len() as u32;
            for (ii, i) in b.insts.iter().enumerate() {
                // Elide a trailing jump to the next block in layout order.
                if ii + 1 == b.insts.len() {
                    if let MInstr::Jmp { target } = i {
                        if *target as usize == bi + 1 {
                            continue;
                        }
                    }
                }
                insts.push(*i);
            }
        }
        layouts.push(FnLayout { insts, block_start });
    }

    // --- Absolute entry of each function (after the 2-instruction shim).
    let mut entries = Vec::with_capacity(mm.funcs.len());
    let mut at = 2u32;
    for l in &layouts {
        entries.push(at);
        at += l.insts.len() as u32;
    }

    // --- Second pass: patch targets and concatenate.
    let mut text = Vec::with_capacity(at as usize);
    text.push(MInstr::Call { target: entries[main_idx] });
    text.push(MInstr::Halt);
    let mut symbols = Vec::with_capacity(mm.funcs.len());
    for (fi, l) in layouts.iter().enumerate() {
        let base = entries[fi];
        for i in &l.insts {
            let patched = match i {
                MInstr::Jmp { target } => MInstr::Jmp { target: base + l.block_start[*target as usize] },
                MInstr::Jcc { cc, target } => {
                    MInstr::Jcc { cc: *cc, target: base + l.block_start[*target as usize] }
                }
                MInstr::Call { target } => MInstr::Call { target: entries[*target as usize] },
                other => *other,
            };
            text.push(patched);
        }
        symbols.push(Symbol {
            name: mm.func_names[fi].clone(),
            entry: base,
            end: base + l.insts.len() as u32,
        });
    }

    Binary {
        text,
        data: mm.globals.clone(),
        symbols,
        strings: mm.strings.clone(),
        entry: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfunc::{MBlock, MFunction};
    use refine_machine::{Cc, Mem};

    #[test]
    fn shim_and_symbols() {
        let mm = MModule {
            funcs: vec![MFunction {
                name: "main".into(),
                blocks: vec![MBlock {
                    insts: vec![MInstr::MovRI { rd: 0, imm: 3 }, MInstr::Ret],
                }],
            }],
            globals: vec![1, 2],
            strings: vec!["s".into()],
            func_names: vec!["main".into()],
        };
        let b = emit(&mm);
        assert!(matches!(b.text[0], MInstr::Call { target: 2 }));
        assert!(matches!(b.text[1], MInstr::Halt));
        assert_eq!(b.symbols[0].name, "main");
        assert_eq!(b.symbols[0].entry, 2);
        assert_eq!(b.data, vec![1, 2]);
    }

    #[test]
    fn branch_targets_resolved_and_fallthrough_elided() {
        // Block 0: jcc -> block 2, jmp -> block 1 (next: elided)
        // Block 1: jmp -> block 2 (next: elided)
        // Block 2: ret
        let f = MFunction {
            name: "main".into(),
            blocks: vec![
                MBlock {
                    insts: vec![
                        MInstr::CmpI { ra: 0, imm: 0 },
                        MInstr::Jcc { cc: Cc::E, target: 2 },
                        MInstr::Jmp { target: 1 },
                    ],
                },
                MBlock { insts: vec![MInstr::Ld { rd: 0, mem: Mem::abs(0x10000) }, MInstr::Jmp { target: 2 }] },
                MBlock { insts: vec![MInstr::Ret] },
            ],
        };
        let mm = MModule {
            funcs: vec![f],
            globals: vec![0],
            strings: vec![],
            func_names: vec!["main".into()],
        };
        let b = emit(&mm);
        // Layout: 0:call 1:halt 2:cmpi 3:jcc 4:ld 5:ret
        assert_eq!(b.text.len(), 6);
        assert!(matches!(b.text[3], MInstr::Jcc { target: 5, .. }));
    }

    #[test]
    fn cross_function_calls_resolved() {
        let main = MFunction {
            name: "main".into(),
            blocks: vec![MBlock { insts: vec![MInstr::Call { target: 1 }, MInstr::Ret] }],
        };
        let helper = MFunction {
            name: "helper".into(),
            blocks: vec![MBlock { insts: vec![MInstr::MovRI { rd: 0, imm: 9 }, MInstr::Ret] }],
        };
        let mm = MModule {
            funcs: vec![main, helper],
            globals: vec![],
            strings: vec![],
            func_names: vec!["main".into(), "helper".into()],
        };
        let b = emit(&mm);
        // helper entry = 2 (shim) + 2 (main) = 4
        assert!(matches!(b.text[2], MInstr::Call { target: 4 }));
        assert_eq!(b.symbols[1].entry, 4);
    }
}
