//! Machine instructions over virtual registers ("VCode"), the pre-regalloc
//! backend representation.

use refine_machine::{AluOp, Cc, CvtKind, FAluOp, RtFunc};

/// A virtual register, typed by register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vr {
    /// Integer/pointer class (allocates to GPRs).
    Int(u32),
    /// Floating class (allocates to FPRs).
    Flt(u32),
}

impl Vr {
    /// Flat index into the per-class numbering.
    pub fn num(self) -> u32 {
        match self {
            Vr::Int(n) | Vr::Flt(n) => n,
        }
    }

    /// True for the integer class.
    pub fn is_int(self) -> bool {
        matches!(self, Vr::Int(_))
    }
}

/// A virtual addressing mode: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VMem {
    /// Base vreg (integer class).
    pub base: Option<Vr>,
    /// Scaled index: `(vreg, scale)`, scale in {1, 2, 4, 8}.
    pub index: Option<(Vr, u8)>,
    /// Byte displacement (absolute address when no base).
    pub disp: i64,
}

impl VMem {
    /// Absolute address.
    pub fn abs(disp: i64) -> VMem {
        VMem { base: None, index: None, disp }
    }

    /// Visit register operands.
    pub fn uses(&self, out: &mut Vec<Vr>) {
        if let Some(b) = self.base {
            out.push(b);
        }
        if let Some((i, _)) = self.index {
            out.push(i);
        }
    }
}

/// A VCode instruction: the M64 instruction set over virtual registers,
/// plus call/return/frame pseudo-instructions expanded after register
/// allocation.
///
/// Operand fields follow the standard naming convention (`rd`/`fd` =
/// destination register, `ra`/`rb`/`fa`/`fb` = sources, `imm` = immediate,
/// `mem` = addressing mode) and are not documented individually.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum VInst {
    /// Integer register move.
    Mov { d: Vr, a: Vr },
    /// Integer immediate move.
    MovI { d: Vr, imm: i64 },
    /// Float register move.
    FMov { d: Vr, a: Vr },
    /// Float immediate move.
    FMovI { d: Vr, imm: u64 },
    /// Integer ALU, register-register.
    Alu { op: AluOp, d: Vr, a: Vr, b: Vr },
    /// Integer ALU, register-immediate.
    AluI { op: AluOp, d: Vr, a: Vr, imm: i64 },
    /// Integer compare (FLAGS).
    Cmp { a: Vr, b: Vr },
    /// Integer compare with immediate (FLAGS).
    CmpI { a: Vr, imm: i64 },
    /// Materialize a condition into a register.
    SetCc { cc: Cc, d: Vr },
    /// Float ALU.
    FAlu { op: FAluOp, d: Vr, a: Vr, b: Vr },
    /// Float compare (FLAGS).
    FCmp { a: Vr, b: Vr },
    /// Conversion between classes.
    Cvt { kind: CvtKind, d: Vr, s: Vr },
    /// Integer load.
    Ld { d: Vr, mem: VMem },
    /// Integer store.
    St { s: Vr, mem: VMem },
    /// Float load.
    FLd { d: Vr, mem: VMem },
    /// Float store.
    FSt { s: Vr, mem: VMem },
    /// Address materialization (no flags).
    Lea { d: Vr, mem: VMem },
    /// Address of the `id`-th alloca slot of this function (pseudo;
    /// resolved during frame layout).
    FrameAddr { d: Vr, id: u32 },
    /// Direct call (pseudo: ABI moves inserted at finalization). `func` is
    /// the IR function index.
    Call { func: u32, args: Vec<Vr>, ret: Option<Vr> },
    /// Runtime-library call (pseudo, same treatment: the C ABI clobbers
    /// caller-saved registers, which is what makes IR-level FI
    /// instrumentation expensive).
    RtCall { func: RtFunc, imm: u64, args: Vec<Vr>, ret: Option<Vr> },
    /// Unconditional branch to a VCode block.
    Jmp { bb: u32 },
    /// Conditional branch to a VCode block (falls through otherwise).
    Jcc { cc: Cc, bb: u32 },
    /// Function return (pseudo: return-value move + epilogue inserted at
    /// finalization).
    Ret { val: Option<Vr> },
}

impl VInst {
    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Vr> {
        let mut u = Vec::new();
        match self {
            VInst::Mov { a, .. } | VInst::FMov { a, .. } => u.push(*a),
            VInst::MovI { .. } | VInst::FMovI { .. } => {}
            VInst::Alu { a, b, .. } | VInst::FAlu { a, b, .. } => {
                u.push(*a);
                u.push(*b);
            }
            VInst::AluI { a, .. } => u.push(*a),
            VInst::Cmp { a, b } | VInst::FCmp { a, b } => {
                u.push(*a);
                u.push(*b);
            }
            VInst::CmpI { a, .. } => u.push(*a),
            VInst::SetCc { .. } => {}
            VInst::Cvt { s, .. } => u.push(*s),
            VInst::Ld { mem, .. } | VInst::FLd { mem, .. } | VInst::Lea { mem, .. } => {
                mem.uses(&mut u)
            }
            VInst::St { s, mem } | VInst::FSt { s, mem } => {
                u.push(*s);
                mem.uses(&mut u);
            }
            VInst::FrameAddr { .. } => {}
            VInst::Call { args, .. } | VInst::RtCall { args, .. } => u.extend(args.iter().copied()),
            VInst::Jmp { .. } | VInst::Jcc { .. } => {}
            VInst::Ret { val } => u.extend(val.iter().copied()),
        }
        u
    }

    /// Registers written by this instruction.
    pub fn defs(&self) -> Vec<Vr> {
        match self {
            VInst::Mov { d, .. }
            | VInst::MovI { d, .. }
            | VInst::FMov { d, .. }
            | VInst::FMovI { d, .. }
            | VInst::Alu { d, .. }
            | VInst::AluI { d, .. }
            | VInst::SetCc { d, .. }
            | VInst::FAlu { d, .. }
            | VInst::Cvt { d, .. }
            | VInst::Ld { d, .. }
            | VInst::FLd { d, .. }
            | VInst::Lea { d, .. }
            | VInst::FrameAddr { d, .. } => vec![*d],
            VInst::Call { ret, .. } | VInst::RtCall { ret, .. } => ret.iter().copied().collect(),
            _ => vec![],
        }
    }

    /// True for pseudo-instructions with C-ABI call semantics (clobber all
    /// caller-saved registers).
    pub fn is_call(&self) -> bool {
        matches!(self, VInst::Call { .. } | VInst::RtCall { .. })
    }

    /// True for block terminators.
    pub fn is_term(&self) -> bool {
        matches!(self, VInst::Jmp { .. } | VInst::Ret { .. })
    }
}

/// One VCode basic block.
#[derive(Debug, Clone, Default)]
pub struct VBlock {
    /// Instructions; the last is a terminator (`Jmp`/`Ret`), possibly
    /// preceded by a `Jcc`.
    pub insts: Vec<VInst>,
}

/// A function in VCode form.
#[derive(Debug, Clone)]
pub struct VFunc {
    /// Source-level function name.
    pub name: String,
    /// Blocks, index 0 = entry; layout order.
    pub blocks: Vec<VBlock>,
    /// Number of integer vregs.
    pub n_int: u32,
    /// Number of float vregs.
    pub n_flt: u32,
    /// Alloca slots: words per alloca, indexed by `FrameAddr.id`.
    pub alloca_words: Vec<u32>,
    /// Incoming parameters in order, as vregs (moved from ABI registers in
    /// the prologue during finalization).
    pub params: Vec<Vr>,
}

impl VFunc {
    /// Allocate a fresh integer vreg.
    pub fn new_int(&mut self) -> Vr {
        let v = Vr::Int(self.n_int);
        self.n_int += 1;
        v
    }

    /// Allocate a fresh float vreg.
    pub fn new_flt(&mut self) -> Vr {
        let v = Vr::Flt(self.n_flt);
        self.n_flt += 1;
        v
    }

    /// Successor blocks of block `b` (from its trailing branch instructions).
    pub fn successors(&self, b: usize) -> Vec<u32> {
        let mut s = Vec::new();
        for i in self.blocks[b].insts.iter().rev().take(2) {
            match i {
                VInst::Jmp { bb } => s.push(*bb),
                VInst::Jcc { bb, .. } => s.push(*bb),
                VInst::Ret { .. } => {}
                _ => break,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_and_defs() {
        let v0 = Vr::Int(0);
        let v1 = Vr::Int(1);
        let v2 = Vr::Int(2);
        let i = VInst::Alu { op: AluOp::Add, d: v2, a: v0, b: v1 };
        assert_eq!(i.uses(), vec![v0, v1]);
        assert_eq!(i.defs(), vec![v2]);

        let st = VInst::St {
            s: v0,
            mem: VMem { base: Some(v1), index: Some((v2, 8)), disp: 4 },
        };
        assert_eq!(st.uses(), vec![v0, v1, v2]);
        assert!(st.defs().is_empty());
    }

    #[test]
    fn call_semantics() {
        let c = VInst::Call { func: 0, args: vec![Vr::Int(1), Vr::Flt(0)], ret: Some(Vr::Int(2)) };
        assert!(c.is_call());
        assert_eq!(c.uses().len(), 2);
        assert_eq!(c.defs(), vec![Vr::Int(2)]);
    }

    #[test]
    fn successors_from_terminators() {
        let mut f = VFunc {
            name: "t".into(),
            blocks: vec![VBlock::default(), VBlock::default(), VBlock::default()],
            n_int: 0,
            n_flt: 0,
            alloca_words: vec![],
            params: vec![],
        };
        f.blocks[0].insts = vec![
            VInst::Jcc { cc: Cc::E, bb: 2 },
            VInst::Jmp { bb: 1 },
        ];
        f.blocks[1].insts = vec![VInst::Ret { val: None }];
        let mut s = f.successors(0);
        s.sort();
        assert_eq!(s, vec![1, 2]);
        assert!(f.successors(1).is_empty());
    }
}
