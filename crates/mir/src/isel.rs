//! Instruction selection: optimized IR -> VCode.
//!
//! Two selections matter for the paper's story and are implemented here the
//! way a production backend does them:
//!
//! * **addressing-mode folding** — `getelementptr`-style [`refine_ir::Instr::PtrAdd`]
//!   chains whose only consumers are loads/stores become
//!   `[base + idx*scale + disp]` operands and never exist as instructions
//!   (so IR-level FI cannot target them, while backend/binary FI can);
//! * **compare + branch fusion** — an `icmp`/`fcmp` whose single use is the
//!   same block's conditional branch emits `cmp` + `jcc` with no
//!   materialized boolean (the `vucomisd`/`seta` split of the paper's
//!   Listing 2c happens only when instrumentation breaks this pattern).

use crate::vcode::{VBlock, VFunc, VInst, VMem, Vr};
use refine_ir::interp::Interp;
use refine_ir::{
    CastOp, FBinOp, FPred, IBinOp, IPred, Instr, Intrinsic, Operand, Terminator, Ty, ValueId,
};
use refine_machine::{AluOp, Cc, CvtKind, FAluOp, RtFunc};
use std::collections::{HashMap, HashSet};

/// Lower one IR function (critical edges already split) to VCode.
pub fn lower_function(m: &refine_ir::Module, f: &refine_ir::Function) -> VFunc {
    Lowerer::new(m, f).run()
}

struct Lowerer<'a> {
    m: &'a refine_ir::Module,
    f: &'a refine_ir::Function,
    v: VFunc,
    /// IR value -> vreg.
    vmap: HashMap<ValueId, Vr>,
    /// cmp values fused into their block's terminator.
    fused: HashSet<ValueId>,
    /// PtrAdd values folded entirely into addressing modes.
    folded: HashSet<ValueId>,
    /// Alloca value -> FrameAddr id.
    allocas: HashMap<ValueId, u32>,
    cur: usize,
}

impl<'a> Lowerer<'a> {
    fn new(m: &'a refine_ir::Module, f: &'a refine_ir::Function) -> Self {
        let mut v = VFunc {
            name: f.name.clone(),
            blocks: vec![VBlock::default(); f.blocks.len()],
            n_int: 0,
            n_flt: 0,
            alloca_words: vec![],
            params: vec![],
        };
        let mut vmap = HashMap::new();
        for (i, ty) in f.params.iter().enumerate() {
            let vr = match ty {
                Ty::F64 => v.new_flt(),
                _ => v.new_int(),
            };
            v.params.push(vr);
            vmap.insert(ValueId(i as u32), vr);
        }
        Lowerer {
            m,
            f,
            v,
            vmap,
            fused: HashSet::new(),
            folded: HashSet::new(),
            allocas: HashMap::new(),
            cur: 0,
        }
    }

    fn run(mut self) -> VFunc {
        self.analyze();
        for bi in 0..self.f.blocks.len() {
            self.cur = bi;
            self.lower_block(bi);
        }
        self.v
    }

    /// Use counting + fusion/folding analysis.
    fn analyze(&mut self) {
        let counts = refine_ir::passes::use_counts(self.f);
        // Fuse cmps used exactly once, by the same block's terminator.
        for b in &self.f.blocks {
            if let Some(Terminator::CondBr { cond, .. }) = &b.term {
                if let Some(v) = cond.as_value() {
                    let defined_here = b
                        .instrs
                        .iter()
                        .any(|id| id.result == Some(v) && matches!(id.instr, Instr::ICmp { .. } | Instr::FCmp { .. }));
                    if defined_here && counts[v.index()] == 1 {
                        self.fused.insert(v);
                    }
                }
            }
        }
        // Fold PtrAdds whose every use is a load/store address.
        let mut addr_only: HashMap<ValueId, bool> = HashMap::new();
        for b in &self.f.blocks {
            for id in &b.instrs {
                if let (Instr::PtrAdd { .. }, Some(res)) = (&id.instr, id.result) {
                    addr_only.insert(res, true);
                }
            }
        }
        for b in &self.f.blocks {
            for id in &b.instrs {
                match &id.instr {
                    Instr::Load { addr, .. } => {
                        let _ = addr; // address positions are fine
                    }
                    Instr::Store { addr, val, .. } => {
                        // A PtrAdd used as a stored *value* escapes.
                        if let Some(v) = val.as_value() {
                            if let Some(e) = addr_only.get_mut(&v) {
                                *e = false;
                            }
                        }
                        let _ = addr;
                    }
                    other => {
                        // PtrAdd bases feeding other PtrAdds stay foldable
                        // (the fold recurses); anything else disqualifies.
                        let base_of_ptradd = if let Instr::PtrAdd { base, .. } = other {
                            base.as_value()
                        } else {
                            None
                        };
                        other.for_each_operand(&mut |op| {
                            if let Some(v) = op.as_value() {
                                if Some(v) != base_of_ptradd {
                                    if let Some(e) = addr_only.get_mut(&v) {
                                        *e = false;
                                    }
                                }
                            }
                        });
                    }
                }
            }
            if let Some(t) = &b.term {
                let mut t2 = t.clone();
                t2.for_each_operand_mut(&mut |op| {
                    if let Some(v) = op.as_value() {
                        if let Some(e) = addr_only.get_mut(&v) {
                            *e = false;
                        }
                    }
                });
            }
        }
        // Fix-point: a foldable PtrAdd whose base is a non-foldable PtrAdd is
        // still foldable (base used as a plain register); nothing to iterate.
        self.folded = addr_only
            .into_iter()
            .filter_map(|(v, ok)| ok.then_some(v))
            .collect();
    }

    fn emit(&mut self, i: VInst) {
        self.v.blocks[self.cur].insts.push(i);
    }

    /// Vreg for an IR value, creating it on first sight.
    fn vreg(&mut self, val: ValueId) -> Vr {
        if let Some(v) = self.vmap.get(&val) {
            return *v;
        }
        let vr = match self.f.ty_of(val) {
            Ty::F64 => self.v.new_flt(),
            _ => self.v.new_int(),
        };
        self.vmap.insert(val, vr);
        vr
    }

    /// Integer-class operand -> vreg (materializing constants).
    fn op_int(&mut self, op: &Operand) -> Vr {
        match op {
            Operand::Value(v) => self.vreg(*v),
            Operand::ConstI(c) => {
                let d = self.v.new_int();
                self.emit(VInst::MovI { d, imm: *c });
                d
            }
            Operand::ConstF(c) => {
                // Integer context with a float constant: its bits.
                let d = self.v.new_int();
                self.emit(VInst::MovI { d, imm: c.to_bits() as i64 });
                d
            }
            Operand::Global(g) => {
                let d = self.v.new_int();
                self.emit(VInst::MovI { d, imm: Interp::global_addr(self.m, *g) as i64 });
                d
            }
        }
    }

    /// Float-class operand -> vreg.
    fn op_flt(&mut self, op: &Operand) -> Vr {
        match op {
            Operand::Value(v) => self.vreg(*v),
            Operand::ConstF(c) => {
                let d = self.v.new_flt();
                self.emit(VInst::FMovI { d, imm: c.to_bits() });
                d
            }
            Operand::ConstI(c) => {
                let d = self.v.new_flt();
                self.emit(VInst::FMovI { d, imm: (*c as f64).to_bits() });
                d
            }
            Operand::Global(_) => unreachable!("global address in float context"),
        }
    }

    fn op_by_ty(&mut self, op: &Operand, ty: Ty) -> Vr {
        if ty == Ty::F64 {
            self.op_flt(op)
        } else {
            self.op_int(op)
        }
    }

    /// Fold an address operand into a machine addressing mode, following
    /// foldable PtrAdd chains.
    fn fold_mem(&mut self, addr: &Operand) -> VMem {
        match addr {
            Operand::Global(g) => VMem::abs(Interp::global_addr(self.m, *g) as i64),
            Operand::ConstI(c) => VMem::abs(*c),
            Operand::Value(v) => {
                // Is this a foldable PtrAdd? find its definition.
                if self.folded.contains(v) {
                    if let Some(Instr::PtrAdd { base, idx, scale, disp }) = self.find_def(*v) {
                        let mut mem = self.fold_mem(&base);
                        mem.disp += disp;
                        match idx {
                            Operand::ConstI(c) => {
                                mem.disp += c * scale;
                                return mem;
                            }
                            _ => {
                                let iv = self.op_int(&idx);
                                if mem.index.is_none() && matches!(scale, 1 | 2 | 4 | 8) {
                                    mem.index = Some((iv, scale as u8));
                                    return mem;
                                }
                                // Index slot busy or awkward scale:
                                // materialize the partial address, continue.
                                let scaled = if scale == 1 {
                                    iv
                                } else {
                                    let t = self.v.new_int();
                                    self.emit(VInst::AluI {
                                        op: AluOp::Mul,
                                        d: t,
                                        a: iv,
                                        imm: scale,
                                    });
                                    t
                                };
                                let part = self.v.new_int();
                                self.emit(VInst::Lea { d: part, mem });
                                return VMem {
                                    base: Some(part),
                                    index: Some((scaled, 1)),
                                    disp: 0,
                                };
                            }
                        }
                    }
                }
                VMem { base: Some(self.vreg(*v)), index: None, disp: 0 }
            }
            Operand::ConstF(_) => unreachable!("float constant as address"),
        }
    }

    /// Find the defining instruction of a value (folded PtrAdds only; cheap
    /// because the benchmark functions are small).
    fn find_def(&self, v: ValueId) -> Option<Instr> {
        for b in &self.f.blocks {
            for id in &b.instrs {
                if id.result == Some(v) {
                    return Some(id.instr.clone());
                }
            }
        }
        None
    }

    fn lower_block(&mut self, bi: usize) {
        let block = &self.f.blocks[bi];
        let instrs = block.instrs.clone();
        for id in &instrs {
            if let Some(res) = id.result {
                if self.fused.contains(&res) || self.folded.contains(&res) {
                    continue; // emitted at the branch / folded into operands
                }
            }
            self.lower_instr(&id.instr, id.result);
        }
        // Phi copies for every successor, as one parallel-copy group
        // (all temps read before any phi register is written).
        let term = block.term.clone().expect("terminated IR");
        let succs: Vec<refine_ir::BlockId> = self.f.blocks[bi].successors();
        let mut staged: Vec<(Vr, Vr)> = Vec::new(); // (phi vreg, temp)
        for s in succs {
            let phi_list: Vec<(ValueId, Operand, Ty)> = self.f.blocks[s.index()]
                .instrs
                .iter()
                .filter_map(|id|

                    if let Instr::Phi { incomings, ty } = &id.instr {
                        let op = incomings
                            .iter()
                            .find(|(p, _)| p.index() == bi)
                            .map(|(_, o)| *o)?;
                        Some((id.result.unwrap(), op, *ty))
                    } else {
                        None
                    })
                .collect();
            for (phi, op, ty) in phi_list {
                let src = self.op_by_ty(&op, ty);
                let tmp = if ty == Ty::F64 { self.v.new_flt() } else { self.v.new_int() };
                if ty == Ty::F64 {
                    self.emit(VInst::FMov { d: tmp, a: src });
                } else {
                    self.emit(VInst::Mov { d: tmp, a: src });
                }
                let phiv = self.vreg(phi);
                staged.push((phiv, tmp));
            }
        }
        for (phiv, tmp) in staged {
            if phiv.is_int() {
                self.emit(VInst::Mov { d: phiv, a: tmp });
            } else {
                self.emit(VInst::FMov { d: phiv, a: tmp });
            }
        }
        // Terminator.
        match term {
            Terminator::Br(t) => self.emit(VInst::Jmp { bb: t.0 }),
            Terminator::CondBr { cond, t, f: fb } => {
                let cc = self.emit_branch_condition(&cond, bi);
                self.emit(VInst::Jcc { cc, bb: t.0 });
                self.emit(VInst::Jmp { bb: fb.0 });
            }
            Terminator::Ret(v) => {
                let val = v.map(|op| {
                    let ty = self.f.ret.unwrap();
                    self.op_by_ty(&op, ty)
                });
                self.emit(VInst::Ret { val });
            }
        }
    }

    /// Emit the compare feeding a conditional branch (fused when possible)
    /// and return the branch condition code.
    fn emit_branch_condition(&mut self, cond: &Operand, bi: usize) -> Cc {
        if let Some(v) = cond.as_value() {
            if self.fused.contains(&v) {
                // Find the cmp in this block and emit it here.
                let def = self.f.blocks[bi]
                    .instrs
                    .iter()
                    .find(|id| id.result == Some(v))
                    .map(|id| id.instr.clone())
                    .expect("fused cmp in block");
                match def {
                    Instr::ICmp { pred, a, b } => {
                        let cc = icc(pred);
                        self.emit_icmp(&a, &b);
                        return cc;
                    }
                    Instr::FCmp { pred, a, b } => {
                        let av = self.op_flt(&a);
                        let bv = self.op_flt(&b);
                        self.emit(VInst::FCmp { a: av, b: bv });
                        return fcc(pred);
                    }
                    _ => unreachable!("fused value is always a cmp"),
                }
            }
        }
        // Generic boolean: test against zero.
        let c = self.op_int(cond);
        self.emit(VInst::CmpI { a: c, imm: 0 });
        Cc::Ne
    }

    fn emit_icmp(&mut self, a: &Operand, b: &Operand) {
        match (a, b) {
            (_, Operand::ConstI(c)) => {
                let av = self.op_int(a);
                self.emit(VInst::CmpI { a: av, imm: *c });
            }
            _ => {
                let av = self.op_int(a);
                let bv = self.op_int(b);
                self.emit(VInst::Cmp { a: av, b: bv });
            }
        }
    }

    fn lower_instr(&mut self, instr: &Instr, result: Option<ValueId>) {
        match instr {
            Instr::Alloca { words } => {
                let id = self.v.alloca_words.len() as u32;
                self.v.alloca_words.push(*words);
                let d = self.vreg(result.unwrap());
                self.allocas.insert(result.unwrap(), id);
                self.emit(VInst::FrameAddr { d, id });
            }
            Instr::Load { addr, ty } => {
                let mem = self.fold_mem(addr);
                let d = self.vreg(result.unwrap());
                if *ty == Ty::F64 {
                    self.emit(VInst::FLd { d, mem });
                } else {
                    self.emit(VInst::Ld { d, mem });
                }
            }
            Instr::Store { addr, val, ty } => {
                let mem = self.fold_mem(addr);
                if *ty == Ty::F64 {
                    let s = self.op_flt(val);
                    self.emit(VInst::FSt { s, mem });
                } else {
                    let s = self.op_int(val);
                    self.emit(VInst::St { s, mem });
                }
            }
            Instr::IBin { op, a, b } => {
                let d = self.vreg(result.unwrap());
                let mop = ialu(*op);
                let commutes = matches!(
                    op,
                    IBinOp::Add | IBinOp::Mul | IBinOp::And | IBinOp::Or | IBinOp::Xor
                );
                match (a, b) {
                    (_, Operand::ConstI(c)) => {
                        let av = self.op_int(a);
                        self.emit(VInst::AluI { op: mop, d, a: av, imm: *c });
                    }
                    (Operand::ConstI(c), _) if commutes => {
                        let bv = self.op_int(b);
                        self.emit(VInst::AluI { op: mop, d, a: bv, imm: *c });
                    }
                    _ => {
                        let av = self.op_int(a);
                        let bv = self.op_int(b);
                        self.emit(VInst::Alu { op: mop, d, a: av, b: bv });
                    }
                }
            }
            Instr::FBin { op, a, b } => {
                let av = self.op_flt(a);
                let bv = self.op_flt(b);
                let d = self.vreg(result.unwrap());
                self.emit(VInst::FAlu { op: falu(*op), d, a: av, b: bv });
            }
            Instr::ICmp { pred, a, b } => {
                self.emit_icmp(a, b);
                let d = self.vreg(result.unwrap());
                self.emit(VInst::SetCc { cc: icc(*pred), d });
            }
            Instr::FCmp { pred, a, b } => {
                let av = self.op_flt(a);
                let bv = self.op_flt(b);
                self.emit(VInst::FCmp { a: av, b: bv });
                let d = self.vreg(result.unwrap());
                self.emit(VInst::SetCc { cc: fcc(*pred), d });
            }
            Instr::Select { cond, a, b, ty } => {
                // Branchless lowering: r = b ^ ((a ^ b) & (0 - cond)).
                let c = self.op_int(cond);
                let zero = self.v.new_int();
                self.emit(VInst::MovI { d: zero, imm: 0 });
                let mask = self.v.new_int();
                self.emit(VInst::Alu { op: AluOp::Sub, d: mask, a: zero, b: c });
                let (ai, bi2) = if *ty == Ty::F64 {
                    let af = self.op_flt(a);
                    let bf = self.op_flt(b);
                    let ai = self.v.new_int();
                    let bi2 = self.v.new_int();
                    self.emit(VInst::Cvt { kind: CvtKind::FToBits, d: ai, s: af });
                    self.emit(VInst::Cvt { kind: CvtKind::FToBits, d: bi2, s: bf });
                    (ai, bi2)
                } else {
                    (self.op_int(a), self.op_int(b))
                };
                let x = self.v.new_int();
                self.emit(VInst::Alu { op: AluOp::Xor, d: x, a: ai, b: bi2 });
                let x2 = self.v.new_int();
                self.emit(VInst::Alu { op: AluOp::And, d: x2, a: x, b: mask });
                if *ty == Ty::F64 {
                    let ri = self.v.new_int();
                    self.emit(VInst::Alu { op: AluOp::Xor, d: ri, a: bi2, b: x2 });
                    let d = self.vreg(result.unwrap());
                    self.emit(VInst::Cvt { kind: CvtKind::BitsToF, d, s: ri });
                } else {
                    let d = self.vreg(result.unwrap());
                    self.emit(VInst::Alu { op: AluOp::Xor, d, a: bi2, b: x2 });
                }
            }
            Instr::Cast { op, v } => {
                let d = self.vreg(result.unwrap());
                match op {
                    CastOp::SiToF => {
                        let s = self.op_int(v);
                        self.emit(VInst::Cvt { kind: CvtKind::SiToF, d, s });
                    }
                    CastOp::FToSi => {
                        let s = self.op_flt(v);
                        self.emit(VInst::Cvt { kind: CvtKind::FToSi, d, s });
                    }
                    CastOp::I1ToI64 => {
                        let s = self.op_int(v);
                        self.emit(VInst::AluI { op: AluOp::And, d, a: s, imm: 1 });
                    }
                    CastOp::IntToPtr | CastOp::PtrToInt => {
                        let s = self.op_int(v);
                        self.emit(VInst::Mov { d, a: s });
                    }
                    CastOp::BitsToF => {
                        let s = self.op_int(v);
                        self.emit(VInst::Cvt { kind: CvtKind::BitsToF, d, s });
                    }
                    CastOp::FToBits => {
                        let s = self.op_flt(v);
                        self.emit(VInst::Cvt { kind: CvtKind::FToBits, d, s });
                    }
                }
            }
            Instr::PtrAdd { base, idx, scale, disp } => {
                // Un-folded PtrAdd: materialize the address with lea.
                let mut mem = self.fold_mem(base);
                mem.disp += disp;
                match idx {
                    Operand::ConstI(c) => mem.disp += c * scale,
                    _ => {
                        let iv = self.op_int(idx);
                        if mem.index.is_none() && matches!(*scale, 1 | 2 | 4 | 8) {
                            mem.index = Some((iv, *scale as u8));
                        } else {
                            let t = self.v.new_int();
                            self.emit(VInst::AluI { op: AluOp::Mul, d: t, a: iv, imm: *scale });
                            let part = self.v.new_int();
                            self.emit(VInst::Lea { d: part, mem });
                            mem = VMem { base: Some(part), index: Some((t, 1)), disp: 0 };
                        }
                    }
                }
                let d = self.vreg(result.unwrap());
                self.emit(VInst::Lea { d, mem });
            }
            Instr::Call { func, args } => {
                let callee = &self.m.funcs[func.index()];
                let mut avs = Vec::with_capacity(args.len());
                for (op, ty) in args.iter().zip(callee.params.iter()) {
                    avs.push(self.op_by_ty(op, *ty));
                }
                let ret = result.map(|r| self.vreg(r));
                self.emit(VInst::Call { func: func.0, args: avs, ret });
            }
            Instr::IntrinsicCall { which, args } => {
                let (func, argtys): (RtFunc, &[Ty]) = match which {
                    Intrinsic::Sqrt => (RtFunc::Sqrt, &[Ty::F64]),
                    Intrinsic::Fabs => (RtFunc::Fabs, &[Ty::F64]),
                    Intrinsic::Exp => (RtFunc::Exp, &[Ty::F64]),
                    Intrinsic::Log => (RtFunc::Log, &[Ty::F64]),
                    Intrinsic::Sin => (RtFunc::Sin, &[Ty::F64]),
                    Intrinsic::Cos => (RtFunc::Cos, &[Ty::F64]),
                    Intrinsic::Floor => (RtFunc::Floor, &[Ty::F64]),
                    Intrinsic::Pow => (RtFunc::Pow, &[Ty::F64, Ty::F64]),
                    Intrinsic::Fmin => (RtFunc::Fmin, &[Ty::F64, Ty::F64]),
                    Intrinsic::Fmax => (RtFunc::Fmax, &[Ty::F64, Ty::F64]),
                    Intrinsic::PrintI64 => (RtFunc::PrintI64, &[Ty::I64]),
                    Intrinsic::PrintF64 => (RtFunc::PrintF64, &[Ty::F64]),
                };
                let avs: Vec<Vr> = args
                    .iter()
                    .zip(argtys.iter())
                    .map(|(op, ty)| self.op_by_ty(op, *ty))
                    .collect();
                let ret = result.map(|r| self.vreg(r));
                self.emit(VInst::RtCall { func, imm: 0, args: avs, ret });
            }
            Instr::PrintStr { s } => {
                self.emit(VInst::RtCall {
                    func: RtFunc::PrintStr,
                    imm: s.0 as u64,
                    args: vec![],
                    ret: None,
                });
            }
            Instr::LlfiInject { site, val, ty } => {
                // LLFI's injectFault is an ordinary C-ABI runtime call; the
                // register allocator treats it like any call, so the
                // caller-saved clobbering and spill traffic of IR-level
                // instrumentation arise naturally.
                let imm = refine_machine::rt::pack::llfi_imm(*site, ty.bits());
                let d = self.vreg(result.unwrap());
                if *ty == Ty::F64 {
                    let s = self.op_flt(val);
                    self.emit(VInst::RtCall {
                        func: RtFunc::LlfiInjectF,
                        imm,
                        args: vec![s],
                        ret: Some(d),
                    });
                } else {
                    let s = self.op_int(val);
                    self.emit(VInst::RtCall {
                        func: RtFunc::LlfiInjectI,
                        imm,
                        args: vec![s],
                        ret: Some(d),
                    });
                }
            }
            Instr::Phi { .. } => {
                // Registered lazily; copies are emitted by predecessors.
                self.vreg(result.unwrap());
            }
        }
    }
}

fn ialu(op: IBinOp) -> AluOp {
    match op {
        IBinOp::Add => AluOp::Add,
        IBinOp::Sub => AluOp::Sub,
        IBinOp::Mul => AluOp::Mul,
        IBinOp::Div => AluOp::Div,
        IBinOp::Rem => AluOp::Rem,
        IBinOp::And => AluOp::And,
        IBinOp::Or => AluOp::Or,
        IBinOp::Xor => AluOp::Xor,
        IBinOp::Shl => AluOp::Shl,
        IBinOp::LShr => AluOp::LShr,
        IBinOp::AShr => AluOp::AShr,
    }
}

fn icc(p: IPred) -> Cc {
    match p {
        IPred::Eq => Cc::E,
        IPred::Ne => Cc::Ne,
        IPred::Slt => Cc::Lt,
        IPred::Sle => Cc::Le,
        IPred::Sgt => Cc::Gt,
        IPred::Sge => Cc::Ge,
    }
}

fn fcc(p: FPred) -> Cc {
    match p {
        FPred::Oeq => Cc::E,
        FPred::One => Cc::Ne,
        FPred::Olt => Cc::Lt,
        FPred::Ole => Cc::Le,
        FPred::Ogt => Cc::Gt,
        FPred::Oge => Cc::Ge,
    }
}

fn falu(op: FBinOp) -> FAluOp {
    match op {
        FBinOp::Add => FAluOp::Add,
        FBinOp::Sub => FAluOp::Sub,
        FBinOp::Mul => FAluOp::Mul,
        FBinOp::Div => FAluOp::Div,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_ir::{FuncBuilder, Module};

    fn lower(m: &Module) -> VFunc {
        lower_function(m, &m.funcs[0])
    }

    #[test]
    fn fuses_cmp_with_branch() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let t = b.add_block("t");
        let e = b.add_block("e");
        let p = b.params()[0];
        let c = b.icmp(IPred::Slt, p, Operand::ConstI(10));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Some(Operand::ConstI(1)));
        b.switch_to(e);
        b.ret(Some(Operand::ConstI(0)));
        m.add_function(b.finish());
        let v = lower(&m);
        // Entry block: CmpI then Jcc — no SetCc materialization.
        let kinds: Vec<_> = v.blocks[0].insts.iter().collect();
        assert!(kinds.iter().any(|i| matches!(i, VInst::CmpI { .. })));
        assert!(!kinds.iter().any(|i| matches!(i, VInst::SetCc { .. })));
        assert!(kinds.iter().any(|i| matches!(i, VInst::Jcc { cc: Cc::Lt, .. })));
    }

    #[test]
    fn folds_gep_into_addressing_mode() {
        let mut m = Module::new();
        let g = m.add_global("arr", refine_ir::GlobalInit::Zero(16));
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let addr = b.elem(Operand::Global(g), p);
        let v = b.load(addr, Ty::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        let vf = lower(&m);
        // No Lea materialization: the PtrAdd became [abs + idx*8].
        assert!(!vf.blocks[0].insts.iter().any(|i| matches!(i, VInst::Lea { .. })));
        let ld = vf.blocks[0]
            .insts
            .iter()
            .find_map(|i| if let VInst::Ld { mem, .. } = i { Some(*mem) } else { None })
            .expect("load present");
        assert!(ld.index.is_some());
        assert_eq!(ld.disp, Interp::global_addr(&m, g) as i64);
    }

    #[test]
    fn escaping_gep_is_materialized() {
        let mut m = Module::new();
        let g = m.add_global("arr", refine_ir::GlobalInit::Zero(4));
        let mut b = FuncBuilder::new("f", vec![], Some(Ty::I64));
        let addr = b.elem(Operand::Global(g), Operand::ConstI(1));
        let as_int = b.cast(CastOp::PtrToInt, addr); // escapes
        b.ret(Some(as_int));
        m.add_function(b.finish());
        let vf = lower(&m);
        assert!(vf.blocks[0].insts.iter().any(|i| matches!(i, VInst::Lea { .. })));
    }

    #[test]
    fn lowers_call_and_intrinsic() {
        let mut m = Module::new();
        let mut cal = FuncBuilder::new("g", vec![Ty::F64], Some(Ty::F64));
        let p = cal.params()[0];
        cal.ret(Some(p));
        let gid = m.add_function(cal.finish());
        let mut b = FuncBuilder::new("f", vec![], Some(Ty::I64));
        let r = b.call(gid, vec![Operand::ConstF(2.0)], Some(Ty::F64)).unwrap();
        let s = b.intrinsic(Intrinsic::Sqrt, vec![r]).unwrap();
        let i = b.cast(CastOp::FToSi, s);
        b.ret(Some(i));
        m.add_function(b.finish());
        let vf = lower_function(&m, &m.funcs[1]);
        assert!(vf.blocks[0].insts.iter().any(|i| matches!(i, VInst::Call { .. })));
        assert!(vf.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, VInst::RtCall { func: RtFunc::Sqrt, .. })));
    }

    #[test]
    fn phi_copies_staged_through_temps() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", vec![], Some(Ty::I64));
        let h = b.add_block("h");
        let body = b.add_block("body");
        let latch = b.add_block("latch");
        let e = b.add_block("e");
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Ty::I64, vec![(refine_ir::BlockId(0), Operand::ConstI(0))]);
        let c = b.icmp(IPred::Slt, i, Operand::ConstI(4));
        b.cond_br(c, body, e);
        b.switch_to(body);
        let i2 = b.ibin(IBinOp::Add, i, Operand::ConstI(1));
        b.br(latch);
        b.switch_to(latch);
        b.add_incoming(i, latch, i2);
        b.br(h);
        b.switch_to(e);
        b.ret(Some(i));
        m.add_function(b.finish());
        let vf = lower(&m);
        // The latch block carries the copy into the phi vreg.
        let latch_insts = &vf.blocks[3].insts;
        assert!(latch_insts.iter().filter(|i| matches!(i, VInst::Mov { .. })).count() >= 2);
    }
}
