#![warn(missing_docs)]

//! `refine-mir` — the compiler backend: lowering from `refine-ir` to M64
//! machine code.
//!
//! This crate is the analogue of an LLVM target backend; it is the layer the
//! REFINE pass lives *after*. Pipeline:
//!
//! 1. [`isel`] — instruction selection from optimized IR into [`vcode`]
//!    (machine instructions over virtual registers), with addressing-mode
//!    folding and compare+branch fusion;
//! 2. phi elimination (critical edges are split at the IR level first);
//! 3. [`liveness`] — per-block dataflow liveness and live intervals;
//! 4. [`regalloc`] — linear-scan register allocation with spilling; values
//!    live across calls go to callee-saved registers or the stack;
//! 5. [`finalize`] — pseudo-instruction expansion (calls with ABI moves and
//!    parallel-copy resolution, returns), prologue/epilogue insertion and
//!    frame layout: exactly the machine instructions the paper's Listing 1b
//!    shows and IR-level FI cannot see;
//! 6. [`peephole`] — redundant-move cleanup;
//! 7. [`emit`] — layout, branch resolution and linking into a
//!    [`refine_machine::Binary`].
//!
//! The output of step 6 is an [`mfunc::MFunction`] — basic blocks of final
//! physical-register machine instructions. REFINE's backend FI pass (in
//! `refine-core`) transforms that structure right before [`emit`], which is
//! the "right before code emission" placement of the paper's §4.2.2.

pub mod emit;
pub mod finalize;
pub mod isel;
pub mod liveness;
pub mod mfunc;
pub mod peephole;
pub mod regalloc;
pub mod vcode;

pub use emit::emit;
pub use mfunc::{MBlock, MFunction, MModule};

use refine_ir::Module;
use refine_telemetry::{Phase, Span};

/// Compile an (already optimized) IR module to a machine module of final
/// basic blocks, ready for backend FI passes and emission.
pub fn lower_module(m: &Module) -> MModule {
    let mut ir = m.clone();
    for f in &mut ir.funcs {
        refine_ir::passes::splitedges::run(f);
    }
    let mut funcs = Vec::with_capacity(ir.funcs.len());
    for f in &ir.funcs {
        let mut v = {
            let _s = Span::enter(Phase::Isel);
            isel::lower_function(&ir, f)
        };
        let alloc = {
            let _s = Span::enter(Phase::Regalloc);
            let (intervals, call_sites) = liveness::analyze(&v);
            regalloc::allocate(&v, &intervals, &call_sites)
        };
        let _s = Span::enter(Phase::Finalize);
        let mut mf = finalize::finalize(&mut v, &alloc);
        peephole::run(&mut mf);
        funcs.push(mf);
    }
    MModule {
        funcs,
        globals: emit::build_data(&ir),
        strings: ir.strings.clone(),
        func_names: ir.funcs.iter().map(|f| f.name.clone()).collect(),
    }
}

/// Convenience: optimize + lower + emit a binary in one call.
pub fn compile(m: &Module, level: refine_ir::passes::OptLevel) -> refine_machine::Binary {
    let mut m = m.clone();
    {
        let _s = Span::enter(Phase::Optimize);
        refine_ir::passes::optimize(&mut m, level);
    }
    let mm = lower_module(&m);
    emit::emit(&mm)
}
