//! Post-RA peephole cleanup.

use crate::mfunc::MFunction;
use refine_machine::MInstr;

/// Remove trivially redundant instructions. Returns the number removed.
pub fn run(f: &mut MFunction) -> usize {
    let mut removed = 0;
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|i| match i {
            // Self-moves do nothing (FLAGS untouched by movs).
            MInstr::MovRR { rd, ra } => rd != ra,
            MInstr::FMovRR { fd, fa } => fd != fa,
            MInstr::Nop => false,
            _ => true,
        });
        removed += before - b.insts.len();
        // mov rX, imm; mov rX, imm2  ->  drop the first.
        let mut i = 0;
        while i + 1 < b.insts.len() {
            let redundant = matches!(
                (&b.insts[i], &b.insts[i + 1]),
                (MInstr::MovRI { rd: a, .. }, MInstr::MovRI { rd: b2, .. }) if a == b2
            );
            if redundant {
                b.insts.remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfunc::MBlock;

    #[test]
    fn removes_self_moves_and_dead_movi() {
        let mut f = MFunction {
            name: "t".into(),
            blocks: vec![MBlock {
                insts: vec![
                    MInstr::MovRR { rd: 1, ra: 1 },
                    MInstr::MovRI { rd: 2, imm: 5 },
                    MInstr::MovRI { rd: 2, imm: 7 },
                    MInstr::FMovRR { fd: 3, fa: 3 },
                    MInstr::MovRR { rd: 1, ra: 2 },
                    MInstr::Ret,
                ],
            }],
        };
        let n = run(&mut f);
        assert_eq!(n, 3);
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert!(matches!(f.blocks[0].insts[0], MInstr::MovRI { imm: 7, .. }));
    }
}
