//! Dataflow liveness and live-interval construction for linear scan.

use crate::vcode::{VFunc, Vr};
#[cfg(test)]
use crate::vcode::VInst;
use std::collections::{HashMap, HashSet};

/// A live interval over the linearized instruction numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// The virtual register.
    pub vreg: Vr,
    /// First position where the value is live (its earliest definition, or
    /// the start of the earliest block it is live into).
    pub start: u32,
    /// One past the last position where the value is read (or block end
    /// where it is live-out).
    pub end: u32,
    /// True when a call-like instruction executes strictly inside the
    /// interval: the value must survive the call, so it cannot live in a
    /// caller-saved register.
    pub crosses_call: bool,
}

/// Liveness analysis result: intervals (sorted by start) and the positions
/// of call-like instructions.
pub fn analyze(f: &VFunc) -> (Vec<Interval>, Vec<u32>) {
    let nb = f.blocks.len();
    // Linear positions.
    let mut block_start = vec![0u32; nb];
    let mut block_end = vec![0u32; nb];
    let mut pos = 0u32;
    for (bi, b) in f.blocks.iter().enumerate() {
        block_start[bi] = pos;
        pos += b.insts.len() as u32;
        block_end[bi] = pos;
    }

    // Per-block use/def/live sets over vregs.
    let mut gen: Vec<HashSet<Vr>> = vec![HashSet::new(); nb];
    let mut kill: Vec<HashSet<Vr>> = vec![HashSet::new(); nb];
    for (bi, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            for u in inst.uses() {
                if !kill[bi].contains(&u) {
                    gen[bi].insert(u);
                }
            }
            for d in inst.defs() {
                kill[bi].insert(d);
            }
        }
    }

    // Backward fixpoint.
    let mut live_in: Vec<HashSet<Vr>> = vec![HashSet::new(); nb];
    let mut live_out: Vec<HashSet<Vr>> = vec![HashSet::new(); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let mut out: HashSet<Vr> = HashSet::new();
            for s in f.successors(bi) {
                out.extend(live_in[s as usize].iter().copied());
            }
            let mut inn: HashSet<Vr> = out.difference(&kill[bi]).copied().collect();
            inn.extend(gen[bi].iter().copied());
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
    }

    // Build intervals.
    let mut ranges: HashMap<Vr, (u32, u32)> = HashMap::new();
    let extend = |v: Vr, s: u32, e: u32, ranges: &mut HashMap<Vr, (u32, u32)>| {
        let r = ranges.entry(v).or_insert((s, e));
        r.0 = r.0.min(s);
        r.1 = r.1.max(e);
    };
    // Parameters are defined at position 0 (the ABI moves in the prologue).
    for &p in &f.params {
        extend(p, 0, 1, &mut ranges);
    }
    let mut call_sites = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (p, inst) in (block_start[bi]..).zip(&b.insts) {
            if inst.is_call() {
                call_sites.push(p);
            }
            for u in inst.uses() {
                extend(u, p, p + 1, &mut ranges);
            }
            for d in inst.defs() {
                extend(d, p, p + 1, &mut ranges);
            }
        }
        for &v in &live_in[bi] {
            extend(v, block_start[bi], block_start[bi] + 1, &mut ranges);
        }
        for &v in &live_out[bi] {
            extend(v, block_start[bi], block_end[bi], &mut ranges);
            // Live-out at a block implies live-in somewhere later too; the
            // extend at the successor covers that side.
        }
    }

    let mut intervals: Vec<Interval> = ranges
        .into_iter()
        .map(|(vreg, (start, end))| {
            let crosses_call = call_sites
                .iter()
                .any(|&c| start < c && end > c + 1);
            Interval { vreg, start, end, crosses_call }
        })
        .collect();
    intervals.sort_by_key(|i| (i.start, i.end, i.vreg));
    (intervals, call_sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcode::VBlock;
    use refine_machine::{AluOp, Cc, RtFunc};

    fn func(blocks: Vec<Vec<VInst>>, n_int: u32) -> VFunc {
        VFunc {
            name: "t".into(),
            blocks: blocks
                .into_iter()
                .map(|insts| VBlock { insts })
                .collect(),
            n_int,
            n_flt: 0,
            alloca_words: vec![],
            params: vec![],
        }
    }

    #[test]
    fn straightline_intervals() {
        let v0 = Vr::Int(0);
        let v1 = Vr::Int(1);
        let f = func(
            vec![vec![
                VInst::MovI { d: v0, imm: 1 },            // 0
                VInst::MovI { d: v1, imm: 2 },            // 1
                VInst::Alu { op: AluOp::Add, d: v0, a: v0, b: v1 }, // 2
                VInst::Ret { val: Some(v0) },             // 3
            ]],
            2,
        );
        let (ints, calls) = analyze(&f);
        assert!(calls.is_empty());
        let i0 = ints.iter().find(|i| i.vreg == v0).unwrap();
        let i1 = ints.iter().find(|i| i.vreg == v1).unwrap();
        assert_eq!(i0.start, 0);
        assert_eq!(i0.end, 4);
        assert_eq!(i1.start, 1);
        assert_eq!(i1.end, 3);
    }

    #[test]
    fn crosses_call_detection() {
        let v0 = Vr::Int(0);
        let v1 = Vr::Int(1);
        let f = func(
            vec![vec![
                VInst::MovI { d: v0, imm: 1 },                                // 0
                VInst::RtCall { func: RtFunc::PrintI64, imm: 0, args: vec![], ret: None }, // 1
                VInst::Mov { d: v1, a: v0 },                                  // 2
                VInst::Ret { val: Some(v1) },                                 // 3
            ]],
            2,
        );
        let (ints, calls) = analyze(&f);
        assert_eq!(calls, vec![1]);
        assert!(ints.iter().find(|i| i.vreg == v0).unwrap().crosses_call);
        assert!(!ints.iter().find(|i| i.vreg == v1).unwrap().crosses_call);
    }

    #[test]
    fn call_args_do_not_cross_their_call() {
        let v0 = Vr::Int(0);
        let f = func(
            vec![vec![
                VInst::MovI { d: v0, imm: 1 }, // 0
                VInst::RtCall { func: RtFunc::PrintI64, imm: 0, args: vec![v0], ret: None }, // 1
                VInst::Ret { val: None },      // 2
            ]],
            1,
        );
        let (ints, _) = analyze(&f);
        assert!(!ints.iter().find(|i| i.vreg == v0).unwrap().crosses_call);
    }

    #[test]
    fn loop_keeps_value_live_through_body() {
        let i = Vr::Int(0);
        let acc = Vr::Int(1);
        // b0: movi i,0; movi acc,0; jmp 1
        // b1: alu acc+=i; alui i+=1; cmpi; jcc->1; jmp 2
        // b2: ret acc
        let f = func(
            vec![
                vec![
                    VInst::MovI { d: i, imm: 0 },
                    VInst::MovI { d: acc, imm: 0 },
                    VInst::Jmp { bb: 1 },
                ],
                vec![
                    VInst::Alu { op: AluOp::Add, d: acc, a: acc, b: i },
                    VInst::AluI { op: AluOp::Add, d: i, a: i, imm: 1 },
                    VInst::CmpI { a: i, imm: 10 },
                    VInst::Jcc { cc: Cc::Lt, bb: 1 },
                    VInst::Jmp { bb: 2 },
                ],
                vec![VInst::Ret { val: Some(acc) }],
            ],
            2,
        );
        let (ints, _) = analyze(&f);
        let ii = ints.iter().find(|x| x.vreg == i).unwrap();
        let ia = ints.iter().find(|x| x.vreg == acc).unwrap();
        // Both must be live through the whole loop body (block 1 spans 3..8).
        assert!(ii.start <= 3 && ii.end >= 8, "i interval {ii:?}");
        assert!(ia.start <= 3 && ia.end >= 9, "acc interval {ia:?}");
    }
}
