//! Linear-scan register allocation (Poletto/Sarkar style) with spilling.
//!
//! Values that live across calls only take callee-saved registers (or
//! spill), so the finalizer's ABI expansion never has to save caller-saved
//! state around calls. Two registers per class are reserved as assembler
//! scratch for spill reloads and parallel-copy cycle breaking.

use crate::liveness::Interval;
use crate::vcode::{VFunc, Vr};
use std::collections::HashMap;

/// Reserved integer scratch registers (never allocated).
pub const INT_SCRATCH: [u8; 2] = [7, 8];
/// Reserved float scratch registers (never allocated).
pub const FLT_SCRATCH: [u8; 2] = [6, 7];

/// Allocatable caller-saved GPRs.
pub const INT_CALLER: [u8; 7] = [0, 1, 2, 3, 4, 5, 6];
/// Allocatable callee-saved GPRs.
pub const INT_CALLEE: [u8; 5] = [9, 10, 11, 12, 13];
/// Allocatable caller-saved FPRs (all of them — x64 SysV has no
/// callee-saved XMM registers, so float values crossing calls must spill).
pub const FLT_CALLER: [u8; 14] = [0, 1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 13, 14, 15];
/// Allocatable callee-saved FPRs: none, as on x64 SysV.
pub const FLT_CALLEE: [u8; 0] = [];

/// Where a virtual register lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical register of the vreg's class.
    Reg(u8),
    /// A frame spill slot (8 bytes), numbered from 0.
    Slot(u32),
}

/// Allocation result for one function.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// vreg -> location.
    pub locs: HashMap<Vr, Loc>,
    /// Number of spill slots used.
    pub n_slots: u32,
    /// Callee-saved GPRs written by this function (must be saved).
    pub used_callee_int: Vec<u8>,
    /// Callee-saved FPRs written by this function.
    pub used_callee_flt: Vec<u8>,
}

impl Allocation {
    /// Location of a vreg (must have been allocated).
    pub fn loc(&self, v: Vr) -> Loc {
        *self.locs.get(&v).unwrap_or_else(|| panic!("unallocated vreg {v:?}"))
    }
}

fn is_callee(v: Vr, reg: u8) -> bool {
    if v.is_int() {
        INT_CALLEE.contains(&reg)
    } else {
        FLT_CALLEE.contains(&reg)
    }
}

/// Run linear scan over the intervals of `f`.
pub fn allocate(f: &VFunc, intervals: &[Interval], _call_sites: &[u32]) -> Allocation {
    let mut alloc = Allocation::default();

    // One scan per register class keeps pool bookkeeping simple.
    for int_class in [true, false] {
        let caller: &[u8] = if int_class { &INT_CALLER } else { &FLT_CALLER };
        let callee: &[u8] = if int_class { &INT_CALLEE } else { &FLT_CALLEE };
        let mut free_caller: Vec<u8> = caller.to_vec();
        let mut free_callee: Vec<u8> = callee.to_vec();
        // Active intervals: (end, vreg, reg), kept sorted by end.
        let mut active: Vec<(u32, Vr, u8)> = Vec::new();

        for iv in intervals.iter().filter(|i| i.vreg.is_int() == int_class) {
            // Expire finished intervals.
            active.retain(|&(end, _, reg)| {
                if end <= iv.start {
                    if callee.contains(&reg) {
                        free_callee.push(reg);
                    } else {
                        free_caller.push(reg);
                    }
                    false
                } else {
                    true
                }
            });

            // Pick a register respecting the cross-call constraint.
            let reg = if iv.crosses_call {
                free_callee.pop()
            } else {
                free_caller.pop().or_else(|| free_callee.pop())
            };

            match reg {
                Some(r) => {
                    alloc.locs.insert(iv.vreg, Loc::Reg(r));
                    let pos = active.partition_point(|&(e, _, _)| e <= iv.end);
                    active.insert(pos, (iv.end, iv.vreg, r));
                }
                None => {
                    // Spill: evict the active interval with the furthest end
                    // whose register we are allowed to use, if it outlives us.
                    let victim = active
                        .iter()
                        .rposition(|&(_, _, r)| !iv.crosses_call || callee.contains(&r));
                    match victim {
                        Some(vi) if active[vi].0 > iv.end => {
                            let (vend, vreg, r) = active.remove(vi);
                            // Safety: the victim may itself cross a call; its
                            // register must remain legal for us and the slot
                            // legal for it — slots are always legal.
                            let _ = vend;
                            let slot = alloc.n_slots;
                            alloc.n_slots += 1;
                            alloc.locs.insert(vreg, Loc::Slot(slot));
                            alloc.locs.insert(iv.vreg, Loc::Reg(r));
                            let pos = active.partition_point(|&(e, _, _)| e <= iv.end);
                            active.insert(pos, (iv.end, iv.vreg, r));
                        }
                        _ => {
                            let slot = alloc.n_slots;
                            alloc.n_slots += 1;
                            alloc.locs.insert(iv.vreg, Loc::Slot(slot));
                        }
                    }
                }
            }
        }
    }

    // Record which callee-saved registers were actually handed out.
    for (&v, &loc) in &alloc.locs {
        if let Loc::Reg(r) = loc {
            if is_callee(v, r) {
                if v.is_int() {
                    if !alloc.used_callee_int.contains(&r) {
                        alloc.used_callee_int.push(r);
                    }
                } else if !alloc.used_callee_flt.contains(&r) {
                    alloc.used_callee_flt.push(r);
                }
            }
        }
    }
    alloc.used_callee_int.sort_unstable();
    alloc.used_callee_flt.sort_unstable();
    let _ = f;
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(n: u32, start: u32, end: u32, crosses: bool) -> Interval {
        Interval { vreg: Vr::Int(n), start, end, crosses_call: crosses }
    }

    fn empty_func() -> VFunc {
        VFunc {
            name: "t".into(),
            blocks: vec![],
            n_int: 0,
            n_flt: 0,
            alloca_words: vec![],
            params: vec![],
        }
    }

    #[test]
    fn disjoint_intervals_share_a_register_pool() {
        let ints = vec![iv(0, 0, 2, false), iv(1, 2, 4, false), iv(2, 4, 6, false)];
        let a = allocate(&empty_func(), &ints, &[]);
        for k in 0..3 {
            assert!(matches!(a.loc(Vr::Int(k)), Loc::Reg(_)));
        }
        assert_eq!(a.n_slots, 0);
    }

    #[test]
    fn no_two_overlapping_intervals_share_a_register() {
        // 20 all-overlapping intervals: 12 allocatable int regs -> 8 spills.
        let ints: Vec<Interval> = (0..20).map(|k| iv(k, 0, 100, false)).collect();
        let a = allocate(&empty_func(), &ints, &[]);
        let mut regs = std::collections::HashSet::new();
        let mut slots = 0;
        for k in 0..20 {
            match a.loc(Vr::Int(k)) {
                Loc::Reg(r) => assert!(regs.insert(r), "register {r} assigned twice"),
                Loc::Slot(_) => slots += 1,
            }
        }
        assert_eq!(regs.len(), 12);
        assert_eq!(slots, 8);
        assert_eq!(a.n_slots, 8);
    }

    #[test]
    fn cross_call_values_get_callee_saved_or_spill() {
        let ints: Vec<Interval> = (0..8).map(|k| iv(k, 0, 100, true)).collect();
        let a = allocate(&empty_func(), &ints, &[50]);
        for k in 0..8 {
            match a.loc(Vr::Int(k)) {
                Loc::Reg(r) => {
                    assert!(INT_CALLEE.contains(&r), "cross-call vreg in caller-saved r{r}")
                }
                Loc::Slot(_) => {}
            }
        }
        // 5 callee-saved regs, 8 candidates -> exactly 3 spills.
        assert_eq!(a.n_slots, 3);
        assert_eq!(a.used_callee_int.len(), 5);
    }

    #[test]
    fn spill_prefers_furthest_end() {
        // Fill all 12 registers with long intervals, then a short one
        // arrives: the furthest-ending victim is evicted in its favor.
        let mut ints: Vec<Interval> = (0..12).map(|k| iv(k, 0, 1000 + k, false)).collect();
        ints.push(iv(99, 5, 10, false));
        ints.sort_by_key(|i| i.start);
        let a = allocate(&empty_func(), &ints, &[]);
        assert!(matches!(a.loc(Vr::Int(99)), Loc::Reg(_)));
        assert!(matches!(a.loc(Vr::Int(11)), Loc::Slot(_)), "furthest interval spilled");
    }

    #[test]
    fn classes_are_independent() {
        let mut ints: Vec<Interval> = (0..12).map(|k| iv(k, 0, 100, false)).collect();
        ints.extend((0..14).map(|k| Interval {
            vreg: Vr::Flt(k),
            start: 0,
            end: 100,
            crosses_call: false,
        }));
        ints.sort_by_key(|i| (i.start, i.end, i.vreg));
        let a = allocate(&empty_func(), &ints, &[]);
        assert_eq!(a.n_slots, 0, "both files fit simultaneously");
    }
}
