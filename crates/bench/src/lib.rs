//! Criterion benches for the REFINE reproduction (see benches/).
