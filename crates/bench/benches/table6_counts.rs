//! Table 6 harness: the per-trial hot path (run + classify) that the
//! 44,856-experiment sweep is made of, per tool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_campaign::{classify, format_events};
use refine_machine::OutEvent;

fn bench_trial_and_classify(c: &mut Criterion) {
    let module = refine_benchmarks::by_name("DC").unwrap().module();
    let mut g = c.benchmark_group("table6_trial_hot_path");
    g.sample_size(20);
    for tool in Tool::all() {
        let prepared = PreparedTool::prepare(&module, tool);
        g.bench_with_input(BenchmarkId::new("DC", tool.name()), &prepared, |b, prep| {
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                let target = 1 + (k * 7919) % prep.population;
                let r = prep.run_trial(target, k);
                classify(&prep.golden, &r)
            })
        });
    }
    g.finish();

    // Classification/formatting microbenches.
    let events: Vec<OutEvent> = (0..32)
        .map(|i| {
            if i % 3 == 0 {
                OutEvent::I64(i as i64 * 1001)
            } else {
                OutEvent::F64(i as f64 * 0.37)
            }
        })
        .collect();
    c.bench_function("table6/format_events_32", |b| {
        b.iter(|| format_events(std::hint::black_box(&events)))
    });
}

criterion_group!(benches, bench_trial_and_classify);
criterion_main!(benches);
