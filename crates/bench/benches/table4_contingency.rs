//! Table 4 harness: building the example contingency table end to end
//! (campaign -> counts -> table) on AMG2013, the paper's example app.

use criterion::{criterion_group, criterion_main, Criterion};
use refine_campaign::campaign::{run_campaign_prepared, CampaignConfig};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_stats::chi2_contingency;

fn bench_table4(c: &mut Criterion) {
    let module = refine_benchmarks::by_name("AMG2013").unwrap().module();
    let llfi = PreparedTool::prepare(&module, Tool::Llfi);
    let pinfi = PreparedTool::prepare(&module, Tool::Pinfi);
    let cfg = CampaignConfig { trials: 30, seed: 42, jobs: 0, checkpoint: true, ..CampaignConfig::default() };

    // Print the reproduced Table 4 once.
    let lr = run_campaign_prepared(&llfi, &cfg);
    let pr = run_campaign_prepared(&pinfi, &cfg);
    let chi = chi2_contingency(&[lr.counts.row(), pr.counts.row()]);
    println!(
        "[table4] AMG2013 (n={}): LLFI {:?} vs PINFI {:?} -> chi2={:.2}, p={:.4}",
        cfg.trials, lr.counts, pr.counts, chi.statistic, chi.p_value
    );

    let mut g = c.benchmark_group("table4_contingency");
    g.sample_size(10);
    g.bench_function("amg2013_llfi_vs_pinfi_30trials", |b| {
        b.iter(|| {
            let lr = run_campaign_prepared(&llfi, &cfg);
            let pr = run_campaign_prepared(&pinfi, &cfg);
            chi2_contingency(&[lr.counts.row(), pr.counts.row()])
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
