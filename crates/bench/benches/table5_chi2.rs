//! Table 5 harness: chi-squared testing of outcome tables.
//!
//! Benches the statistical machinery itself (contingency tests over
//! campaign-sized tables) and, once, reproduces the Table 5 decision for a
//! mini-sweep of one app.

use criterion::{criterion_group, criterion_main, Criterion};
use refine_campaign::campaign::{run_campaign, CampaignConfig};
use refine_campaign::tools::Tool;
use refine_stats::chi2_contingency;

fn bench_chi2(c: &mut Criterion) {
    // Paper Table 4 data as the microbench payload.
    let llfi = vec![395u64, 168, 505];
    let pinfi = vec![269u64, 70, 729];
    c.bench_function("table5/chi2_contingency_2x3", |b| {
        b.iter(|| chi2_contingency(std::hint::black_box(&[llfi.clone(), pinfi.clone()])))
    });

    // Three-row (all-tool) tables.
    let refine = vec![254u64, 87, 727];
    c.bench_function("table5/chi2_contingency_3x3", |b| {
        b.iter(|| {
            chi2_contingency(std::hint::black_box(&[
                llfi.clone(),
                refine.clone(),
                pinfi.clone(),
            ]))
        })
    });

    // One real mini Table 5 row, printed for the record.
    let m = refine_benchmarks::by_name("miniFE").unwrap().module();
    let cfg = CampaignConfig { trials: 120, seed: 99, jobs: 0, checkpoint: true, ..CampaignConfig::default() };
    let l = run_campaign(&m, Tool::Llfi, &cfg);
    let r = run_campaign(&m, Tool::Refine, &cfg);
    let p = run_campaign(&m, Tool::Pinfi, &cfg);
    let chi_l = chi2_contingency(&[l.counts.row(), p.counts.row()]);
    let chi_r = chi2_contingency(&[r.counts.row(), p.counts.row()]);
    println!(
        "[table5] miniFE: LLFI vs PINFI p={:.4} ({}), REFINE vs PINFI p={:.4} ({})",
        chi_l.p_value,
        if chi_l.significant(0.05) { "reject" } else { "accept" },
        chi_r.p_value,
        if chi_r.significant(0.05) { "reject" } else { "accept" },
    );
}

criterion_group!(benches, bench_chi2);
criterion_main!(benches);
