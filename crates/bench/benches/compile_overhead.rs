//! Compile-time overhead of the three instrumentation flows (the paper
//! notes compilation happens once per campaign and excludes it from the
//! Figure 5 runtime comparison; this bench quantifies that one-off cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refine_core::FiOptions;
use refine_ir::passes::OptLevel;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_overhead");
    g.sample_size(10);
    for app in ["HPCCG-1.0", "BT"] {
        let module = refine_benchmarks::by_name(app).unwrap().module();
        g.bench_with_input(BenchmarkId::new("clean", app), &module, |b, m| {
            b.iter(|| refine_core::compile_with_fi(m, OptLevel::O2, &FiOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("refine_pass", app), &module, |b, m| {
            b.iter(|| refine_core::compile_with_fi(m, OptLevel::O2, &FiOptions::all()))
        });
        g.bench_with_input(BenchmarkId::new("llfi_pass", app), &module, |b, m| {
            b.iter(|| {
                refine_llfi::compile_with_llfi(m, OptLevel::O2, &refine_llfi::LlfiOptions::default())
            })
        });
    }
    g.finish();

    // Binary-size consequence of instrumentation, printed once.
    let m = refine_benchmarks::by_name("HPCCG-1.0").unwrap().module();
    let clean = refine_core::compile_with_fi(&m, OptLevel::O2, &FiOptions::default());
    let refined = refine_core::compile_with_fi(&m, OptLevel::O2, &FiOptions::all());
    let (llfid, _) =
        refine_llfi::compile_with_llfi(&m, OptLevel::O2, &refine_llfi::LlfiOptions::default());
    println!(
        "[compile] HPCCG static instructions: clean={}, REFINE={}, LLFI={}",
        clean.binary.text.len(),
        refined.binary.text.len(),
        llfid.binary.text.len()
    );
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
