//! `trial_throughput` — trials/sec for a fixed short sweep with checkpoint
//! fast-forward on vs off, tracking the perf trajectory of the trial loop.
//!
//! Artifacts are pre-prepared outside the timed region so the measurement
//! isolates trial execution (prepare cost is `compile_overhead`'s subject;
//! the checkpoint-store build rides inside prepare). The on/off sweeps must
//! produce identical outcome tables — the bench doubles as an equivalence
//! check and **fails** on any mismatch.
//!
//! Smoke mode (`REFINE_SMOKE=1`, used by ci.sh) shrinks the sweep; either
//! way the result lands in `BENCH_trials.json` at the repo root:
//! trials/sec for both modes and the on/off speedup.

use refine_campaign::engine::{
    run_sweep, ArtifactCache, ArtifactSource, EngineCampaign, EngineConfig, EngineHooks,
    DEFAULT_BATCH,
};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_core::CheckpointOptions;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

fn specs(apps: &[&str], ckpt: &CheckpointOptions) -> Vec<EngineCampaign> {
    apps.iter()
        .flat_map(|app| {
            let module = Arc::new(refine_benchmarks::by_name(app).unwrap().module());
            Tool::all().into_iter().map(move |tool| EngineCampaign {
                app: app.to_string(),
                tool,
                source: ArtifactSource::Prepared(Arc::new(PreparedTool::prepare_opt(
                    &module, tool, ckpt,
                ))),
            })
        })
        .collect()
}

/// One comparable outcome row: (app, crash, soc, benign, total cycles).
type OutcomeRow = (String, u64, u64, u64, u64);

/// Run the sweep `reps` times and return (best trials/sec, outcome table).
fn measure(specs: &[EngineCampaign], cfg: &EngineConfig, reps: usize) -> (f64, Vec<OutcomeRow>) {
    let total = specs.len() as u64 * cfg.trials;
    let mut best = 0.0f64;
    let mut table = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run_sweep(specs, cfg, &ArtifactCache::new(), &EngineHooks::default());
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        best = best.max(total as f64 / secs);
        table = specs
            .iter()
            .zip(&report.results)
            .map(|(s, r)| {
                (s.app.clone(), r.counts.crash, r.counts.soc, r.counts.benign, r.total_cycles)
            })
            .collect();
    }
    (best, table)
}

fn main() {
    let smoke = std::env::var("REFINE_SMOKE").is_ok();
    let apps: &[&str] = if smoke { &["HPCCG-1.0"] } else { &["HPCCG-1.0", "CoMD"] };
    let trials = if smoke { 24 } else { 120 };
    let reps = if smoke { 1 } else { 3 };
    let cfg = EngineConfig {
        trials,
        seed: 0x7B15,
        jobs: 1,
        batch: DEFAULT_BATCH,
        checkpoint: true,
    };

    let specs_on = specs(apps, &CheckpointOptions::default());
    let specs_off = specs(apps, &CheckpointOptions::disabled());

    let (tps_on, table_on) = measure(&specs_on, &cfg, reps);
    let (tps_off, table_off) =
        measure(&specs_off, &EngineConfig { checkpoint: false, ..cfg }, reps);

    assert_eq!(
        table_on, table_off,
        "checkpoint on/off sweeps diverged — fast-forward equivalence broken"
    );

    let speedup = tps_on / tps_off.max(1e-9);
    println!(
        "[trial_throughput] apps={} trials={trials} jobs=1: \
         on={tps_on:.0} trials/s, off={tps_off:.0} trials/s, speedup={speedup:.2}x",
        apps.len(),
    );

    let report = serde::Value::Map(vec![
        ("bench".to_string(), "trial_throughput".to_string().to_value()),
        ("smoke".to_string(), smoke.to_value()),
        ("apps".to_string(), (apps.len() as u64).to_value()),
        ("tools".to_string(), 3u64.to_value()),
        ("trials_per_campaign".to_string(), trials.to_value()),
        ("jobs".to_string(), 1u64.to_value()),
        ("trials_per_sec_checkpoint_on".to_string(), tps_on.to_value()),
        ("trials_per_sec_checkpoint_off".to_string(), tps_off.to_value()),
        ("speedup_on_vs_off".to_string(), speedup.to_value()),
        ("results_identical".to_string(), true.to_value()),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trials.json");
    std::fs::write(path, serde::json::to_string_pretty(&report) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("[trial_throughput] wrote {path}");
}
