//! `trial_throughput` — trials/sec for a fixed short sweep across the three
//! trial-execution modes, tracking the perf trajectory of the trial loop:
//!
//! * **convergence on** — checkpoint fast-forward + post-injection
//!   golden-convergence early exit (the default path);
//! * **convergence off** — checkpoint fast-forward only (`--no-convergence`,
//!   the previous baseline);
//! * **checkpoint off** — the cold full-execution path (`--no-checkpoint`)
//!   under the superblock-fused engine;
//! * **checkpoint off, step engine** — the same cold path on the
//!   per-instruction exact interpreter (`--engine step`), isolating the
//!   superblock engine's speedup where trials execute end to end.
//!
//! Artifacts are pre-prepared outside the timed region so the measurement
//! isolates trial execution (prepare cost is `compile_overhead`'s subject;
//! the checkpoint-store build rides inside prepare). All three sweeps must
//! produce identical outcome tables — the bench doubles as an equivalence
//! check and **fails** on any mismatch.
//!
//! Smoke mode (`REFINE_SMOKE=1`, used by ci.sh) shrinks the sweep; either
//! way the result lands in `BENCH_trials.json` at the repo root: trials/sec
//! for each mode, the pairwise speedups, and the convergence hit rate.

use refine_campaign::engine::{
    run_sweep, ArtifactCache, ArtifactSource, EngineCampaign, EngineConfig, EngineHooks,
    DEFAULT_BATCH,
};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_core::{CheckpointOptions, ExecEngine};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

fn specs(apps: &[&str], ckpt: &CheckpointOptions) -> Vec<EngineCampaign> {
    apps.iter()
        .flat_map(|app| {
            let module = Arc::new(refine_benchmarks::by_name(app).unwrap().module());
            Tool::all().into_iter().map(move |tool| EngineCampaign {
                app: app.to_string(),
                tool,
                source: ArtifactSource::Prepared(Arc::new(PreparedTool::prepare_opt(
                    &module, tool, ckpt,
                ))),
            })
        })
        .collect()
}

/// One comparable outcome row: (app, crash, soc, benign, total cycles).
type OutcomeRow = (String, u64, u64, u64, u64);

/// One mode's measurement: best trials/sec, outcome table, convergence hits.
struct Measured {
    tps: f64,
    table: Vec<OutcomeRow>,
    conv_hits: u64,
}

/// Run the sweep `reps` times, keeping the best throughput.
fn measure(specs: &[EngineCampaign], cfg: &EngineConfig, reps: usize) -> Measured {
    let total = specs.len() as u64 * cfg.trials;
    let mut m = Measured { tps: 0.0, table: Vec::new(), conv_hits: 0 };
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run_sweep(specs, cfg, &ArtifactCache::new(), &EngineHooks::default());
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        m.tps = m.tps.max(total as f64 / secs);
        m.table = specs
            .iter()
            .zip(&report.results)
            .map(|(s, r)| {
                (s.app.clone(), r.counts.crash, r.counts.soc, r.counts.benign, r.total_cycles)
            })
            .collect();
        m.conv_hits = report.stats.iter().map(|cs| cs.conv_hits).sum();
    }
    m
}

fn main() {
    let smoke = std::env::var("REFINE_SMOKE").is_ok();
    let apps: &[&str] = if smoke { &["HPCCG-1.0"] } else { &["HPCCG-1.0", "CoMD"] };
    let trials = if smoke { 24 } else { 120 };
    let reps = if smoke { 1 } else { 3 };
    let cfg = EngineConfig {
        trials,
        seed: 0x7B15,
        jobs: 1,
        batch: DEFAULT_BATCH,
        checkpoint: true,
        convergence: true,
        checkpoint_interval: refine_machine::CheckpointConfig::default().interval,
        engine: ExecEngine::Superblock,
    };
    let total = apps.len() as u64 * 3 * trials;

    let ckpt_conv = CheckpointOptions::default();
    let ckpt_only = CheckpointOptions { convergence: false, ..CheckpointOptions::default() };
    let specs_conv = specs(apps, &ckpt_conv);
    let specs_ckpt = specs(apps, &ckpt_only);
    let specs_off = specs(apps, &CheckpointOptions::disabled());

    let conv = measure(&specs_conv, &cfg, reps);
    let ckpt = measure(&specs_ckpt, &EngineConfig { convergence: false, ..cfg }, reps);
    let off = measure(
        &specs_off,
        &EngineConfig { checkpoint: false, convergence: false, ..cfg },
        reps,
    );
    let off_step = measure(
        &specs_off,
        &EngineConfig {
            checkpoint: false,
            convergence: false,
            engine: ExecEngine::Step,
            ..cfg
        },
        reps,
    );

    assert_eq!(
        conv.table, ckpt.table,
        "convergence on/off sweeps diverged — golden-splice equivalence broken"
    );
    assert_eq!(
        ckpt.table, off.table,
        "checkpoint on/off sweeps diverged — fast-forward equivalence broken"
    );
    assert_eq!(
        off.table, off_step.table,
        "superblock/step cold sweeps diverged — engine equivalence broken"
    );

    let speedup_ckpt = ckpt.tps / off.tps.max(1e-9);
    let speedup_conv = conv.tps / ckpt.tps.max(1e-9);
    let speedup_sb_cold = off.tps / off_step.tps.max(1e-9);
    let conv_hit_rate = conv.conv_hits as f64 / total.max(1) as f64;
    println!(
        "[trial_throughput] apps={} trials={trials} jobs=1: \
         conv={:.0} trials/s, ckpt={:.0} trials/s, off={:.0} trials/s, \
         off-step={:.0} trials/s, conv/ckpt={speedup_conv:.2}x, \
         ckpt/off={speedup_ckpt:.2}x, superblock/step (cold)={speedup_sb_cold:.2}x, \
         conv hit rate={:.1}%",
        apps.len(),
        conv.tps,
        ckpt.tps,
        off.tps,
        off_step.tps,
        100.0 * conv_hit_rate,
    );
    assert!(
        speedup_sb_cold >= 1.5,
        "superblock engine cold speedup {speedup_sb_cold:.2}x below the 1.5x floor"
    );

    let report = serde::Value::Map(vec![
        ("bench".to_string(), "trial_throughput".to_string().to_value()),
        ("smoke".to_string(), smoke.to_value()),
        ("apps".to_string(), (apps.len() as u64).to_value()),
        ("tools".to_string(), 3u64.to_value()),
        ("trials_per_campaign".to_string(), trials.to_value()),
        ("jobs".to_string(), 1u64.to_value()),
        ("trials_per_sec_convergence_on".to_string(), conv.tps.to_value()),
        ("trials_per_sec_convergence_off".to_string(), ckpt.tps.to_value()),
        ("trials_per_sec_checkpoint_on".to_string(), ckpt.tps.to_value()),
        ("trials_per_sec_checkpoint_off".to_string(), off.tps.to_value()),
        ("trials_per_sec_superblock_cold".to_string(), off.tps.to_value()),
        ("trials_per_sec_step_cold".to_string(), off_step.tps.to_value()),
        ("speedup_convergence_vs_checkpoint".to_string(), speedup_conv.to_value()),
        ("speedup_on_vs_off".to_string(), speedup_ckpt.to_value()),
        ("superblock_speedup_cold".to_string(), speedup_sb_cold.to_value()),
        ("conv_hit_rate".to_string(), conv_hit_rate.to_value()),
        ("results_identical".to_string(), true.to_value()),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trials.json");
    std::fs::write(path, serde::json::to_string_pretty(&report) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("[trial_throughput] wrote {path}");
}
