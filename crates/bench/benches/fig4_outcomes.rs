//! Figure 4 harness: outcome-distribution campaigns per (app, tool).
//!
//! Criterion measures the wall-clock throughput of reduced campaigns (the
//! real 1,068-trial sweep is `refine-experiments fig4 --trials 1068`); as a
//! side effect the bench prints the reproduced Figure 4 outcome mix for the
//! benched apps so the shape is visible in bench logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refine_campaign::campaign::{run_campaign_prepared, CampaignConfig};
use refine_campaign::tools::{PreparedTool, Tool};

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_outcomes");
    g.sample_size(10);
    for app in ["HPCCG-1.0", "CoMD"] {
        let module = refine_benchmarks::by_name(app).unwrap().module();
        for tool in Tool::all() {
            let prepared = PreparedTool::prepare(&module, tool);
            let cfg = CampaignConfig { trials: 40, seed: 1, jobs: 0, checkpoint: true, ..CampaignConfig::default() };
            // Print the sampled outcome mix once, for the record.
            let r = run_campaign_prepared(&prepared, &cfg);
            let p = r.counts.percentages();
            println!(
                "[fig4] {app:10} {:8} crash={:5.1}% soc={:5.1}% benign={:5.1}%",
                tool.name(),
                p[0],
                p[1],
                p[2]
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{app}/{}", tool.name()), cfg.trials),
                &prepared,
                |b, prep| b.iter(|| run_campaign_prepared(prep, &cfg)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
