//! Worker-scaling harness for the sharded campaign engine: the same sweep
//! at 1, 2, 4 and 8 jobs.
//!
//! Criterion measures end-to-end sweep wall clock per jobs count; the bench
//! also prints the engine's own accounting (busy/wall/speedup, cache hit
//! rate) so the scaling curve is visible in bench logs. On a multi-core
//! host the wall clock shrinks towards `busy / jobs`; on a single hardware
//! thread all job counts necessarily measure alike — the printed per-jobs
//! results double as a determinism check either way (identical outcome
//! counts at every jobs count).
//!
//! Each jobs count is measured under both trial engines (`superblock` /
//! `step`); the determinism check spans engines too, so any cross-engine
//! divergence fails the bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refine_campaign::engine::{
    run_sweep, ArtifactCache, ArtifactSource, EngineCampaign, EngineConfig, EngineHooks,
    DEFAULT_BATCH,
};
use refine_campaign::tools::{PreparedTool, Tool};
use refine_core::ExecEngine;
use std::sync::Arc;

const TRIALS: u64 = 60;
const SEED: u64 = 0x5CA1E;

fn sweep_specs() -> Vec<EngineCampaign> {
    ["HPCCG-1.0", "CoMD"]
        .iter()
        .flat_map(|app| {
            let module = Arc::new(refine_benchmarks::by_name(app).unwrap().module());
            Tool::all().into_iter().map(move |tool| EngineCampaign {
                app: app.to_string(),
                tool,
                // Pre-prepare so the bench isolates trial scheduling, not
                // compilation (compile cost is compile_overhead's subject).
                source: ArtifactSource::Prepared(Arc::new(PreparedTool::prepare(&module, tool))),
            })
        })
        .collect()
}

fn bench_engine_scaling(c: &mut Criterion) {
    let specs = sweep_specs();
    let mut g = c.benchmark_group("engine_scaling");
    g.sample_size(10);
    let mut baseline: Option<(u64, u64, u64)> = None;
    for engine in [ExecEngine::Superblock, ExecEngine::Step] {
        for jobs in [1usize, 2, 4, 8] {
            let cfg = EngineConfig {
                trials: TRIALS,
                seed: SEED,
                jobs,
                batch: DEFAULT_BATCH,
                checkpoint: true,
                convergence: true,
                checkpoint_interval: refine_machine::CheckpointConfig::default().interval,
                engine,
            };
            // One instrumented run for the record (and the determinism
            // check, which spans jobs counts *and* engines).
            let report = run_sweep(&specs, &cfg, &ArtifactCache::new(), &EngineHooks::default());
            let crashes: u64 = report.results.iter().map(|r| r.counts.crash).sum();
            let socs: u64 = report.results.iter().map(|r| r.counts.soc).sum();
            let cycles: u64 = report.results.iter().map(|r| r.total_cycles).sum();
            println!(
                "[engine] engine={} jobs={jobs} wall={:8.2}ms busy={:8.2}ms speedup={:.2}x \
                 crash={crashes} soc={socs}",
                engine.name(),
                report.wall_ns as f64 / 1e6,
                report.busy_ns as f64 / 1e6,
                report.speedup(),
            );
            match baseline {
                None => baseline = Some((crashes, socs, cycles)),
                Some(b) => assert_eq!(
                    b,
                    (crashes, socs, cycles),
                    "engine={} jobs={jobs} changed campaign results — determinism violated",
                    engine.name()
                ),
            }
            let id = BenchmarkId::new(engine.name(), jobs);
            g.bench_with_input(id, &cfg, |b, cfg| {
                b.iter(|| run_sweep(&specs, cfg, &ArtifactCache::new(), &EngineHooks::default()))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
