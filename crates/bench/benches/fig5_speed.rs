//! Figure 5 harness: per-tool fault-injection trial latency.
//!
//! Criterion measures real wall-clock per single trial for each tool on
//! each of several apps; the printed summary shows the simulated-cycle
//! normalization (the paper's metric), where LLFI is the clear loser and
//! REFINE tracks PINFI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refine_campaign::tools::{PreparedTool, Tool};

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_trial_latency");
    g.sample_size(20);
    for app in ["HPCCG-1.0", "XSBench", "EP"] {
        let module = refine_benchmarks::by_name(app).unwrap().module();
        let mut cycles = Vec::new();
        for tool in Tool::all() {
            let prepared = PreparedTool::prepare(&module, tool);
            let mid = prepared.population / 2;
            // Record simulated cycles of a representative mid-run trial.
            let r = prepared.run_trial(mid, 7);
            cycles.push((tool.name(), r.cycles));
            g.bench_with_input(
                BenchmarkId::new(app, tool.name()),
                &prepared,
                |b, prep| {
                    let mut k = 0u64;
                    b.iter(|| {
                        k += 1;
                        prep.run_trial(mid, k)
                    })
                },
            );
        }
        let pinfi = cycles[2].1 as f64;
        println!(
            "[fig5] {app:10} sim-cycles/trial: LLFI {:.2}x, REFINE {:.2}x of PINFI",
            cycles[0].1 as f64 / pinfi,
            cycles[1].1 as f64 / pinfi
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
