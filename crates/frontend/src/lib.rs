#![warn(missing_docs)]

//! `refine-frontend` — MiniLang, the small C-like language the benchmark
//! programs are written in.
//!
//! This crate plays the role of Clang in the paper's toolchain: it parses a
//! deterministic, single-threaded numerical program and lowers it to
//! `refine-ir`, after which the shared optimizer and backend take over. The
//! language is just big enough for the 14 HPC mini-apps: 64-bit integers,
//! doubles, global and stack arrays, functions, loops, and the libm/print
//! intrinsics.
//!
//! ```
//! let src = r#"
//!     fn main() {
//!         let s = 0;
//!         for (i = 1; i <= 10; i = i + 1) { s = s + i; }
//!         print_i(s);
//!         return 0;
//!     }
//! "#;
//! let module = refine_frontend::compile_source(src).unwrap();
//! let out = refine_ir::interp::Interp::new(&module, 100_000).run().unwrap();
//! assert_eq!(out.output, vec![refine_ir::interp::OutEvent::I64(55)]);
//! ```
//!
//! ## Language sketch
//!
//! ```text
//! var seed;             // global i64 scalar (zero-initialized)
//! var hist[64];         // global i64 array
//! fvar grid[1024];      // global f64 array
//!
//! fn lcg() { seed = (seed * 1103515245 + 12345) % 2147483648; return seed; }
//!
//! fn axpy(a: float, n) : float {
//!     let s: float = 0.0;
//!     for (i = 0; i < n; i = i + 1) { s = s + a * grid[i]; }
//!     return s;
//! }
//!
//! fn main() {
//!     let x = farray(16);          // stack array of f64
//!     x[0] = sqrt(2.0);
//!     if (x[0] > 1.0) { print_f(x[0]); }
//!     print_s("done");
//!     return 0;
//! }
//! ```
//!
//! `&&`/`||` are *non-short-circuit* (both sides always evaluate), matching
//! how the benchmarks use them. `int(e)` / `float(e)` convert explicitly;
//! mixed arithmetic promotes to float implicitly.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use lexer::{lex, Token, TokenKind};
pub use lower::lower_program;
pub use parser::parse;

/// A frontend diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for FrontError {}

/// Compile MiniLang source to a verified IR module.
pub fn compile_source(src: &str) -> Result<refine_ir::Module, FrontError> {
    use refine_telemetry::{Phase, Span};
    let tokens = {
        let _s = Span::enter(Phase::Lex);
        lex(src)?
    };
    let prog = {
        let _s = Span::enter(Phase::Parse);
        parse(&tokens)?
    };
    let _s = Span::enter(Phase::LowerIr);
    let module = lower_program(&prog)?;
    refine_ir::verify::verify_module(&module).map_err(|e| FrontError {
        line: 0,
        msg: format!("internal lowering error: {e}"),
    })?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refine_ir::interp::{Interp, OutEvent};

    fn run(src: &str) -> (i64, Vec<OutEvent>) {
        let m = compile_source(src).expect("compiles");
        let r = Interp::new(&m, 10_000_000).run().expect("runs");
        (r.exit_code, r.output)
    }

    #[test]
    fn end_to_end_sum() {
        let (code, out) = run("fn main() { let s = 0; for (i = 1; i <= 100; i = i + 1) { s = s + i; } print_i(s); return s; }");
        assert_eq!(code, 5050);
        assert_eq!(out, vec![OutEvent::I64(5050)]);
    }

    #[test]
    fn float_math() {
        let (_, out) = run("fn main() { let x: float = sqrt(16.0) + pow(2.0, 3.0); print_f(x); return 0; }");
        assert_eq!(out, vec![OutEvent::F64(12.0)]);
    }

    #[test]
    fn globals_and_functions() {
        let (code, _) = run(
            "var acc;\n\
             fn add(k) { acc = acc + k; return acc; }\n\
             fn main() { add(3); add(4); return acc; }",
        );
        assert_eq!(code, 7);
    }

    #[test]
    fn arrays_global_and_local() {
        let (code, _) = run(
            "var tbl[8];\n\
             fn main() {\n\
               let loc = array(8);\n\
               for (i = 0; i < 8; i = i + 1) { tbl[i] = i * i; loc[i] = tbl[i] + 1; }\n\
               return loc[7];\n\
             }",
        );
        assert_eq!(code, 50);
    }

    #[test]
    fn mixed_promotion_and_casts() {
        let (code, out) = run(
            "fn main() { let n = 5; let x: float = n * 1.5; print_f(x); return int(x); }",
        );
        assert_eq!(out, vec![OutEvent::F64(7.5)]);
        assert_eq!(code, 7);
    }

    #[test]
    fn error_reports_line() {
        let err = compile_source("fn main() {\n  let x = unknown_var;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("unknown"));
    }
}
