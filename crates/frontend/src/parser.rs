//! Recursive-descent parser for MiniLang.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use crate::FrontError;

/// Parse a token stream into a program.
pub fn parse(tokens: &[Token]) -> Result<Program, FrontError> {
    let mut p = Parser { toks: tokens, pos: 0 };
    p.program()
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> &TokenKind {
        let k = &self.toks[self.pos].kind;
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, FrontError> {
        Err(FrontError { line: self.line(), msg: msg.into() })
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), FrontError> {
        match self.peek() {
            TokenKind::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other:?}")),
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), TokenKind::Punct(q) if *q == p)
    }

    fn eat_ident(&mut self) -> Result<String, FrontError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), FrontError> {
        if self.at_kw(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn program(&mut self) -> Result<Program, FrontError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Ident(s) if s == "var" || s == "fvar" => {
                    let is_float = s == "fvar";
                    let line = self.line();
                    self.bump();
                    let name = self.eat_ident()?;
                    let (words, is_array) = if self.at_punct("[") {
                        self.bump();
                        let n = match self.bump().clone() {
                            TokenKind::Int(n) if n > 0 => n as u32,
                            _ => return self.err("array size must be a positive integer"),
                        };
                        self.eat_punct("]")?;
                        (n, true)
                    } else {
                        (1, false)
                    };
                    self.eat_punct(";")?;
                    prog.globals.push(GlobalDef { name, words, is_float, is_array, line });
                }
                TokenKind::Ident(s) if s == "fn" => {
                    prog.funcs.push(self.fn_def()?);
                }
                other => return self.err(format!("expected `fn`, `var` or `fvar`, found {other:?}")),
            }
        }
        Ok(prog)
    }

    fn type_ann(&mut self) -> Result<TypeAnn, FrontError> {
        let name = self.eat_ident()?;
        match name.as_str() {
            "int" => Ok(TypeAnn::Int),
            "float" => Ok(TypeAnn::Float),
            other => self.err(format!("unknown type `{other}`")),
        }
    }

    fn fn_def(&mut self) -> Result<FnDef, FrontError> {
        let line = self.line();
        self.eat_kw("fn")?;
        let name = self.eat_ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        while !self.at_punct(")") {
            if !params.is_empty() {
                self.eat_punct(",")?;
            }
            let pname = self.eat_ident()?;
            let ty = if self.at_punct(":") {
                self.bump();
                self.type_ann()?
            } else {
                TypeAnn::Int
            };
            params.push((pname, ty));
        }
        self.eat_punct(")")?;
        let ret = if self.at_punct(":") || self.at_punct("->") {
            self.bump();
            self.type_ann()?
        } else {
            TypeAnn::Int
        };
        let body = self.block()?;
        Ok(FnDef { name, params, ret, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            stmts.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, FrontError> {
        let line = self.line();
        if self.at_kw("let") {
            self.bump();
            let name = self.eat_ident()?;
            let ann = if self.at_punct(":") {
                self.bump();
                Some(self.type_ann()?)
            } else {
                None
            };
            self.eat_punct("=")?;
            // Stack arrays: `let a = array(N);` / `farray(N)`.
            if let TokenKind::Ident(f) = self.peek().clone() {
                if (f == "array" || f == "farray")
                    && matches!(self.toks.get(self.pos + 1).map(|t| &t.kind), Some(TokenKind::Punct("(")))
                {
                    self.bump();
                    self.bump();
                    let n = match self.bump().clone() {
                        TokenKind::Int(n) if n > 0 => n as u32,
                        _ => return self.err("array size must be a positive integer"),
                    };
                    self.eat_punct(")")?;
                    self.eat_punct(";")?;
                    return Ok(Stmt::LetArr(name, n, f == "farray", line));
                }
            }
            let e = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Let(name, ann, e, line));
        }
        if self.at_kw("if") {
            self.bump();
            self.eat_punct("(")?;
            let c = self.expr()?;
            self.eat_punct(")")?;
            let then = self.block()?;
            let els = if self.at_kw("else") {
                self.bump();
                if self.at_kw("if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                vec![]
            };
            return Ok(Stmt::If(c, then, els, line));
        }
        if self.at_kw("while") {
            self.bump();
            self.eat_punct("(")?;
            let c = self.expr()?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(c, body, line));
        }
        if self.at_kw("for") {
            self.bump();
            self.eat_punct("(")?;
            let init = self.simple_assign()?;
            self.eat_punct(";")?;
            let c = self.expr()?;
            self.eat_punct(";")?;
            let step = self.simple_assign()?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::For(Box::new(init), c, Box::new(step), body, line));
        }
        if self.at_kw("return") {
            self.bump();
            if self.at_punct(";") {
                self.bump();
                return Ok(Stmt::Return(None, line));
            }
            let e = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Return(Some(e), line));
        }
        if self.at_kw("print_s") {
            self.bump();
            self.eat_punct("(")?;
            let s = match self.bump().clone() {
                TokenKind::Str(s) => s,
                _ => return self.err("print_s takes a string literal"),
            };
            self.eat_punct(")")?;
            self.eat_punct(";")?;
            return Ok(Stmt::PrintStr(s, line));
        }
        // Assignment or expression statement.
        if let TokenKind::Ident(name) = self.peek().clone() {
            let next = self.toks.get(self.pos + 1).map(|t| &t.kind);
            if matches!(next, Some(TokenKind::Punct("="))) {
                self.bump();
                self.bump();
                let e = self.expr()?;
                self.eat_punct(";")?;
                return Ok(Stmt::Assign(name, e, line));
            }
            if matches!(next, Some(TokenKind::Punct("["))) {
                // Could be `a[i] = e;` or an expression like `a[i] + 1;`
                // (the latter is useless; treat `[` after ident in statement
                // position as an indexed assignment).
                self.bump();
                self.bump();
                let idx = self.expr()?;
                self.eat_punct("]")?;
                self.eat_punct("=")?;
                let e = self.expr()?;
                self.eat_punct(";")?;
                return Ok(Stmt::AssignIdx(name, idx, e, line));
            }
        }
        let e = self.expr()?;
        self.eat_punct(";")?;
        Ok(Stmt::Expr(e, line))
    }

    /// `name = expr` or `name[idx] = expr` without the trailing `;`
    /// (for-loop headers).
    fn simple_assign(&mut self) -> Result<Stmt, FrontError> {
        let line = self.line();
        let name = self.eat_ident()?;
        if self.at_punct("[") {
            self.bump();
            let idx = self.expr()?;
            self.eat_punct("]")?;
            self.eat_punct("=")?;
            let e = self.expr()?;
            return Ok(Stmt::AssignIdx(name, idx, e, line));
        }
        self.eat_punct("=")?;
        let e = self.expr()?;
        Ok(Stmt::Assign(name, e, line))
    }

    // Expression precedence (low to high):
    //   || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ; + - ; * / % ; unary
    fn expr(&mut self) -> Result<Expr, FrontError> {
        self.bin_level(0)
    }

    fn bin_level(&mut self, level: usize) -> Result<Expr, FrontError> {
        const LEVELS: [&[(&str, BinOp)]; 10] = [
            &[("||", BinOp::LOr)],
            &[("&&", BinOp::LAnd)],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[("<=", BinOp::Le), (">=", BinOp::Ge), ("<", BinOp::Lt), (">", BinOp::Gt)],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.bin_level(level + 1)?;
        loop {
            let mut matched = None;
            if let TokenKind::Punct(p) = self.peek() {
                for (sym, op) in LEVELS[level] {
                    if p == sym {
                        matched = Some(*op);
                        break;
                    }
                }
            }
            match matched {
                Some(op) => {
                    let line = self.line();
                    self.bump();
                    let rhs = self.bin_level(level + 1)?;
                    lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), line);
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, FrontError> {
        let line = self.line();
        if self.at_punct("-") {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Neg(Box::new(e), line));
        }
        if self.at_punct("!") {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Not(Box::new(e), line));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, FrontError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n, line))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::Float(x, line))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at_punct("(") {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.at_punct(")") {
                        if !args.is_empty() {
                            self.eat_punct(",")?;
                        }
                        args.push(self.expr()?);
                    }
                    self.eat_punct(")")?;
                    return Ok(Expr::Call(name, args, line));
                }
                if self.at_punct("[") {
                    self.bump();
                    let idx = self.expr()?;
                    self.eat_punct("]")?;
                    return Ok(Expr::Index(name, Box::new(idx), line));
                }
                Ok(Expr::Var(name, line))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals_and_fn() {
        let p = parse_ok("var seed; fvar grid[64]; fn main() { return 0; }");
        assert_eq!(p.globals.len(), 2);
        assert!(p.globals[1].is_float && p.globals[1].is_array);
        assert_eq!(p.globals[1].words, 64);
        assert_eq!(p.funcs[0].name, "main");
    }

    #[test]
    fn precedence_is_sane() {
        let p = parse_ok("fn f() { return 1 + 2 * 3 < 4 << 1 && 5 == 5; }");
        // Shape: ((1 + (2*3)) < (4<<1)) && (5==5)
        if let Stmt::Return(Some(Expr::Bin(BinOp::LAnd, l, _, _)), _) = &p.funcs[0].body[0] {
            assert!(matches!(**l, Expr::Bin(BinOp::Lt, _, _, _)));
        } else {
            panic!("bad parse shape");
        }
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_ok(
            "fn f(n) { let s = 0; for (i = 0; i < n; i = i + 1) { if (i % 2 == 0) { s = s + i; } else { s = s - 1; } } while (s > 100) { s = s / 2; } return s; }",
        );
        assert_eq!(p.funcs[0].params.len(), 1);
        assert!(matches!(p.funcs[0].body[1], Stmt::For(..)));
        assert!(matches!(p.funcs[0].body[2], Stmt::While(..)));
    }

    #[test]
    fn parses_typed_params_and_ret() {
        let p = parse_ok("fn f(a: float, b) : float { return a; }");
        assert_eq!(p.funcs[0].params[0].1, TypeAnn::Float);
        assert_eq!(p.funcs[0].params[1].1, TypeAnn::Int);
        assert_eq!(p.funcs[0].ret, TypeAnn::Float);
    }

    #[test]
    fn parses_arrays_and_indexing() {
        let p = parse_ok("fn f() { let a = farray(8); a[0] = 1.5; let x: float = a[0] * 2.0; return int(x); }");
        assert!(matches!(p.funcs[0].body[0], Stmt::LetArr(_, 8, true, _)));
        assert!(matches!(p.funcs[0].body[1], Stmt::AssignIdx(..)));
    }

    #[test]
    fn else_if_chains() {
        let p = parse_ok("fn f(x) { if (x > 2) { return 2; } else if (x > 1) { return 1; } else { return 0; } }");
        if let Stmt::If(_, _, els, _) = &p.funcs[0].body[0] {
            assert!(matches!(els[0], Stmt::If(..)));
        } else {
            panic!("bad shape");
        }
    }

    #[test]
    fn unary_operators() {
        let p = parse_ok("fn f(x) { return -x + !0; }");
        assert!(matches!(p.funcs[0].body[0], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn reports_errors_with_lines() {
        let toks = lex("fn f() {\n  let = 3;\n}").unwrap();
        let err = parse(&toks).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
